"""Delta summarization: re-reduce only the hosts that changed.

The eager path (:func:`repro.core.summarize.summarize_cluster`) folds
every numeric sample of every host into a fresh :class:`SummaryInfo` on
each poll -- O(H*M) work even when one host moved.  With conditional
polls most *sources* skip ingest entirely; this tracker makes the
remaining ingests cheap too: it remembers each host's last summary
contribution, and when a new snapshot arrives it **subtracts** the stale
contribution of changed/removed hosts and **adds** the new one, touching
only the k hosts that differ.

The additive reduction of §2.2 is what makes this sound: a summary is a
(SUM, NUM) pair per metric, so removing a host's contribution is exact
integer arithmetic on NUM -- but *not* exact float arithmetic on SUM.
Naive ``total += / -=`` accumulates rounding error across churn, and a
sequence that drains a metric back toward zero can leave a residue like
``-7.1e-15`` that the 4-decimal wire formatting renders as ``"-0"``
while an eager re-fold serves ``"0"``.  Two mechanisms keep incremental
totals wire-identical to an eager re-fold:

- every accumulator uses **Neumaier-compensated** addition (a running
  compensation term recovers the low-order bits each naive add drops),
  so the exposed total is the correctly rounded sum of the surviving
  contributions, not the drifted telescoped one;
- when a metric's reporter count drains to zero its accumulator is
  dropped (an eager re-fold would not produce the metric at all), and
  when the *source's* contribution count drains to zero the whole
  running summary is rebuilt from nothing -- exact zeros, no residue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.wire.model import (
    ClusterElement,
    HostElement,
    MetricSummary,
    SummaryInfo,
)


class NeumaierSum:
    """Compensated accumulator: ``value`` is the corrected running sum.

    Kahan-Babuska ("improved Kahan") summation: each add folds the
    rounding error of the naive add into a compensation term, so adding
    and later subtracting the same float leaves ``value`` at exactly the
    sum of the remaining terms (to the final rounding), regardless of
    the order the churn arrived in.
    """

    __slots__ = ("_sum", "_comp")

    def __init__(self, initial: float = 0.0) -> None:
        self._sum = initial
        self._comp = 0.0

    def add(self, v: float) -> None:
        s = self._sum
        t = s + v
        if abs(s) >= abs(v):
            self._comp += (s - t) + v
        else:
            self._comp += (v - t) + s
        self._sum = t

    def subtract(self, v: float) -> None:
        self.add(-v)

    @property
    def value(self) -> float:
        return self._sum + self._comp


@dataclass
class HostContribution:
    """One host's share of the running cluster summary."""

    up: bool
    #: metric name -> (value, mtype, units, slope); num is always 1
    metrics: Dict[str, MetricSummary] = field(default_factory=dict)


def _host_contribution(
    host: HostElement, heartbeat_window: float
) -> HostContribution:
    """What :func:`summarize_cluster` would fold in for this host."""
    up = host.is_up(heartbeat_window)
    contribution = HostContribution(up=up)
    if not up:
        return contribution  # stale values are excluded from the sums
    for metric in host.metrics.values():
        if not metric.is_numeric:
            continue
        try:
            value = metric.numeric()
        except ValueError:
            continue  # malformed value from a broken reporter
        contribution.metrics[metric.name] = MetricSummary(
            name=metric.name,
            total=value,
            num=1,
            mtype=metric.mtype,
            units=metric.units,
            slope=metric.slope,
        )
    return contribution


def _contributions_equal(a: HostContribution, b: HostContribution) -> bool:
    if a.up != b.up:
        return False
    if a.metrics.keys() != b.metrics.keys():
        return False
    for name, ms in a.metrics.items():
        other = b.metrics[name]
        if (
            ms.total != other.total
            or ms.mtype != other.mtype
            or ms.units != other.units
            or ms.slope != other.slope
        ):
            return False
    return True


class ClusterSummaryTracker:
    """Running summary for one cluster source, updated host-by-host."""

    def __init__(self, heartbeat_window: float = 80.0) -> None:
        self.heartbeat_window = heartbeat_window
        self._running = SummaryInfo()
        self._contributions: Dict[str, HostContribution] = {}
        #: metric name -> compensated SUM accumulator backing
        #: ``_running.metrics[name].total``
        self._accums: Dict[str, NeumaierSum] = {}
        #: diagnostic: how many times the drain-to-zero rebuild fired
        self.rebuilds = 0

    def _add(self, contribution: HostContribution) -> int:
        ops = 0
        if contribution.up:
            self._running.hosts_up += 1
        else:
            self._running.hosts_down += 1
        for name, ms in contribution.metrics.items():
            existing = self._running.metrics.get(name)
            if existing is None:
                self._running.metrics[name] = ms.copy()
                self._accums[name] = NeumaierSum(ms.total)
            else:
                accum = self._accums[name]
                accum.add(ms.total)
                existing.total = accum.value
                existing.num += ms.num
                if not existing.units:
                    existing.units = ms.units
            ops += 1
        return ops

    def _subtract(self, contribution: HostContribution) -> int:
        ops = 0
        if contribution.up:
            self._running.hosts_up -= 1
        else:
            self._running.hosts_down -= 1
        for name, ms in contribution.metrics.items():
            existing = self._running.metrics[name]
            existing.num -= ms.num
            if existing.num == 0:
                # last reporter of this metric left; drop the reduction
                # and its accumulator (an eager re-fold would simply not
                # produce it) -- the next reporter starts from exact 0
                del self._running.metrics[name]
                del self._accums[name]
            else:
                accum = self._accums[name]
                accum.subtract(ms.total)
                existing.total = accum.value
            ops += 1
        return ops

    def update(self, cluster: ClusterElement) -> Tuple[SummaryInfo, int]:
        """Fold a fresh full-form snapshot into the running summary.

        Returns ``(summary, samples_changed)`` mirroring the signature
        of ``summarize_cluster`` -- the second element counts only the
        samples of hosts that actually changed, which is what the CPU
        model charges.  The returned summary is an independent clone
        (the datastore may hold it across later updates).
        """
        ops = 0
        had_contributions = bool(self._contributions)
        # removed hosts: subtract their stale contributions
        for name in list(self._contributions):
            if name not in cluster.hosts:
                ops += self._subtract(self._contributions.pop(name)) + 1
        # changed or new hosts: subtract old, add new
        for name, host in cluster.hosts.items():
            fresh = _host_contribution(host, self.heartbeat_window)
            previous = self._contributions.get(name)
            if previous is not None and _contributions_equal(previous, fresh):
                continue  # untouched host: zero summarization work
            if previous is not None:
                ops += self._subtract(previous)
            ops += self._add(fresh) + 1
            self._contributions[name] = fresh
        if had_contributions and not self._contributions:
            # contribution count drained to zero: rebuild exactly --
            # whatever float residue or bookkeeping the churn left
            # behind must not outlive the hosts that produced it
            self._running = SummaryInfo()
            self._accums.clear()
            self.rebuilds += 1
        return self._running.copy(), ops

    def reset(self) -> None:
        """Forget all state (source removed or re-pointed)."""
        self._running = SummaryInfo()
        self._contributions.clear()
        self._accums.clear()


def eager_summary(
    cluster: ClusterElement, heartbeat_window: float = 80.0
) -> SummaryInfo:
    """Reference re-fold used by the property tests (no tracker state)."""
    from repro.core.summarize import summarize_cluster

    summary, _ = summarize_cluster(cluster, heartbeat_window)
    return summary


# Columnar twin of ClusterSummaryTracker (vectorized subtract-old/add-new
# over value columns); re-exported for call-site symmetry.
from repro.columnar.summarize import ColumnarSummaryTracker  # noqa: E402,F401
