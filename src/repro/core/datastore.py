"""Gmetad's in-memory state: hash tables keyed by the query path (§2.3.2).

"By organizing the parsed monitoring data in a series of hash tables, we
can support very low-latency queries.  Our approach approximates a DOM
design where each XML tag name keys into a hash table. ... A node must
search at most three hash table levels to find the desired subtree: data
sources, summaries and cluster nodes, and node metrics."

The three levels here are ordinary dicts:

1. ``Datastore.sources`` -- data-source name -> :class:`SourceSnapshot`;
2. ``snapshot.cluster.hosts`` (full local clusters) or
   ``snapshot.grid.clusters``/``snapshot.grid.grids`` (remote summaries);
3. ``host.metrics`` / ``summary.metrics``.

Snapshots are replaced atomically at the end of each background parse,
so "queries [sic] results are based only on the latest fully-parsed
data" and a query arriving during a poll sees the previous snapshot --
the freshness-for-latency trade of §2.3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.summarize import merge_summaries
from repro.wire.model import (
    ClusterElement,
    GridElement,
    HostElement,
    MetricElement,
    SummaryInfo,
)


@dataclass
class SourceSnapshot:
    """Everything gmetad currently knows about one data source."""

    name: str
    kind: str  # "cluster" (local gmond) or "grid" (child gmetad)
    summary: SummaryInfo
    cluster: Optional[ClusterElement] = None  # full form, cluster sources
    grid: Optional[GridElement] = None        # summary form, grid sources
    authority: str = ""                        # URL of the full-resolution view
    up: bool = True
    last_success: float = 0.0
    consecutive_failures: int = 0
    last_error: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("cluster", "grid"):
            raise ValueError(f"bad source kind {self.kind!r}")
        if self.kind == "cluster" and self.cluster is None:
            raise ValueError("cluster snapshot requires a cluster element")
        if self.kind == "grid" and self.grid is None:
            raise ValueError("grid snapshot requires a grid element")


class Datastore:
    """Level-1 hash table plus rollup caching."""

    def __init__(self) -> None:
        self.sources: Dict[str, SourceSnapshot] = {}
        self.generation = 0  # bumps on every install; invalidates the rollup
        self._rollup: Optional[SummaryInfo] = None
        self._rollup_generation = -1

    # -- writes (background parsing timescale) ------------------------------

    def install(self, snapshot: SourceSnapshot, now: float) -> None:
        """Atomically replace the snapshot for one source."""
        previous = self.sources.get(snapshot.name)
        if previous is not None:
            snapshot.consecutive_failures = 0
        snapshot.up = True
        snapshot.last_success = now
        self.sources[snapshot.name] = snapshot
        self.generation += 1

    def mark_failure(self, name: str, now: float, error: str) -> int:
        """Record a poll failure; returns the consecutive-failure count.

        The stale snapshot (if any) stays queryable -- "If multiple
        failures render the monitored cluster unreachable, Gmeta keeps a
        set of metric histories that aid in forensic analysis."
        """
        snapshot = self.sources.get(name)
        if snapshot is None:
            snapshot = SourceSnapshot(
                name=name,
                kind="cluster",
                summary=SummaryInfo(),
                cluster=ClusterElement(name=name),
            )
            self.sources[name] = snapshot
        snapshot.up = False
        snapshot.consecutive_failures += 1
        snapshot.last_error = error
        self.generation += 1
        return snapshot.consecutive_failures

    # -- level-1/2/3 lookups (query timescale) -----------------------------

    def source(self, name: str) -> Optional[SourceSnapshot]:
        """The snapshot for one data source, or None."""
        return self.sources.get(name)

    def source_names(self) -> List[str]:
        """All source names, sorted (the level-1 keys)."""
        return sorted(self.sources)

    def find_cluster(self, source: str) -> Optional[ClusterElement]:
        """Full or summary form cluster for a source-level path segment.

        For grid sources this also reaches one level into the child grid,
        so ``/childgrid`` resolves even when the child was folded into a
        grid snapshot.
        """
        snapshot = self.sources.get(source)
        if snapshot is None:
            return None
        return snapshot.cluster

    def find_host(self, source: str, host: str) -> Optional[HostElement]:
        """Level-2 lookup: one host of a cluster source."""
        snapshot = self.sources.get(source)
        if snapshot is None or snapshot.cluster is None:
            return None
        return snapshot.cluster.hosts.get(host)

    def find_metric(
        self, source: str, host: str, metric: str
    ) -> Optional[MetricElement]:
        """Level-3 lookup: one metric of one host."""
        host_element = self.find_host(source, host)
        if host_element is None:
            return None
        return host_element.metrics.get(metric)

    def find_nested(self, source: str, child: str):
        """Resolve the second path segment inside a *grid* source.

        Returns a summary-form ClusterElement or GridElement, or None.
        """
        snapshot = self.sources.get(source)
        if snapshot is None or snapshot.grid is None:
            return None
        found = snapshot.grid.clusters.get(child)
        if found is not None:
            return found
        return snapshot.grid.grids.get(child)

    # -- rollup ------------------------------------------------------------

    def root_summary(self) -> Tuple[SummaryInfo, int]:
        """Merged summary over all sources (the meta view payload).

        Cached per generation; the ``operations`` count is 0 on a cache
        hit so repeated queries between polls charge almost nothing.
        """
        if self._rollup_generation == self.generation and self._rollup is not None:
            return self._rollup, 0
        merged, operations = merge_summaries(
            [s.summary for s in self.sources.values()]
        )
        self._rollup = merged
        self._rollup_generation = self.generation
        return merged, operations

    def up_sources(self) -> List[str]:
        """Sources whose last poll succeeded."""
        return sorted(n for n, s in self.sources.items() if s.up)

    def down_sources(self) -> List[str]:
        """Sources currently marked unreachable."""
        return sorted(n for n, s in self.sources.items() if not s.up)
