"""Gmetad's in-memory state: hash tables keyed by the query path (§2.3.2).

"By organizing the parsed monitoring data in a series of hash tables, we
can support very low-latency queries.  Our approach approximates a DOM
design where each XML tag name keys into a hash table. ... A node must
search at most three hash table levels to find the desired subtree: data
sources, summaries and cluster nodes, and node metrics."

The three levels here are ordinary dicts:

1. ``Datastore.sources`` -- data-source name -> :class:`SourceSnapshot`;
2. ``snapshot.cluster.hosts`` (full local clusters) or
   ``snapshot.grid.clusters``/``snapshot.grid.grids`` (remote summaries);
3. ``host.metrics`` / ``summary.metrics``.

Snapshots are replaced atomically at the end of each background parse,
so "queries [sic] results are based only on the latest fully-parsed
data" and a query arriving during a poll sees the previous snapshot --
the freshness-for-latency trade of §2.3.1.

Version bookkeeping for the incremental pipeline
------------------------------------------------

Three monotone counters track change at different granularities:

- ``generation`` bumps on *every* write (install, failure mark,
  removal) and only guards the root-rollup cache;
- ``content_version`` bumps when the bytes of a **summary-form** report
  may have changed (installs, placeholder creation, removals) -- it is
  the generation token an N-level gmetad serves to its parent;
- ``detail_version`` additionally bumps on freshness touch-ups
  (:meth:`patch_localtime`) that are visible only in **full-form**
  output, so full-dump pollers re-fetch while summary pollers keep
  getting NOT-MODIFIED.

Each snapshot carries per-source stamps (``detail_stamp`` /
``summary_stamp``) that key the memoized serialization fragments in
:mod:`repro.core.query`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.summarize import merge_summaries
from repro.wire.model import (
    ClusterElement,
    GridElement,
    HostElement,
    MetricElement,
    SummaryInfo,
)


@dataclass
class SourceSnapshot:
    """Everything gmetad currently knows about one data source."""

    name: str
    kind: str  # "cluster" (local gmond) or "grid" (child gmetad)
    summary: SummaryInfo
    cluster: Optional[ClusterElement] = None  # full form, cluster sources
    grid: Optional[GridElement] = None        # summary form, grid sources
    #: columnar ingest installs the raw columns plus a *hostless* shell
    #: cluster; full-form readers call :meth:`ensure_hosts` first, which
    #: materializes the DOM from the columns exactly once.  Polls that
    #: are never read at full resolution never build a DOM at all.
    columns: Optional[object] = None  # ColumnarCluster, duck-typed
    authority: str = ""                        # URL of the full-resolution view
    up: bool = True
    last_success: float = 0.0
    consecutive_failures: int = 0
    last_error: str = ""
    #: corruption quarantine: the source is still serving (possibly
    #: salvaged or last-good) data, but its recent polls were damaged
    quarantined: bool = False
    corrupt_polls: int = 0
    #: host count recovered by the most recent salvaged ingest
    salvaged_hosts: int = 0
    #: serialization stamps: any byte of this source's full-form (detail)
    #: or summary-form output may have changed since the stamped value
    detail_stamp: int = 0
    summary_stamp: int = 0
    #: memoized XML fragments keyed by form name -> (stamp, xml)
    frag_cache: Dict[str, Tuple[int, str]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: columnar-serve fragment arena (duck-typed FragmentArena); installed
    #: alongside the columns so the query engine can splice pre-rendered
    #: per-host fragments instead of materializing
    arena: Optional[object] = field(default=None, repr=False, compare=False)
    #: owning datastore (set by install/mark_failure) so ensure_hosts can
    #: account materializations; repr=False also breaks the repr cycle
    owner: Optional["Datastore"] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("cluster", "grid"):
            raise ValueError(f"bad source kind {self.kind!r}")
        if self.kind == "cluster" and self.cluster is None:
            raise ValueError("cluster snapshot requires a cluster element")
        if self.kind == "grid" and self.grid is None:
            raise ValueError("grid snapshot requires a grid element")

    def ensure_hosts(self) -> None:
        """Materialize the full-form DOM from held columns, if any.

        Idempotent and cheap to re-call: once the shell cluster has
        hosts, the guard short-circuits.  Every read site that walks
        ``snapshot.cluster.hosts`` (or branches on ``is_summary``) must
        call this first -- a columnar shell is summary-form *until*
        materialized.
        """
        if (
            self.columns is not None
            and self.cluster is not None
            and not self.cluster.hosts
        ):
            self.columns.materialize_into(self.cluster)
            owner = self.owner
            if owner is not None:
                # the count the columnar serve fast path drives to zero
                owner.materializations += 1


class Datastore:
    """Level-1 hash table plus rollup caching and change versioning."""

    def __init__(self) -> None:
        self.sources: Dict[str, SourceSnapshot] = {}
        self.generation = 0  # bumps on every write; invalidates the rollup
        self.content_version = 0  # summary-form wire identity
        self.detail_version = 0   # full-form wire identity
        self._stamp = 0           # per-snapshot serialization stamp source
        self._rollup: Optional[SummaryInfo] = None
        self._rollup_generation = -1
        #: lazy DOM builds (``SourceSnapshot.ensure_hosts`` doing real
        #: work); 0 on a columnar-serve daemon means no query ever paid
        #: for a host tree
        self.materializations = 0

    def _next_stamp(self) -> int:
        self._stamp += 1
        return self._stamp

    def _content_changed(self, snapshot: Optional[SourceSnapshot]) -> None:
        """Record that a source's bytes changed in both forms."""
        self.content_version += 1
        self.detail_version += 1
        if snapshot is not None:
            stamp = self._next_stamp()
            snapshot.detail_stamp = stamp
            snapshot.summary_stamp = stamp

    # -- writes (background parsing timescale) ------------------------------

    def install(self, snapshot: SourceSnapshot, now: float) -> None:
        """Atomically replace the snapshot for one source."""
        previous = self.sources.get(snapshot.name)
        if previous is not None:
            snapshot.consecutive_failures = 0
            # lifetime diagnostic; quarantined itself resets with the
            # fresh snapshot (a clean ingest is how a source exits
            # quarantine) unless the caller re-marks it
            snapshot.corrupt_polls = previous.corrupt_polls
        snapshot.up = True
        snapshot.last_success = now
        snapshot.owner = self
        self.sources[snapshot.name] = snapshot
        self.generation += 1
        self._content_changed(snapshot)

    def mark_failure(
        self, name: str, now: float, error: str, kind: str = "cluster"
    ) -> int:
        """Record a poll failure; returns the consecutive-failure count.

        The stale snapshot (if any) stays queryable -- "If multiple
        failures render the monitored cluster unreachable, Gmeta keeps a
        set of metric histories that aid in forensic analysis."

        ``kind`` is the *configured* kind of the source (threaded in
        from the poller), so a grid source that dies before its first
        successful poll gets a grid-shaped placeholder instead of
        masquerading as a cluster in meta views.
        """
        snapshot = self.sources.get(name)
        if snapshot is None:
            if kind == "grid":
                snapshot = SourceSnapshot(
                    name=name,
                    kind="grid",
                    summary=SummaryInfo(),
                    grid=GridElement(name=name, authority=""),
                )
            else:
                snapshot = SourceSnapshot(
                    name=name,
                    kind="cluster",
                    summary=SummaryInfo(),
                    cluster=ClusterElement(name=name),
                )
            snapshot.owner = self
            self.sources[name] = snapshot
            self._content_changed(snapshot)  # a new (empty) element appears
        snapshot.up = False
        snapshot.consecutive_failures += 1
        snapshot.last_error = error
        self.generation += 1
        return snapshot.consecutive_failures

    def mark_corrupt(
        self, name: str, now: float, error: str, kind: str = "cluster"
    ) -> int:
        """A poll delivered but its payload was poisoned beyond salvage.

        Unlike :meth:`mark_failure` the source stays ``up`` serving its
        last-good snapshot: the child is alive and talking, just
        garbled, and evicting it would turn a gray failure into a black
        one for every query above us.  No version moves -- queries keep
        seeing exactly the bytes they saw before the corrupt poll.
        Returns the lifetime corrupt-poll count.
        """
        snapshot = self.sources.get(name)
        if snapshot is None:
            # nothing to preserve; behave like a failure, then flag it
            self.mark_failure(name, now, error, kind=kind)
            snapshot = self.sources[name]
            snapshot.quarantined = True
            snapshot.corrupt_polls += 1
            return snapshot.corrupt_polls
        snapshot.quarantined = True
        snapshot.corrupt_polls += 1
        snapshot.last_error = error
        return snapshot.corrupt_polls

    def touch_success(self, name: str, now: float) -> bool:
        """Refresh liveness bookkeeping after a NOT-MODIFIED poll.

        The content is untouched (that is the point), so no version or
        stamp moves; only the failure-tracking fields reset, exactly as
        :meth:`install` would have reset them.
        """
        snapshot = self.sources.get(name)
        if snapshot is None:
            return False
        snapshot.up = True
        snapshot.last_success = now
        snapshot.consecutive_failures = 0
        snapshot.last_error = ""
        # NOT-MODIFIED proves the child is serving clean content again
        snapshot.quarantined = False
        snapshot.salvaged_hosts = 0
        return True

    def patch_localtime(self, name: str, localtime: float) -> bool:
        """Refresh a grid source's report timestamp without a transfer.

        A child gmetad stamps its report with the serve-time LOCALTIME,
        so the attribute moves every poll even when the data is frozen.
        A NOT-MODIFIED reply carries the timestamp the child would have
        written; patching it here keeps full-form output byte-identical
        to an eager re-download.  Only ``detail_version`` moves: the
        summary form a parent polls omits nested grid timestamps.
        """
        snapshot = self.sources.get(name)
        if snapshot is None or snapshot.grid is None:
            return False
        if snapshot.grid.localtime == localtime:
            return True
        snapshot.grid.localtime = localtime
        snapshot.detail_stamp = self._next_stamp()
        self.detail_version += 1
        return True

    def remove_source(self, name: str) -> bool:
        """Drop a source's state entirely (data-source detach)."""
        if self.sources.pop(name, None) is None:
            return False
        self.generation += 1
        self._content_changed(None)
        return True

    # -- level-1/2/3 lookups (query timescale) -----------------------------

    def source(self, name: str) -> Optional[SourceSnapshot]:
        """The snapshot for one data source, or None."""
        return self.sources.get(name)

    def source_names(self) -> List[str]:
        """All source names, sorted (the level-1 keys)."""
        return sorted(self.sources)

    def find_cluster(self, source: str) -> Optional[ClusterElement]:
        """Full or summary form cluster for a source-level path segment.

        For grid sources this also reaches one level into the child grid,
        so ``/childgrid`` resolves even when the child was folded into a
        grid snapshot.
        """
        snapshot = self.sources.get(source)
        if snapshot is not None:
            if snapshot.cluster is not None:
                snapshot.ensure_hosts()
                return snapshot.cluster
            if snapshot.grid is not None:
                # the source is a grid; a same-named nested cluster is
                # the folded child the docstring promises to resolve
                return snapshot.grid.clusters.get(source)
            return None
        # not a top-level source: reach one level into each grid source
        # for a cluster that was folded into a child gmetad's report
        for snap in self.sources.values():
            if snap.grid is not None:
                found = snap.grid.clusters.get(source)
                if found is not None:
                    return found
        return None

    def find_host(self, source: str, host: str) -> Optional[HostElement]:
        """Level-2 lookup: one host of a cluster source."""
        snapshot = self.sources.get(source)
        if snapshot is None or snapshot.cluster is None:
            return None
        snapshot.ensure_hosts()
        return snapshot.cluster.hosts.get(host)

    def find_metric(
        self, source: str, host: str, metric: str
    ) -> Optional[MetricElement]:
        """Level-3 lookup: one metric of one host."""
        host_element = self.find_host(source, host)
        if host_element is None:
            return None
        return host_element.metrics.get(metric)

    def find_nested(self, source: str, child: str):
        """Resolve the second path segment inside a *grid* source.

        Returns a summary-form ClusterElement or GridElement, or None.
        """
        snapshot = self.sources.get(source)
        if snapshot is None or snapshot.grid is None:
            return None
        found = snapshot.grid.clusters.get(child)
        if found is not None:
            return found
        return snapshot.grid.grids.get(child)

    # -- rollup ------------------------------------------------------------

    def root_summary(self) -> Tuple[SummaryInfo, int]:
        """Merged summary over all sources (the meta view payload).

        Cached per generation; the ``operations`` count is 0 on a cache
        hit so repeated queries between polls charge almost nothing.
        """
        if self._rollup_generation == self.generation and self._rollup is not None:
            return self._rollup, 0
        merged, operations = merge_summaries(
            [s.summary for s in self.sources.values()]
        )
        self._rollup = merged
        self._rollup_generation = self.generation
        return merged, operations

    def up_sources(self) -> List[str]:
        """Sources whose last poll succeeded."""
        return sorted(n for n, s in self.sources.items() if s.up)

    def down_sources(self) -> List[str]:
        """Sources currently marked unreachable."""
        return sorted(n for n, s in self.sources.items() if not s.up)
