"""Replicated read tier: serving replicas behind a hashed front door.

The paper's gmetad is both aggregator and query server; this package
splits the two roles so read throughput scales horizontally:

- :mod:`repro.readtier.feed` -- the ingest gmetad exports its per-source
  serve fragments over the existing pub-sub delta stream (the hidden
  ``__repl__`` namespace);
- :mod:`repro.readtier.replica` -- :class:`ReadReplica` mirrors the feed
  into its own datastore and serves viewer queries byte-identically to
  the ingest daemon;
- :mod:`repro.readtier.frontdoor` -- :class:`FrontDoor` rendezvous-hashes
  viewer sessions across healthy replicas with hedged retries;
- :mod:`repro.readtier.fleet` -- tier assembly plus the simulated viewer
  fleet the benchmarks ramp.

Only :class:`ReadTierConfig` is re-exported here: ``repro.core.tree``
imports it for the ``GmetadConfig.read_tier`` gate, so this module must
not import anything from :mod:`repro.core` (directly or transitively).
"""

from repro.readtier.config import ReadTierConfig

__all__ = ["ReadTierConfig"]
