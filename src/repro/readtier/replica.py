"""ReadReplica: a serving process fed off one ingest gmetad.

A replica owns its own simulated host, CPU account, datastore and query
engine; it subscribes to the ingest gmetad's pub-sub broker on the
hidden ``/__repl__`` path and mirrors the replication feed
(:mod:`repro.readtier.feed`).  Viewer queries land on the replica's own
``Address.gmetad`` endpoint and are served through exactly the code the
ingest daemon uses -- same query engine, same CPU charge pattern, same
conditional-poll handshake -- so a replica is a drop-in target for any
existing viewer.

Generation barrier
    Each applied feed message is one atomic diff of the broker's
    published state, so the mirror is always internally consistent.
    The replica still *stages* every changed source -- parses both
    fragments, rebuilds the snapshot -- before touching its datastore;
    only when the whole batch stages cleanly are the snapshots
    installed (and the ingest version triple from ``__repl__/@gen``
    adopted).  Any inconsistency aborts the batch and falls back to the
    pub-sub full-sync recovery path, so a query can never observe a
    half-applied generation.

Byte identity
    Shipped fragments are primed into each installed snapshot's
    ``frag_cache`` under the install's serialization stamps, so
    whole-tree dumps splice the ingest daemon's exact strings.  Path
    queries re-serialize from the re-parsed elements; the writer/parser
    round trip is stable (numeric attributes render through the same
    ``_fmt_num``, metric values stay verbatim strings), which the
    equivalence suite pins.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.core.datastore import Datastore, SourceSnapshot
from repro.core.gmetad_base import document_element_count
from repro.core.query import (
    GmetadQuery,
    QueryEngine,
    QueryError,
    ServeQueue,
)
from repro.core.resilience import Overloaded
from repro.net.address import Address
from repro.net.fabric import Fabric
from repro.net.tcp import Response, TcpNetwork
from repro.pubsub import messages
from repro.pubsub.client import PUSH_NOTIFY_PORT, PushClient
from repro.readtier.config import ReadTierConfig
from repro.readtier.feed import (
    GEN_KEY,
    REPL_PREFIX,
    detail_key,
    meta_key,
    summary_key,
)
from repro.sim.engine import Engine
from repro.sim.resources import DEFAULT_CAPACITY, CostModel, CpuAccount
from repro.wire.binfmt import CODEC_BINARY, BinaryFrame, split_accept
from repro.wire.conditional import (
    NotModified,
    TaggedXml,
    next_epoch,
    split_generation,
)
from repro.wire.model import SummaryInfo
from repro.wire.parser import ParseError, parse_document

_PROLOG = '<?xml version="1.0" encoding="ISO-8859-1" standalone="yes"?>\n'


class FeedError(RuntimeError):
    """The replication feed delivered an inconsistent or unparseable batch."""


class ReadReplica:
    """One serving replica of an ingest gmetad."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        tcp: TcpNetwork,
        ingest,
        name: Optional[str] = None,
        host: Optional[str] = None,
        config: Optional[ReadTierConfig] = None,
        costs: Optional[CostModel] = None,
        capacity: float = DEFAULT_CAPACITY,
        notify_port: int = PUSH_NOTIFY_PORT,
    ) -> None:
        self.engine = engine
        self.tcp = tcp
        self.ingest = ingest
        self.config = (
            config
            or getattr(ingest.config, "read_tier", None)
            or ReadTierConfig()
        )
        self.name = name or f"{ingest.config.name}-replica"
        self.host = host or f"{ingest.config.host}-replica"
        if not fabric.has_host(self.host):
            fabric.add_host(self.host)
        self.costs = costs if costs is not None else ingest.costs
        self.cpu = CpuAccount(self.name, capacity)
        self.datastore = Datastore()
        self.version = getattr(ingest, "version", "2.5.4")
        self.columnar_serve = bool(
            getattr(self.config, "columnar_serve", False)
        )
        self.query_engine = QueryEngine(
            self.datastore,
            grid_name=ingest.config.gridname,
            authority=ingest.config.authority_url,
            version=self.version,
            memoize=True,
            columnar_serve=self.columnar_serve,
        )
        #: per-source fragment arenas + shared intern pool
        #: (config.columnar_serve); daemon-owned so fragments survive
        #: snapshot replacement, exactly as on the ingest gmetad
        self._serve_arenas: Dict[str, object] = {}
        self._intern_pool = None
        self.serve_queue: Optional[ServeQueue] = (
            ServeQueue(self.config.serve_queue_limit)
            if self.config.serve_queue_limit > 0
            else None
        )
        #: replica-private epoch: a viewer failing over between replicas
        #: (or back to the ingest daemon) can never get a false 304
        self._serve_epoch = next_epoch(self.name)
        self.address = Address.gmetad(self.host)
        self.client = PushClient(
            engine,
            fabric,
            tcp,
            Address.pubsub(ingest.config.host),
            path=f"/{REPL_PREFIX}",
            host=self.host,
            port=notify_port,
            sub_id=f"replica:{self.name}",
            lease=self.config.lease,
            accept_binary=self.config.binary_feed,
        )
        self.client.on_applied = self._on_feed
        #: ingest version triple (generation, content_version,
        #: detail_version) the replica's installed view corresponds to
        self.ingest_versions: Optional[Tuple[int, int, int]] = None
        self.installs = 0
        self.removals = 0
        self.barrier_aborts = 0
        self.queries_served = 0
        self.queries_shed = 0
        self.not_modified_served = 0
        self.binary_served = 0
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ReadReplica":
        """Listen for viewer queries and subscribe to the feed."""
        if self._started:
            raise RuntimeError(f"replica {self.name} already started")
        self._started = True
        self.tcp.listen(self.address, self._serve)
        self.client.start()
        return self

    def stop(self) -> None:
        """Unsubscribe and close the query listener."""
        self.client.stop()
        self.tcp.close(self.address)
        self._started = False

    @property
    def synced(self) -> bool:
        """Whether the replica has installed a consistent generation."""
        return self.client.stream.synced and self.ingest_versions is not None

    def charge(self, work_units: float, category: str) -> float:
        """Charge CPU work to this replica's own account."""
        return self.cpu.charge(work_units, category)

    # -- feed ingestion ----------------------------------------------------

    def _on_feed(self, message: dict, outcome: str) -> None:
        """PushClient post-apply hook: mirror changed, rebuild."""
        if outcome == "synced":
            self._rebuild(None)
        elif outcome == "applied":
            changed: Set[str] = set()
            for op in messages.ops_of(message):
                parts = op.path.split("/")
                if (
                    parts[0] != REPL_PREFIX
                    or len(parts) < 2
                    or parts[1].startswith("@")
                ):
                    continue
                changed.add(parts[1])
            self._rebuild(changed)

    def _feed_sources(self, mirror: Dict[str, str]) -> Set[str]:
        """Source names present in the mirrored feed (meta keys)."""
        names: Set[str] = set()
        for key in mirror:
            parts = key.split("/")
            if (
                parts[0] == REPL_PREFIX
                and len(parts) == 2
                and not parts[1].startswith("@")
            ):
                names.add(parts[1])
        return names

    def _rebuild(self, changed: Optional[Iterable[str]]) -> None:
        """Stage every changed source, then install atomically.

        ``changed`` is None after a full sync (reconcile everything).
        Any staging failure aborts the whole batch -- nothing installs
        -- and requests a full sync, the pub-sub gap-recovery path.
        """
        mirror = self.client.state
        gen = mirror.get(GEN_KEY)
        if gen is None:
            return  # broker has no feed (read_tier off upstream)
        if changed is None:
            names = self._feed_sources(mirror) | set(self.datastore.sources)
        else:
            names = set(changed)
        staged = {}
        removals = []
        for source in sorted(names):
            meta_raw = mirror.get(meta_key(source))
            if meta_raw is None:
                removals.append(source)
                continue
            detail = mirror.get(detail_key(source))
            summary = mirror.get(summary_key(source))
            if detail is None or summary is None:
                self._abort_barrier()
                return
            try:
                staged[source] = self._build_snapshot(
                    source, meta_raw, detail, summary
                )
            except (FeedError, ParseError, ValueError, KeyError):
                self._abort_barrier()
                return
        # barrier complete: every changed source staged cleanly
        now = self.engine.now
        for source in sorted(staged):
            snapshot, up, detail, summary = staged[source]
            self.datastore.install(snapshot, now)
            snapshot.up = up
            # the shipped strings ARE the serve output: prime the
            # memo cache under the install's fresh stamps so dumps
            # splice the ingest daemon's exact bytes
            snapshot.frag_cache["full"] = (snapshot.detail_stamp, detail)
            snapshot.frag_cache["summary"] = (snapshot.summary_stamp, summary)
            if self.columnar_serve and snapshot.kind == "cluster":
                self._install_columns(snapshot)
            self.installs += 1
        for source in removals:
            if self.datastore.remove_source(source):
                self._serve_arenas.pop(source, None)
                self.removals += 1
        try:
            triple = tuple(int(part) for part in gen.split(":"))
        except ValueError:
            self._abort_barrier()
            return
        if len(triple) == 3:
            self.ingest_versions = triple  # type: ignore[assignment]

    def _abort_barrier(self) -> None:
        self.barrier_aborts += 1
        self.client.request_sync()

    def _install_columns(self, snapshot: SourceSnapshot) -> None:
        """Rebuild SoA columns + fragment arena for one installed source.

        The feed ships text, so the replica re-derives the columnar
        layout from the parsed cluster (the same conversion the ingest
        daemon applies to tree-parsed salvage polls).  Unchanged hosts
        keep their pre-rendered fragments across installs -- the arena's
        delta diff sees the same layout and re-renders only movers.
        """
        cluster = snapshot.cluster
        if cluster is None or cluster.is_summary or not cluster.hosts:
            return
        from repro.columnar import InternPool, columns_from_cluster
        from repro.serve import FragmentArena

        if self._intern_pool is None:
            self._intern_pool = InternPool()
        cols = columns_from_cluster(cluster, self._intern_pool)
        arena = self._serve_arenas.get(snapshot.name)
        if arena is None:
            arena = FragmentArena()
            self._serve_arenas[snapshot.name] = arena
        arena.install(cols)
        snapshot.columns = cols
        snapshot.arena = arena

    def _build_snapshot(
        self, source: str, meta_raw: str, detail: str, summary: str
    ) -> Tuple[SourceSnapshot, bool, str, str]:
        """Parse one source's feed records back into a snapshot."""
        meta = json.loads(meta_raw)
        kind = meta.get("k", "cluster")
        self.charge(
            self.costs.parse_byte * (len(detail) + len(summary)), "parse"
        )
        detail_doc = parse_document(self._wrap(detail))
        summary_doc = parse_document(self._wrap(summary))
        self.charge(
            self.costs.hash_insert * document_element_count(detail_doc),
            "parse",
        )
        if kind == "cluster":
            if not detail_doc.clusters or not summary_doc.clusters:
                raise FeedError(f"feed for {source!r} lost its cluster")
            cluster = next(iter(detail_doc.clusters.values()))
            summary_cluster = next(iter(summary_doc.clusters.values()))
            info = (
                summary_cluster.summary
                if summary_cluster.summary is not None
                else SummaryInfo()
            )
            if meta.get("cs"):
                # restore the ingest-side aliasing the full-form
                # serialization dropped (see repro.readtier.feed)
                cluster.summary = info
            snapshot = SourceSnapshot(
                name=source,
                kind="cluster",
                summary=info,
                cluster=cluster,
                authority=meta.get("a", ""),
            )
        else:
            if not detail_doc.grids or not summary_doc.grids:
                raise FeedError(f"feed for {source!r} lost its grid")
            grid = next(iter(detail_doc.grids.values()))
            summary_grid = next(iter(summary_doc.grids.values()))
            info = (
                summary_grid.summary
                if summary_grid.summary is not None
                else SummaryInfo()
            )
            snapshot = SourceSnapshot(
                name=source,
                kind="grid",
                summary=info,
                grid=grid,
                authority=meta.get("a", ""),
            )
        return snapshot, bool(meta.get("u", 1)), detail, summary

    def _wrap(self, fragment: str) -> str:
        return (
            f"{_PROLOG}"
            f'<GANGLIA_XML VERSION="{self.version}" SOURCE="gmetad">\n'
            f"{fragment}</GANGLIA_XML>\n"
        )

    # -- serving path (mirrors GmetadBase / Gmetad) ------------------------

    def serve_query(self, request: str) -> Tuple[str, float]:
        """Serve one request; same engine and charges as the ingest daemon."""
        try:
            query = GmetadQuery.parse(request)
        except QueryError:
            query = GmetadQuery()  # garbage in, full default dump out
        seconds = self.charge(self.costs.query_fixed, "query")
        xml, stats = self.query_engine.execute(query, self.engine.now)
        seconds += self.charge(
            self.costs.hash_insert * stats.hash_lookups, "query"
        )
        fresh_bytes = stats.bytes_serialized - stats.bytes_from_cache
        seconds += self.charge(self.costs.serve_byte * fresh_bytes, "serve")
        if stats.bytes_from_cache:
            seconds += self.charge(
                self.costs.serve_byte_cached * stats.bytes_from_cache, "serve"
            )
        return xml, seconds

    def serve_generation(self, request: str) -> str:
        """Conditional-poll token; scoped to this replica's epoch."""
        try:
            is_summary = GmetadQuery.parse(request).summary
        except QueryError:
            is_summary = False
        if is_summary:
            return f"{self._serve_epoch}:s{self.datastore.content_version}"
        return f"{self._serve_epoch}:f{self.datastore.detail_version}"

    def _serve(self, client: str, request: object) -> Response:
        response = self._serve_response(client, request)
        if self.serve_queue is not None:
            now = self.engine.now
            for victim in self.serve_queue.make_room(now):
                victim.payload = Overloaded()
                self.queries_shed += 1
            self.serve_queue.push(now + response.service_seconds, response)
        return response

    def _serve_response(self, client: str, request: object) -> Response:
        self.queries_served += 1
        seconds = self.charge(self.costs.tcp_connect, "network")
        base, presented = split_generation(str(request))
        base, accept = split_accept(base)
        wants_binary = accept == CODEC_BINARY and self.columnar_serve
        if presented is None:
            if wants_binary:
                binary = self.serve_binary(base)
                if binary is not None:
                    frame, serve_seconds = binary
                    return Response(
                        BinaryFrame(frame),
                        service_seconds=seconds + serve_seconds,
                    )
            xml, serve_seconds = self.serve_query(base)
            return Response(xml, service_seconds=seconds + serve_seconds)
        current = self.serve_generation(base)
        if presented == current:
            self.not_modified_served += 1
            return Response(
                NotModified(
                    generation=current,
                    localtime=float(f"{self.engine.now:.0f}"),
                ),
                service_seconds=seconds,
            )
        if wants_binary:
            binary = self.serve_binary(base)
            if binary is not None:
                frame, serve_seconds = binary
                return Response(
                    BinaryFrame(frame, generation=current),
                    service_seconds=seconds + serve_seconds,
                )
        xml, serve_seconds = self.serve_query(base)
        return Response(
            TaggedXml(xml, current), service_seconds=seconds + serve_seconds
        )

    def serve_binary(self, request: str):
        """A GBF1 frame for a ``/source`` detail query, or None.

        Mirrors :meth:`repro.core.gmetad.Gmetad._serve_binary_detail`:
        only unconditional single-segment cluster path queries with held
        columns go binary; everything else falls back to the XML engine.
        """
        try:
            query = GmetadQuery.parse(request)
        except QueryError:
            return None
        if query.summary or len(query.path) != 1:
            return None
        from repro.serve import columnar_detail_frame

        frame = columnar_detail_frame(
            self.datastore.source(query.path[0]), self.version
        )
        if frame is None:
            return None
        seconds = self.charge(self.costs.query_fixed, "query")
        seconds += self.charge(self.costs.hash_insert, "query")
        seconds += self.charge(self.costs.serve_byte * len(frame), "serve")
        self.binary_served += 1
        return frame, seconds
