"""The replication feed: serve-exact fragments over the delta stream.

Replicas must serve the *same bytes* the ingest gmetad would, so the
feed ships the ingest daemon's own memoized serialization fragments --
the exact strings its whole-tree dumps splice -- rather than a lossy
re-encoding.  The feed lives in a hidden ``__repl__`` namespace of the
pub-sub flat state:

========================  =============================================
``__repl__/@gen``         ``generation:content_version:detail_version``
``__repl__/<src>``        compact JSON meta (kind, authority, up, cs)
``__repl__/<src>/detail``   full-form XML fragment of the source
``__repl__/<src>/summary``  summary-form XML fragment of the source
========================  =============================================

Keys under ``__repl__`` are delivered only to subscriptions rooted at
``/__repl__`` (the broker gates them), so ordinary subscribers -- and
every existing pub-sub byte-count benchmark -- see nothing new.

The feed's *values* are codec-agnostic strings; when the ingest
daemon's ``binary_wire`` is on and the replica subscribes with
``ReadTierConfig.binary_feed``, the delta/full messages that carry
them travel as :mod:`repro.wire.binfmt` PUBSUB frames instead of JSON
-- same keys, same fragments, fewer bytes (negotiated per
subscription, so XML-feed replicas coexist on the same broker).

The ``cs`` meta bit records whether the ingest snapshot's cluster
element carries an attached summary (``Gmetad.ingest`` aliases
``cluster.summary`` with ``snapshot.summary``).  Full-form cluster
serialization drops the summary, so a replica re-parsing the detail
fragment must re-attach it -- otherwise a cluster with an OWNER/URL
would fall into the query engine's hostless-shell synthesis branch and
serve different bytes than the ingest daemon.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.serve.fragments import memoized_source_fragment

#: Root of the hidden replication namespace in the pub-sub flat state.
REPL_PREFIX = "__repl__"
#: Datastore version triple key (the generation-barrier marker).
GEN_KEY = f"{REPL_PREFIX}/@gen"


def meta_key(source: str) -> str:
    """Flat key of one source's replication metadata record."""
    return f"{REPL_PREFIX}/{source}"


def detail_key(source: str) -> str:
    """Flat key of one source's full-form fragment."""
    return f"{REPL_PREFIX}/{source}/detail"


def summary_key(source: str) -> str:
    """Flat key of one source's summary-form fragment."""
    return f"{REPL_PREFIX}/{source}/summary"


class ReplicationFeed:
    """Builds the ``__repl__`` view of one gmetad's datastore.

    Installed by the broker as the delta engine's ``augment`` hook when
    ``config.read_tier`` is set; :meth:`state` runs on every publish.
    Fragments are shared with the serve path through each snapshot's
    ``frag_cache`` (same stamps, same strings), so with the incremental
    pipeline on, a fragment is serialized once and both the feed and
    whole-tree dumps splice it.
    """

    def __init__(self, gmetad) -> None:
        self.gmetad = gmetad
        query_engine = getattr(gmetad, "query_engine", None)
        if query_engine is None:
            # designs without a path query engine still get a feed; a
            # private engine supplies the identical fragment logic
            from repro.core.query import QueryEngine

            query_engine = QueryEngine(
                gmetad.datastore,
                grid_name=gmetad.config.gridname,
                authority=gmetad.config.authority_url,
                version=gmetad.version,
            )
        self._query_engine = query_engine
        self.fragments_serialized = 0
        self.fragments_cached = 0

    def state(self) -> Dict[str, str]:
        """The current ``__repl__`` key set (merged into published state)."""
        datastore = self.gmetad.datastore
        state: Dict[str, str] = {
            GEN_KEY: (
                f"{datastore.generation}:{datastore.content_version}"
                f":{datastore.detail_version}"
            )
        }
        for name in datastore.source_names():
            snapshot = datastore.sources[name]
            cluster_summary_attached = (
                snapshot.cluster is not None
                and snapshot.cluster.summary is not None
            )
            meta = {
                "a": snapshot.authority or "",
                "cs": 1 if cluster_summary_attached else 0,
                "k": snapshot.kind,
                "u": 1 if snapshot.up else 0,
            }
            state[meta_key(name)] = json.dumps(
                meta, separators=(",", ":"), sort_keys=True
            )
            state[detail_key(name)] = self._fragment(snapshot, "full")
            state[summary_key(name)] = self._fragment(snapshot, "summary")
        return state

    def _fragment(self, snapshot, form: str) -> str:
        """One source fragment, spliced from the serve cache when current."""
        fragment, from_cache = memoized_source_fragment(
            self._query_engine, snapshot, form
        )
        gmetad = self.gmetad
        if from_cache:
            self.fragments_cached += 1
            gmetad.charge(
                gmetad.costs.serve_byte_cached * len(fragment), "serve"
            )
        else:
            self.fragments_serialized += 1
            gmetad.charge(gmetad.costs.serve_byte * len(fragment), "serve")
        return fragment
