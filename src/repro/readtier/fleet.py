"""Tier assembly plus the simulated viewer fleet the benchmarks ramp.

:func:`build_read_tier` wires the whole serving tier onto one ingest
gmetad: enables the replication feed, attaches the pub-sub broker,
starts N :class:`~repro.readtier.replica.ReadReplica` processes and one
:class:`~repro.readtier.frontdoor.FrontDoor` over them.

:class:`ViewerFleet` models 10^4..10^6 concurrent web viewers without
10^6 simulator hosts: viewers are folded into a bounded set of
aggregator hosts (think campus NAT / proxy egress points), each running
an independent Poisson arrival process whose rate is its share of the
fleet's offered load.  Query targets are Zipf-skewed over the viewer
path catalog -- most viewers stare at the meta view and a few hot
clusters, a long tail drills into individual hosts -- matching the
paper's observation that "the web frontend is by far the most common
way Ganglia data is consumed".
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.resilience import Overloaded
from repro.net.address import Address
from repro.net.fabric import Fabric
from repro.net.tcp import TcpNetwork
from repro.readtier.config import ReadTierConfig
from repro.readtier.frontdoor import FrontDoor
from repro.readtier.replica import ReadReplica
from repro.sim.engine import Engine
from repro.sim.resources import DEFAULT_CAPACITY, CostModel
from repro.wire.binfmt import BinaryFrame, with_accept


@dataclass
class ReadTier:
    """One assembled read tier: ingest daemon, feed broker, replicas, door."""

    ingest: object
    broker: object
    replicas: List[ReadReplica]
    frontdoor: FrontDoor

    @property
    def address(self) -> Address:
        """Where viewers connect (the front door)."""
        return self.frontdoor.address

    def stop(self) -> None:
        """Tear the tier down, leaving the ingest daemon running."""
        self.frontdoor.stop()
        for replica in self.replicas:
            replica.stop()

    def synced(self) -> bool:
        """Whether every replica has installed a consistent generation."""
        return all(replica.synced for replica in self.replicas)


def build_read_tier(
    engine: Engine,
    fabric: Fabric,
    tcp: TcpNetwork,
    ingest,
    replicas: Optional[int] = None,
    config: Optional[ReadTierConfig] = None,
    broker=None,
    capacity: float = DEFAULT_CAPACITY,
    costs: Optional[CostModel] = None,
) -> ReadTier:
    """Stand up a read tier over one (started) ingest gmetad.

    The config is installed on ``ingest.config.read_tier`` *before* the
    broker attaches, because the broker decides at construction whether
    to export the replication feed.  Pass ``broker`` to reuse one
    attached earlier -- but it must have been attached with
    ``read_tier`` already set, or its delta engine has no feed.
    """
    cfg = config or getattr(ingest.config, "read_tier", None) or ReadTierConfig()
    ingest.config.read_tier = cfg
    count = replicas if replicas is not None else cfg.replicas
    if count < 1:
        raise ValueError("read tier needs at least one replica")
    if broker is None:
        broker = ingest.attach_pubsub()
    elif broker.feed is None:
        raise ValueError(
            "broker was attached before read_tier was configured"
        )
    fleet = [
        ReadReplica(
            engine,
            fabric,
            tcp,
            ingest,
            name=f"{ingest.config.name}-r{i + 1}",
            host=f"{ingest.config.host}-r{i + 1}",
            config=cfg,
            capacity=capacity,
            costs=costs,
        ).start()
        for i in range(count)
    ]
    frontdoor = FrontDoor(
        engine,
        fabric,
        tcp,
        host=f"{ingest.config.host}-frontdoor",
        replicas=fleet,
        config=cfg,
        costs=costs,
        capacity=capacity,
    ).start()
    return ReadTier(
        ingest=ingest, broker=broker, replicas=fleet, frontdoor=frontdoor
    )


def viewer_paths(
    daemon, per_source_hosts: int = 4
) -> List[str]:
    """The viewer query catalog, hottest first.

    Ordered the way a web frontend drives gmetad: the meta (grid
    summary) page first, then per-cluster summary pages, then
    per-cluster full views, then a sample of host drill-downs.  The
    Zipf skew in :class:`ViewerFleet` rides on this ordering.
    """
    paths: List[str] = ["/?filter=summary", "/"]
    names = daemon.datastore.source_names()
    for name in names:
        paths.append(f"/{name}?filter=summary")
    for name in names:
        paths.append(f"/{name}")
    for name in names:
        snapshot = daemon.datastore.sources[name]
        if snapshot.cluster is None:
            continue
        if snapshot.columns is not None:
            # host names ride in the columns; sampling the catalog must
            # not force a DOM materialization on a columnar daemon
            hosts = sorted(snapshot.columns.host_names)
        else:
            snapshot.ensure_hosts()
            hosts = sorted(snapshot.cluster.hosts)
        for host in hosts[:per_source_hosts]:
            paths.append(f"/{name}/{host}")
    return paths


class ZipfPicker:
    """Zipf(s) sampler over a ranked catalog (rank 1 = hottest)."""

    def __init__(self, count: int, s: float = 1.1) -> None:
        if count < 1:
            raise ValueError("need at least one item")
        self.s = s
        weights = [1.0 / (rank ** s) for rank in range(1, count + 1)]
        total = sum(weights)
        cumulative, running = [], 0.0
        for w in weights:
            running += w / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def pick(self, rng: random.Random) -> int:
        """Sample a rank index (0-based)."""
        return bisect_left(self._cumulative, rng.random())


@dataclass
class FleetWindow:
    """Counters for one measurement window of the viewer fleet."""

    sent: int = 0
    ok: int = 0
    not_modified: int = 0
    overloaded: int = 0
    timeouts: int = 0
    binary: int = 0
    latencies: List[float] = field(default_factory=list)

    def percentile(self, fraction: float) -> float:
        """Latency percentile over completed (non-shed) requests."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(
            len(ordered) - 1, max(0, int(fraction * len(ordered)) - 1)
        )
        return ordered[index]


class ViewerFleet:
    """A population of web viewers folded into aggregator hosts."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        tcp: TcpNetwork,
        target: Address,
        paths: List[str],
        clients: int,
        per_client_qps: float = 0.02,
        zipf_s: float = 1.1,
        aggregators: int = 64,
        seed: int = 99,
        request_timeout: float = 10.0,
        accept_binary: bool = False,
    ) -> None:
        if clients < 1:
            raise ValueError("need at least one client")
        if not paths:
            raise ValueError("need a non-empty path catalog")
        self.engine = engine
        self.tcp = tcp
        self.target = target
        self.paths = paths
        self.clients = clients
        self.per_client_qps = per_client_qps
        self.request_timeout = request_timeout
        #: offer ``accept=bin1`` on every query: a columnar-serve
        #: replica answers eligible detail queries with a GBF1 frame,
        #: everything else falls back to XML transparently
        self.accept_binary = accept_binary
        self.aggregators = min(aggregators, clients)
        self.hosts = [f"viewer-{i:03d}" for i in range(self.aggregators)]
        for host in self.hosts:
            if not fabric.has_host(host):
                fabric.add_host(host)
        self._picker = ZipfPicker(len(paths), zipf_s)
        self._rng = random.Random(seed)
        self.window = FleetWindow()
        self.running = False

    @property
    def offered_qps(self) -> float:
        """The fleet's aggregate offered load."""
        return self.clients * self.per_client_qps

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ViewerFleet":
        """Arm one Poisson arrival process per aggregator."""
        if self.running:
            raise RuntimeError("fleet already running")
        self.running = True
        rate = self.offered_qps / self.aggregators
        for host in self.hosts:
            # desynchronized first arrivals: each aggregator starts at
            # an independent exponential offset
            self.engine.call_later(
                self._rng.expovariate(rate), self._tick, host, rate
            )
        return self

    def stop(self) -> None:
        self.running = False

    def take_window(self) -> FleetWindow:
        """Sample-and-reset the measurement counters."""
        window, self.window = self.window, FleetWindow()
        return window

    # -- arrivals ----------------------------------------------------------

    def _tick(self, host: str, rate: float) -> None:
        if not self.running:
            return
        self._fire(host)
        self.engine.call_later(
            self._rng.expovariate(rate), self._tick, host, rate
        )

    def _fire(self, host: str) -> None:
        path = self.paths[self._picker.pick(self._rng)]
        if self.accept_binary:
            path = with_accept(path)
        window = self.window
        window.sent += 1
        started = self.engine.now

        def on_response(payload: object, rtt: float) -> None:
            if isinstance(payload, Overloaded):
                window.overloaded += 1
                return
            if isinstance(payload, BinaryFrame):
                window.binary += 1
            window.ok += 1
            window.latencies.append(self.engine.now - started)

        def on_timeout(error) -> None:
            window.timeouts += 1

        self.tcp.request(
            host,
            self.target,
            path,
            on_response=on_response,
            timeout=self.request_timeout,
            on_timeout=on_timeout,
            request_size=len(path),
        )
