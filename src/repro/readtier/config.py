"""Configuration for the replicated read tier.

Kept dependency-free (plain dataclass, no repro imports) because
:mod:`repro.core.tree` imports it into :class:`GmetadConfig` -- the
config gate must not drag the whole serving tier into the core import
graph.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReadTierConfig:
    """Knobs for one gmetad's read tier.

    Attaching this to ``GmetadConfig.read_tier`` makes the gmetad's
    pub-sub broker export the hidden ``__repl__`` replication feed;
    everything else (replica count, front-door hedging) is consumed by
    :func:`repro.readtier.fleet.build_read_tier`.  ``None`` (the
    default) keeps the single-daemon serving path byte-identical to
    baseline.
    """

    #: default replica count for :func:`build_read_tier` / the CLI
    replicas: int = 2
    #: per-replica in-flight serve bound (0 disables shedding)
    serve_queue_limit: int = 64
    #: front-door hedge deadline bounds (seconds); the deadline itself
    #: is adaptive -- srtt + k*rttvar per replica, clamped to this range
    hedge_floor: float = 0.05
    hedge_ceiling: float = 2.0
    #: hard per-attempt timeout at the front door (a replica that blows
    #: through this is treated as dead, not merely slow)
    request_timeout: float = 5.0
    #: how long an OVERLOADED reply keeps a replica out of the healthy
    #: rendezvous set
    overload_cooldown: float = 3.0
    #: replication-feed subscription lease (soft state, gmond-style)
    lease: float = 60.0
    #: offer the binary pub-sub codec (``accept=bin1``) on the feed
    #: subscription.  Effective only when the ingest daemon's
    #: ``binary_wire`` is on; otherwise the broker falls back to JSON.
    binary_feed: bool = False
    #: columnar serve fast path on each replica: rebuild SoA columns and
    #: a per-source fragment arena (:mod:`repro.serve`) from the shipped
    #: feed fragments, so detail/path viewer queries splice pre-rendered
    #: bytes and ``accept=bin1`` viewers get GBF1 frames straight from
    #: the columns.  XML replies stay byte-identical either way.
    columnar_serve: bool = False

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("read tier needs at least one replica")
        if self.serve_queue_limit < 0:
            raise ValueError("serve_queue_limit must be >= 0")
        if self.hedge_floor <= 0 or self.hedge_ceiling < self.hedge_floor:
            raise ValueError("need 0 < hedge_floor <= hedge_ceiling")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.overload_cooldown < 0:
            raise ValueError("overload_cooldown must be non-negative")
        if self.lease <= 0:
            raise ValueError("lease must be positive")
