"""FrontDoor: rendezvous-hashed viewer routing across read replicas.

Viewers connect to one stable endpoint; the front door picks a replica
by highest-random-weight (rendezvous) hashing of the viewer's host name
against each replica, so a given viewer session keeps hitting the same
replica (warm conditional-poll generation tokens, stable latency) while
the population as a whole spreads evenly -- and the loss of one replica
only remaps the viewers that were on it.

Health and hedging reuse the PR 3 resilience primitives:

- every replica gets an :class:`~repro.core.resilience.AdaptiveTimeout`
  (EWMA srtt + k*rttvar) fed from its observed round trips;
- an ``OVERLOADED`` reply benches the replica for a cooldown, and the
  request fails over to the viewer's next rendezvous choice;
- a request that outlives its replica's adaptive deadline fires ONE
  hedged duplicate at the next choice; first answer wins (the loser's
  reply is ignored, its RTT still feeds the estimator).

The proxied reply is produced asynchronously, which is what
:class:`repro.net.tcp.DeferredResponse` exists for: the front door's
handler returns a deferred, and resolves it whenever the winning
replica answers.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.core.resilience import AdaptiveTimeout, Overloaded
from repro.net.address import Address
from repro.net.fabric import Fabric
from repro.net.tcp import DeferredResponse, Response, TcpNetwork, TcpTimeout
from repro.readtier.config import ReadTierConfig
from repro.readtier.replica import ReadReplica
from repro.sim.engine import Engine
from repro.sim.resources import DEFAULT_CAPACITY, CostModel, CpuAccount


def rendezvous_weight(client: str, replica: str) -> int:
    """Stable HRW weight of one (viewer, replica) pair.

    blake2b, not the built-in ``hash()``: Python salts string hashing
    per process, which would re-shuffle every viewer across replicas on
    each run and make placement untestable.
    """
    digest = hashlib.blake2b(
        f"{client}|{replica}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ReplicaHealth:
    """Front-door-side view of one replica's serving health."""

    def __init__(self, replica: ReadReplica, config: ReadTierConfig) -> None:
        self.replica = replica
        self.latency = AdaptiveTimeout(
            floor=config.hedge_floor, ceiling=config.hedge_ceiling
        )
        self.benched_until = 0.0
        self.served = 0
        self.timeouts = 0
        self.overloads = 0

    def healthy(self, now: float) -> bool:
        return now >= self.benched_until


class FrontDoor:
    """One stable query endpoint fanning viewer load across replicas."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        tcp: TcpNetwork,
        host: str,
        replicas: List[ReadReplica],
        config: Optional[ReadTierConfig] = None,
        costs: Optional[CostModel] = None,
        capacity: float = DEFAULT_CAPACITY,
    ) -> None:
        if not replicas:
            raise ValueError("front door needs at least one replica")
        self.engine = engine
        self.tcp = tcp
        self.host = host
        self.config = config or replicas[0].config
        self.costs = costs if costs is not None else replicas[0].costs
        if not fabric.has_host(host):
            fabric.add_host(host)
        self.cpu = CpuAccount(f"frontdoor:{host}", capacity)
        self.health: Dict[str, ReplicaHealth] = {
            replica.name: ReplicaHealth(replica, self.config)
            for replica in replicas
        }
        self.address = Address.gmetad(host)
        # stats
        self.requests_routed = 0
        self.hedges_fired = 0
        self.hedge_wins = 0
        self.failovers = 0
        self.upstream_timeouts = 0
        self.exhausted = 0
        self._started = False

    def start(self) -> "FrontDoor":
        if self._started:
            raise RuntimeError(f"front door on {self.host} already started")
        self._started = True
        self.tcp.listen(self.address, self._serve)
        return self

    def stop(self) -> None:
        self.tcp.close(self.address)
        self._started = False

    def charge(self, work_units: float, category: str) -> float:
        """Charge CPU work to the front door's own account."""
        return self.cpu.charge(work_units, category)

    # -- placement ---------------------------------------------------------

    def rank(self, client: str) -> List[ReplicaHealth]:
        """All replicas in this viewer's rendezvous preference order."""
        return sorted(
            self.health.values(),
            key=lambda h: rendezvous_weight(client, h.replica.name),
            reverse=True,
        )

    def _candidates(self, client: str) -> List[ReplicaHealth]:
        now = self.engine.now
        ranked = self.rank(client)
        healthy = [h for h in ranked if h.healthy(now)]
        # every replica benched: better to try them in order than to
        # reject outright -- a bench is a hint, not a death certificate
        return healthy or ranked

    # -- request path ------------------------------------------------------

    def _serve(self, client: str, request: object) -> DeferredResponse:
        self.requests_routed += 1
        route_seconds = self.charge(
            self.costs.query_fixed
            + self.costs.hash_insert * len(self.health),
            "query",
        )
        deferred = DeferredResponse()
        candidates = self._candidates(client)
        state = {"next": 0, "inflight": 0, "hedged": False}

        def resolve(payload: object, service_seconds: float) -> None:
            if not deferred.resolved:
                deferred.resolve(
                    Response(
                        payload,
                        service_seconds=route_seconds + service_seconds,
                    )
                )

        def launch(hedge: bool = False) -> None:
            if deferred.resolved:
                return
            if state["next"] >= len(candidates):
                if state["inflight"] == 0:
                    # nothing left to wait for: admit defeat loudly
                    self.exhausted += 1
                    resolve(
                        Overloaded(retry_after=self.config.overload_cooldown),
                        0.0,
                    )
                return
            health = candidates[state["next"]]
            state["next"] += 1
            attempt(health, hedge)

        def attempt(health: ReplicaHealth, hedge: bool) -> None:
            state["inflight"] += 1
            if hedge:
                self.hedges_fired += 1
            self.charge(self.costs.tcp_connect, "network")
            settled = {"flag": False}

            def settle() -> bool:
                if settled["flag"]:
                    return False
                settled["flag"] = True
                state["inflight"] -= 1
                return True

            def on_response(payload: object, rtt: float) -> None:
                if not settle():
                    return
                health.latency.observe(rtt)
                if isinstance(payload, Overloaded):
                    health.overloads += 1
                    health.benched_until = (
                        self.engine.now + self.config.overload_cooldown
                    )
                    if not deferred.resolved:
                        self.failovers += 1
                        launch()
                    return
                health.served += 1
                if deferred.resolved:
                    return  # a hedge race already answered the viewer
                if hedge:
                    self.hedge_wins += 1
                # relaying costs the cheap (cached) serve rate; the
                # replica already paid full serialization
                relay_size = getattr(payload, "size_bytes", None)
                if relay_size is None:
                    relay_size = len(str(payload))
                seconds = self.charge(
                    self.costs.serve_byte_cached * relay_size, "serve"
                )
                resolve(payload, seconds)

            def on_timeout(error: TcpTimeout) -> None:
                if not settle():
                    return
                health.latency.observe_timeout()
                health.timeouts += 1
                self.upstream_timeouts += 1
                if not deferred.resolved:
                    self.failovers += 1
                    launch()

            self.tcp.request(
                self.host,
                health.replica.address,
                request,
                on_response=on_response,
                timeout=self.config.request_timeout,
                on_timeout=on_timeout,
                request_size=len(str(request)),
            )
            if not hedge and not state["hedged"]:
                deadline = health.latency.timeout

                def maybe_hedge() -> None:
                    if (
                        settled["flag"]
                        or state["hedged"]
                        or deferred.resolved
                    ):
                        return
                    state["hedged"] = True
                    launch(hedge=True)

                self.engine.call_later(deadline, maybe_hedge)

        launch()
        return deferred

    def stats(self) -> Dict[str, object]:
        """Aggregate routing counters plus per-replica health."""
        return {
            "requests_routed": self.requests_routed,
            "hedges_fired": self.hedges_fired,
            "hedge_wins": self.hedge_wins,
            "failovers": self.failovers,
            "upstream_timeouts": self.upstream_timeouts,
            "exhausted": self.exhausted,
            "replicas": {
                name: {
                    "served": h.served,
                    "timeouts": h.timeouts,
                    "overloads": h.overloads,
                    "srtt": h.latency.srtt,
                }
                for name, h in sorted(self.health.items())
            },
        }
