"""Command-line interface: ``python -m repro`` or the ``repro-sim`` script.

Subcommands:

- ``experiment {fig5,fig6,table1,all}`` -- run the paper's experiments
  and print the paper-style reports;
- ``pubsub`` -- compare push (repro.pubsub) against poll delivery at
  equal freshness across federation widths;
- ``run`` -- run the Fig. 2 federation for a while and print the meta
  view and per-gmetad CPU;
- ``query`` -- build the federation, issue one path query against a
  chosen gmetad, print the XML;
- ``trace`` -- run the federation with self-observability on and dump
  the trace spans as JSON lines (plus a per-phase summary on stderr);
- ``readtier`` -- stand up a replicated read tier behind one gmetad of
  the Fig. 2 tree, drive a Zipf viewer fleet through the front door,
  and print placement/serving stats plus a byte-identity check;
- ``storage`` -- archive one gmetad of the Fig. 2 tree through a
  sharded, replicated storage-node fleet, kill a node mid-run, and
  print placement, failover and repair stats;
- ``analytics`` -- replay a fault schedule (load ramps, host flaps,
  optional storage-node kill) against one analytics-enabled gmetad and
  print predictive-vs-static detection lead times and false positives;
- ``check-gmetad-conf`` / ``check-gmond-conf`` -- parse real Ganglia
  config files and show how they map onto this library;
- ``calibrate`` -- re-derive the CPU capacity anchor.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.experiments import (
    PAPER_CLUSTER_SIZES,
    run_figure5,
    run_figure6,
    run_table1,
)
from repro.bench.topology import build_paper_tree
from repro.config.gmetadconf import ConfigError, parse_gmetad_conf
from repro.config.gmondconf import parse_gmond_conf


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--hosts", type=int, default=20,
                        help="hosts per cluster (default 20)")
    parser.add_argument("--seed", type=int, default=14)
    parser.add_argument("--window", type=float, default=90.0,
                        help="measurement window, simulated seconds")
    parser.add_argument("--warmup", type=float, default=30.0)


def _cmd_experiment(args: argparse.Namespace) -> int:
    reports = []
    if args.which in ("fig5", "all"):
        reports.append(
            run_figure5(
                hosts_per_cluster=args.hosts, window=args.window,
                warmup=args.warmup, seed=args.seed,
            ).report()
        )
    if args.which in ("fig6", "all"):
        sizes = (
            PAPER_CLUSTER_SIZES
            if args.paper_sizes
            else tuple(s for s in (5, 10, 20, 40) if s <= max(args.hosts, 40))
        )
        reports.append(
            run_figure6(
                sizes=sizes, window=min(args.window, 60.0),
                warmup=args.warmup, seed=args.seed,
            ).report()
        )
    if args.which in ("table1", "all"):
        reports.append(
            run_table1(
                hosts_per_cluster=args.hosts, warmup=max(args.warmup, 45.0),
                seed=args.seed,
            ).report()
        )
    print("\n\n".join(reports))
    return 0


def _cmd_pubsub(args: argparse.Namespace) -> int:
    from repro.bench.experiments import run_pubsub_comparison
    from repro.bench.export import pubsub_csv

    try:
        result = run_pubsub_comparison(
            cluster_counts=tuple(args.clusters),
            hosts_per_cluster=args.hosts,
            window=args.window,
            warmup=args.warmup,
            refresh_interval=args.change_interval,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result.report())
    if args.csv:
        try:
            with open(args.csv, "w") as handle:
                handle.write(pubsub_csv(result))
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    federation = build_paper_tree(
        args.design, hosts_per_cluster=args.hosts, seed=args.seed,
        archive_mode="account",
    )
    federation.start()
    cpu = federation.run_measurement_window(args.window, args.warmup)
    print(f"{args.design} federation, {args.hosts}-host clusters, "
          f"{args.window:.0f}s window:\n")
    for name in sorted(cpu):
        print(f"  gmetad {name:8s} CPU {cpu[name]:6.2f}%")
    root = federation.gmetad("root")
    if args.design == "nlevel":
        rollup, _ = root.datastore.root_summary()
        load = rollup.metrics.get("load_one")
        print(f"\nfederation: {rollup.hosts_up} hosts up, "
              f"{rollup.hosts_down} down"
              + (f", mean load {load.mean():.2f}" if load else ""))
    federation.stop()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    federation = build_paper_tree(
        args.design, hosts_per_cluster=args.hosts, seed=args.seed,
        archive_mode="account",
    )
    federation.start()
    federation.engine.run_for(args.warmup)
    try:
        gmetad = federation.gmetad(args.at)
    except KeyError:
        print(f"error: unknown gmetad {args.at!r}; choose from "
              f"{sorted(federation.gmetads)}", file=sys.stderr)
        return 2
    xml, seconds = gmetad.serve_query(args.query)
    print(xml, end="")
    print(f"-- served by {args.at} in {seconds*1e3:.3f} ms (CPU)",
          file=sys.stderr)
    federation.stop()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.tracestats import phase_coverage, summarize_jsonl
    from repro.obs import ObservabilityConfig

    federation = build_paper_tree(
        args.design, hosts_per_cluster=args.hosts, seed=args.seed,
        archive_mode="account", incremental=not args.eager,
        observability=ObservabilityConfig(
            trace_capacity=args.capacity,
            drift_check_interval=args.drift_interval,
        ),
    )
    federation.start()
    federation.engine.run_for(args.warmup + args.window)
    # merge every daemon's buffer; each span line carries its daemon name
    jsonl = "".join(
        federation.gmetad(name).obs.spans_jsonl()
        for name in sorted(federation.gmetads)
    )
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(jsonl)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(jsonl, end="")
    summary = summarize_jsonl(jsonl)
    print(summary.report(), file=sys.stderr)
    missing = phase_coverage(summary)
    if missing:
        print(f"warning: phases never traced: {missing}", file=sys.stderr)
    federation.stop()
    return 0


def _cmd_check_gmetad(args: argparse.Namespace) -> int:
    try:
        text = open(args.file).read()
        parsed = parse_gmetad_conf(text)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"gridname:    {parsed.gridname}")
    print(f"design:      {parsed.design} "
          f"(scalability {'on' if parsed.scalability else 'off'})")
    print(f"xml_port:    {parsed.xml_port}")
    if parsed.authority:
        print(f"authority:   {parsed.authority}")
    if parsed.trusted_hosts:
        print(f"trusted:     {', '.join(parsed.trusted_hosts)}")
    print(f"data sources ({len(parsed.data_sources)}):")
    for source in parsed.data_sources:
        endpoints = " ".join(str(a) for a in source.addresses)
        print(f"  {source.name:24s} every {source.poll_interval:g}s "
              f"from {endpoints}")
    return 0


def _cmd_check_gmond(args: argparse.Namespace) -> int:
    try:
        config = parse_gmond_conf(open(args.file).read())
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"cluster:     {config.cluster_name} (owner {config.owner})")
    print(f"multicast:   {config.multicast_group}")
    print(f"heartbeat:   every {config.heartbeat_interval:g}s "
          f"(down after {config.heartbeat_window:g}s)")
    print(f"host_dmax:   {config.host_dmax:g}s"
          + (" (never forget)" if config.host_dmax == 0 else ""))
    return 0


def _cmd_gstat(args: argparse.Namespace) -> int:
    from repro.tools import gstat_from_gmetad

    federation = build_paper_tree(
        args.design, hosts_per_cluster=args.hosts, seed=args.seed,
        archive_mode="account",
    )
    federation.start()
    federation.engine.run_for(args.warmup)
    try:
        gmetad = federation.gmetad(args.at)
    except KeyError:
        print(f"error: unknown gmetad {args.at!r}; choose from "
              f"{sorted(federation.gmetads)}", file=sys.stderr)
        return 2
    print(gstat_from_gmetad(gmetad, source=args.source,
                            show_hosts=args.hosts_detail))
    federation.stop()
    return 0


def _cmd_readtier(args: argparse.Namespace) -> int:
    from repro.readtier.config import ReadTierConfig
    from repro.readtier.fleet import ViewerFleet, build_read_tier, viewer_paths

    federation = build_paper_tree(
        args.design, hosts_per_cluster=args.hosts, seed=args.seed,
        archive_mode="account",
    )
    federation.start()
    engine = federation.engine
    engine.run_for(args.warmup)
    try:
        ingest = federation.gmetad(args.at)
    except KeyError:
        print(f"error: unknown gmetad {args.at!r}; choose from "
              f"{sorted(federation.gmetads)}", file=sys.stderr)
        return 2
    tier = build_read_tier(
        engine, federation.fabric, federation.tcp, ingest,
        replicas=args.replicas,
        config=ReadTierConfig(replicas=args.replicas),
    )
    deadline = engine.now + 300.0
    while not tier.synced() and engine.now < deadline:
        engine.run_for(15.0)
    if not tier.synced():
        print("error: read tier never reached a consistent generation",
              file=sys.stderr)
        return 1
    fleet = ViewerFleet(
        engine, federation.fabric, federation.tcp, tier.address,
        viewer_paths(ingest), clients=args.clients,
        per_client_qps=args.qps, aggregators=32, seed=args.seed,
    ).start()
    engine.run_for(args.window)
    fleet.stop()
    window = fleet.take_window()

    triple = (
        ingest.datastore.generation,
        ingest.datastore.content_version,
        ingest.datastore.detail_version,
    )
    print(f"read tier at {args.at}: {args.replicas} replicas behind "
          f"{tier.address}")
    for replica in tier.replicas:
        match = "matched" if replica.ingest_versions == triple else "catching up"
        print(f"  {replica.name:16s} gen={replica.ingest_versions} "
              f"({match})  served={replica.queries_served} "
              f"shed={replica.queries_shed} installs={replica.installs}")
    matched = [r for r in tier.replicas if r.ingest_versions == triple]
    if matched:
        replica = matched[0]
        identical = replica.serve_query("/")[0] == ingest.serve_query("/")[0]
        print(f"byte identity at generation {triple}: "
              f"{'OK' if identical else 'MISMATCH'} ({replica.name})")
    door = tier.frontdoor
    print(f"front door: routed={door.requests_routed} "
          f"hedges={door.hedges_fired} (won {door.hedge_wins}) "
          f"failovers={door.failovers} exhausted={door.exhausted}")
    qps = window.ok / args.window if args.window > 0 else 0.0
    print(f"viewer fleet ({args.clients} clients, "
          f"{fleet.offered_qps:g} qps offered, {args.window:g}s window): "
          f"sent={window.sent} ok={window.ok} "
          f"overloaded={window.overloaded} timeouts={window.timeouts}")
    print(f"  served {qps:.1f} qps, p50 "
          f"{1000 * window.percentile(0.50):.2f} ms, p99 "
          f"{1000 * window.percentile(0.99):.2f} ms")
    federation.stop()
    return 0


def _cmd_storage(args: argparse.Namespace) -> int:
    from repro.faults.injector import FaultInjector
    from repro.faults.schedules import FaultEvent, FaultSchedule
    from repro.storage import StorageTierConfig

    config = StorageTierConfig(
        nodes=args.nodes,
        shards=args.shards,
        replication=args.replication,
        repair_interval=args.repair_interval,
    )
    federation = build_paper_tree(
        args.design, hosts_per_cluster=args.hosts, seed=args.seed,
        archive_mode="full", storage_tier=config,
    )
    federation.start()
    engine = federation.engine
    injector = FaultInjector(engine, federation.fabric)
    try:
        gmetad = federation.gmetad(args.at)
    except KeyError:
        print(f"error: unknown gmetad {args.at!r}; choose from "
              f"{sorted(federation.gmetads)}", file=sys.stderr)
        return 2
    tier = gmetad.rrd_store
    injector.register_storage_tier(tier)
    kill_at = args.warmup + args.window / 3.0
    schedule = FaultSchedule([
        FaultEvent(at=kill_at, action="storage_kill", host="st00",
                   duration=args.window / 3.0),
    ])
    schedule.apply(injector)
    engine.run_for(args.warmup + args.window)
    stats = tier.stats()
    print(f"storage tier at {args.at}: {args.nodes} nodes x "
          f"{args.shards} shards, R={args.replication} "
          f"({args.window:.0f}s window, st00 killed at t={kill_at:.0f}s)")
    for node in tier.nodes.values():
        state = "up" if node.up else "DOWN"
        print(f"  {node.name}  {state:4s}  updates={node.updates_applied:8d} "
              f"busy={node.busy_seconds:8.3f}s flushes={node.flushes} "
              f"kills={node.kills}")
    print(f"logical updates: {int(stats['logical_updates'])} "
          f"({int(stats['physical_updates'])} physical across replicas)")
    print(f"series: {int(stats['series'])} in {int(stats['shards'])} shards; "
          f"groups migrated by clustering: {int(stats['groups_migrated'])}")
    print(f"failover fetches: {int(stats['failover_fetches'])}  "
          f"stale: {int(stats['stale_fetches'])}  "
          f"failed: {int(stats['fetch_failures'])}  "
          f"updates lost: {int(stats['updates_lost'])}")
    print(f"under-replicated shards now: "
          f"{int(stats['under_replicated_shards'])}; "
          f"repairs completed: {int(stats['repairs_completed'])}")
    if tier.repair_times:
        worst = max(tier.repair_times)
        print(f"time-to-repair: worst {worst:.1f}s over "
              f"{len(tier.repair_times)} incidents "
              f"(deadline {config.repair_deadline:.0f}s: "
              f"{'OK' if worst <= config.repair_deadline else 'MISSED'})")
    crit = stats["critical_path_seconds"]
    if crit > 0:
        print(f"parallel flush: critical path {crit:.3f}s of "
              f"{stats['total_node_seconds']:.3f}s total node time "
              f"({stats['total_node_seconds'] / crit:.2f}x overlap)")
    federation.stop()
    return 0


def _cmd_analytics(args: argparse.Namespace) -> int:
    from repro.analytics.replay import default_schedule, run_replay

    schedule = default_schedule(
        hosts=args.hosts, duration=args.duration, storage=args.storage
    )
    result = run_replay(
        schedule,
        seed=args.seed,
        storage=args.storage,
        window_rows=args.window_rows,
        horizon=args.horizon,
    )
    path = "storage-tier scalar fallback" if args.storage else "columnar bank"
    print(f"analytics replay: {result.hosts} hosts, "
          f"{result.duration:.0f}s, {path}")
    for ramp in result.ramps:
        lead = "n/a" if ramp.lead is None else f"{ramp.lead:7.1f}s"
        static_t = "never" if ramp.static_fire is None else f"{ramp.static_fire:.0f}s"
        pred_t = (
            "never" if ramp.predictive_fire is None
            else f"{ramp.predictive_fire:.0f}s"
        )
        print(f"  ramp host {ramp.host} [{ramp.start:.0f}..{ramp.end:.0f}s]: "
              f"static fired {static_t}, predictive {pred_t}, lead {lead}")
    print(f"median detection lead: {result.median_lead:.1f}s "
          f"(predictive fires {result.predictive_fires}, "
          f"static fires {result.static_fires})")
    print(f"false positives: {result.false_positives} of "
          f"{result.evaluation_windows} evaluation windows "
          f"({100.0 * result.fp_rate:.2f}%)")
    print(f"analytics passes: {result.analytics_passes} "
          f"({result.analytics_series} series per pass)")
    if args.verbose:
        for line in result.notifications:
            print(line)
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.bench.calibration import calibrate_capacity, measure_root_cpu

    capacity = calibrate_capacity(
        target_percent=args.target, hosts_per_cluster=args.hosts,
        window=args.window,
    )
    achieved = measure_root_cpu(
        capacity=capacity, hosts_per_cluster=args.hosts, window=args.window
    )
    print(f"capacity for 1-level root at {args.target}% CPU "
          f"({args.hosts}-host clusters): {capacity:.3e} units/s "
          f"(achieves {achieved:.2f}%)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-sim argument parser (one sub-parser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Ganglia wide-area monitoring reproduction (CLUSTER 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiment", help="run a paper experiment")
    p.add_argument("which", choices=("fig5", "fig6", "table1", "all"))
    _add_common(p)
    p.add_argument("--paper-sizes", action="store_true",
                   help="fig6: use the paper's 10..500 host sizes (slow)")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "pubsub", help="compare push vs poll delivery at equal freshness"
    )
    p.add_argument("--clusters", type=int, nargs="+", default=[2, 4, 8],
                   help="federation widths to sweep (default 2 4 8)")
    p.add_argument("--change-interval", type=float, default=240.0,
                   help="seconds between metric value changes (default 240)")
    p.add_argument("--csv", default=None,
                   help="also write the series to this CSV file")
    _add_common(p)
    p.set_defaults(func=_cmd_pubsub)

    p = sub.add_parser("run", help="run the Fig. 2 federation once")
    p.add_argument("--design", choices=("nlevel", "1level"), default="nlevel")
    _add_common(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("query", help="issue one path query")
    p.add_argument("query", help="e.g. '/sdsc-c0/sdsc-c0-0-3/load_one'")
    p.add_argument("--at", default="sdsc", help="gmetad to ask (default sdsc)")
    p.add_argument("--design", choices=("nlevel", "1level"), default="nlevel")
    _add_common(p)
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser(
        "trace", help="dump trace spans (JSONL) from an observed federation"
    )
    p.add_argument("--out", default=None,
                   help="write the JSONL dump here instead of stdout")
    p.add_argument("--capacity", type=int, default=4096,
                   help="per-daemon trace buffer capacity (default 4096)")
    p.add_argument("--drift-interval", type=float, default=60.0,
                   help="drift-auditor sweep interval, 0 disables")
    p.add_argument("--eager", action="store_true",
                   help="trace the eager baseline instead of incremental")
    p.add_argument("--design", choices=("nlevel", "1level"), default="nlevel")
    _add_common(p)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("check-gmetad-conf", help="parse a gmetad.conf")
    p.add_argument("file")
    p.set_defaults(func=_cmd_check_gmetad)

    p = sub.add_parser("check-gmond-conf", help="parse a gmond.conf")
    p.add_argument("file")
    p.set_defaults(func=_cmd_check_gmond)

    p = sub.add_parser("gstat", help="print federation/cluster status")
    p.add_argument("--at", default="root", help="gmetad to inspect")
    p.add_argument("--source", default=None, help="limit to one data source")
    p.add_argument("--hosts-detail", action="store_true",
                   help="list individual hosts")
    p.add_argument("--design", choices=("nlevel", "1level"), default="nlevel")
    _add_common(p)
    p.set_defaults(func=_cmd_gstat)

    p = sub.add_parser(
        "readtier",
        help="replicated read tier + viewer fleet over the Fig. 2 tree",
    )
    p.add_argument("--at", default="root",
                   help="which gmetad gets the read tier (default root)")
    p.add_argument("--replicas", type=int, default=4)
    p.add_argument("--clients", type=int, default=2000,
                   help="viewer fleet size (folded into aggregators)")
    p.add_argument("--qps", type=float, default=0.02,
                   help="per-client query rate (default 0.02)")
    p.add_argument("--design", choices=("nlevel", "1level"), default="nlevel")
    _add_common(p)
    p.set_defaults(func=_cmd_readtier)

    p = sub.add_parser(
        "storage",
        help="sharded+replicated storage tier under a node-kill schedule",
    )
    p.add_argument("--at", default="sdsc",
                   help="which gmetad's tier to inspect (default sdsc)")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--shards", type=int, default=16)
    p.add_argument("--replication", type=int, default=2)
    p.add_argument("--repair-interval", type=float, default=15.0)
    p.add_argument("--design", choices=("nlevel", "1level"), default="nlevel")
    _add_common(p)
    p.set_defaults(func=_cmd_storage)

    p = sub.add_parser(
        "analytics",
        help="replay fault schedules: predictive vs static alerting",
    )
    p.add_argument("--hosts", type=int, default=8,
                   help="emulated hosts in the replay cluster (default 8)")
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument("--duration", type=float, default=900.0,
                   help="simulated seconds to replay (default 900)")
    p.add_argument("--window-rows", type=int, default=8,
                   help="archive rows per analytics window (default 8)")
    p.add_argument("--horizon", type=float, default=120.0,
                   help="predict_cross horizon, seconds (default 120)")
    p.add_argument("--storage", action="store_true",
                   help="archive through a storage tier and kill a node")
    p.add_argument("--verbose", action="store_true",
                   help="also print every alarm notification")
    p.set_defaults(func=_cmd_analytics)

    p = sub.add_parser("calibrate", help="re-derive the CPU capacity anchor")
    p.add_argument("--target", type=float, default=14.0)
    p.add_argument("--hosts", type=int, default=100)
    p.add_argument("--window", type=float, default=90.0)
    p.set_defaults(func=_cmd_calibrate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
