"""Network addresses for the simulated fabric.

An :class:`Address` is a ``(host, port)`` pair.  Host names are plain
strings (``"meteor-0-0"``, ``"gmeta.sdsc"``); ports are integers.  Ganglia
convention: gmond serves cluster XML on 8649, gmetad serves federation
XML (and queries) on 8651.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Port on which every gmond agent serves its cluster's full XML state.
GMOND_XML_PORT = 8649
#: Port on which gmetad serves federation XML and path queries.
GMETAD_XML_PORT = 8651
#: Port on which a gmetad's pub-sub broker accepts subscriptions.
GMETAD_PUBSUB_PORT = 8652


@dataclass(frozen=True, order=True)
class Address:
    """Immutable ``(host, port)`` endpoint identifier."""

    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.host:
            raise ValueError("host must be a non-empty string")
        if not (0 < self.port < 65536):
            raise ValueError(f"port out of range: {self.port}")

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"

    @classmethod
    def gmond(cls, host: str) -> "Address":
        """The gmond XML server endpoint on ``host``."""
        return cls(host, GMOND_XML_PORT)

    @classmethod
    def gmetad(cls, host: str) -> "Address":
        """The gmetad XML/query endpoint on ``host``."""
        return cls(host, GMETAD_XML_PORT)

    @classmethod
    def pubsub(cls, host: str) -> "Address":
        """The pub-sub broker endpoint on ``host``."""
        return cls(host, GMETAD_PUBSUB_PORT)
