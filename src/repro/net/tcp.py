"""Simulated TCP request/response streams ("XML over TCP", Fig. 1).

Gmetad talks to gmond agents and to child gmetads by opening a TCP
connection and reading an XML stream; viewers do the same against gmetad.
The model here is a single request/response exchange:

1. connect: one round trip ``2 * latency`` (SYN / SYN-ACK),
2. request transfer: usually tiny (a query line),
3. server service time: returned by the handler (CPU time the server
   charged while producing the response),
4. response transfer: ``latency + size / bandwidth``.

Failures surface exactly as they do to the real gmetad: a connection to
an unreachable or dead host produces **no response**, and the client's
timeout fires -- "Remote failures are handled identically to link
failures, and are detected with TCP timeouts" (§2.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.net.address import Address
from repro.net.fabric import Fabric, GrayConditions, LinkSpec
from repro.sim.engine import Engine, Event


class TcpTimeout(Exception):
    """Raised/reported when a request sees no response within the timeout.

    Carries the diagnostic context a caller needs to react without
    keeping its own bookkeeping: the target :class:`Address` that never
    answered, the client host that asked, and the timeout that elapsed.
    The poller's fail-over and the pub-sub reconnect logic both key off
    ``address``.
    """

    def __init__(
        self, address: Address, timeout: float, client: Optional[str] = None
    ) -> None:
        who = f" (from {client})" if client else ""
        super().__init__(
            f"timeout after {timeout}s connecting to {address}{who}"
        )
        self.address = address
        self.timeout = timeout
        self.client = client


@dataclass
class Response:
    """What a server handler returns.

    ``payload`` is the response object (Ganglia XML text in practice);
    ``service_seconds`` is how long the server took to produce it, which
    delays the response delivery (the paper's query-latency experiments
    measure exactly this path).
    """

    payload: object
    service_seconds: float = 0.0

    @property
    def size_bytes(self) -> int:
        payload = self.payload
        if isinstance(payload, (str, bytes)):
            return max(1, len(payload))
        declared = getattr(payload, "size_bytes", None)
        if isinstance(declared, int) and declared > 0:
            return declared  # structured payloads model their own wire size
        return 64  # small structured control message


class DeferredResponse:
    """A handler's promise to answer later (proxying servers).

    The TCP model calls handlers synchronously inside the server-side
    event, which is fine for gmetad (service time is *charged*, not
    waited out) but impossible for a proxy that must itself issue a
    simulated request before it can answer.  A handler may return a
    ``DeferredResponse`` instead of a :class:`Response`; the connection
    then stays open until :meth:`resolve` supplies the real response, at
    which point delivery proceeds exactly as if the handler had returned
    it directly -- gray conditions are re-read at resolution time, and a
    client whose timeout already fired sees nothing.
    """

    def __init__(self) -> None:
        self.resolved = False
        self._callback: Optional[Callable[["Response"], None]] = None
        self._pending: Optional["Response"] = None

    def resolve(self, response: object) -> None:
        """Supply the response; exactly once per deferred."""
        if self.resolved:
            raise RuntimeError("deferred response already resolved")
        self.resolved = True
        if not isinstance(response, Response):
            response = Response(response)
        if self._callback is None:
            self._pending = response  # resolved before the network bound us
        else:
            self._callback(response)

    def _bind(self, callback: Callable[["Response"], None]) -> None:
        self._callback = callback
        if self._pending is not None:
            pending, self._pending = self._pending, None
            callback(pending)


#: Server handler: (client_host, request) -> Response
Handler = Callable[[str, object], Response]
#: Client success callback: (payload, rtt_seconds)
OnResponse = Callable[[object, float], None]
#: Client failure callback: (error,)
OnTimeout = Callable[[TcpTimeout], None]


class TcpServer:
    """A listening endpoint bound to an :class:`Address`."""

    def __init__(self, address: Address, handler: Handler) -> None:
        self.address = address
        self.handler = handler
        self.requests_served = 0


#: What corruption looks like on the wire: a close tag nothing opened.
#: The Ganglia parser rejects a mismatched close even with validation
#: off, so a corrupted payload is *detected*, never silently ingested.
_CORRUPTION_JUNK = "</CORRUPTED>"


class TcpNetwork:
    """Connection broker between simulated hosts.

    ``rng`` drives the gray-condition coin flips (corruption,
    truncation, latency spikes).  It is only consulted on links the
    fabric marks gray, so runs without gray conditions draw nothing and
    stay byte-identical to a network built without an rng at all.
    """

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._engine = engine
        self._fabric = fabric
        self._rng = rng if rng is not None else random.Random(0x47524159)
        self._servers: Dict[Address, TcpServer] = {}
        # statistics
        self.requests_sent = 0
        self.responses_delivered = 0
        self.timeouts = 0
        self.corrupted_responses = 0
        self.truncated_responses = 0
        self.spiked_responses = 0

    # -- server side -------------------------------------------------------

    def listen(self, address: Address, handler: Handler) -> TcpServer:
        """Bind a handler to an address; one listener per address."""
        if address in self._servers:
            raise ValueError(f"address {address} already has a listener")
        if not self._fabric.has_host(address.host):
            raise KeyError(f"cannot listen on unknown host {address.host!r}")
        server = TcpServer(address, handler)
        self._servers[address] = server
        return server

    def close(self, address: Address) -> None:
        """Stop listening on an address (idempotent)."""
        self._servers.pop(address, None)

    def is_listening(self, address: Address) -> bool:
        """True if something is bound to the address."""
        return address in self._servers

    # -- client side -------------------------------------------------------

    def request(
        self,
        client: str,
        address: Address,
        payload: object,
        on_response: OnResponse,
        timeout: float = 10.0,
        on_timeout: Optional[OnTimeout] = None,
        request_size: int = 64,
    ) -> None:
        """Open a connection, send ``payload``, await the response.

        Exactly one of ``on_response`` / ``on_timeout`` fires.  The
        reachability check happens twice -- at connect time and when the
        response would be delivered -- so a partition or crash occurring
        *during* the exchange also manifests as a timeout.
        """
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.requests_sent += 1
        start = self._engine.now

        timed_out = {"flag": False}

        def fire_timeout() -> None:
            timed_out["flag"] = True
            self.timeouts += 1
            if on_timeout is not None:
                on_timeout(TcpTimeout(address, timeout, client))

        timeout_event: Event = self._engine.call_later(timeout, fire_timeout)

        server = self._servers.get(address)
        if server is None or not self._fabric.reachable(client, address.host):
            # Nothing will ever answer; the timeout stands.
            return

        link = self._fabric.link(client, address.host)
        gray = self._fabric.gray(client, address.host)
        # connect handshake (1 RTT) + request transfer
        arrive_delay = 2.0 * link.latency + self._transfer(
            link, request_size, gray
        )

        def at_server() -> None:
            if timed_out["flag"]:
                return
            # Server host may have died while the request was in flight.
            if self._servers.get(address) is not server:
                return
            if not self._fabric.reachable(client, address.host):
                return
            server.requests_served += 1
            result = server.handler(client, payload)
            if isinstance(result, DeferredResponse):
                result._bind(finish)  # answer comes later; stream stays open
                return
            finish(result)

        def finish(response: object) -> None:
            if timed_out["flag"]:
                return  # client gave up while the proxy was working
            if self._servers.get(address) is not server:
                return  # server restarted/closed before it could answer
            if not isinstance(response, Response):
                response = Response(response)
            # re-read: conditions may have changed while the request flew
            gray_now = self._fabric.gray(client, address.host)
            spike_extra = 0.0
            if gray_now is not None:
                response, spike_extra = self._degrade_response(
                    gray_now, response
                )
            back_delay = (
                response.service_seconds
                + self._transfer(link, response.size_bytes, gray_now)
                + spike_extra
            )
            self._engine.call_later(back_delay, deliver, response)

        def deliver(response: Response) -> None:
            if timed_out["flag"]:
                return
            if not self._fabric.reachable(address.host, client):
                return
            timeout_event.cancel()
            self.responses_delivered += 1
            on_response(response.payload, self._engine.now - start)

        self._engine.call_later(arrive_delay, at_server)

    # -- gray-condition mechanics ------------------------------------------

    @staticmethod
    def _transfer(
        link: LinkSpec, size_bytes: int, gray: Optional[GrayConditions]
    ) -> float:
        """One-way transfer time, honoring any bandwidth degradation.

        With no gray conditions this is exactly ``link.transfer_time``
        (same floats, same arithmetic), so clean runs are unchanged.
        """
        if gray is None or gray.bandwidth_factor == 1.0:
            return link.transfer_time(size_bytes)
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        return link.latency + size_bytes / (
            link.bandwidth * gray.bandwidth_factor
        )

    def _degrade_response(
        self, gray: GrayConditions, response: Response
    ) -> Tuple[Response, float]:
        """Apply gray conditions to one response.

        Returns the (possibly mangled) response plus any extra latency
        from a spike.  Draw order is fixed -- spike, corrupt, truncate --
        so a seeded rng replays the same damage for the same schedule.
        """
        rng = self._rng
        spike_extra = 0.0
        if gray.spike_probability > 0.0 and gray.spike_seconds > 0.0:
            if rng.random() < gray.spike_probability:
                spike_extra = gray.spike_seconds
                self.spiked_responses += 1
        if gray.corrupt_probability > 0.0 and (
            rng.random() < gray.corrupt_probability
        ):
            self.corrupted_responses += 1
            response = Response(
                self._mangle(response.payload, truncate=False),
                response.service_seconds,
            )
        elif gray.truncate_probability > 0.0 and (
            rng.random() < gray.truncate_probability
        ):
            self.truncated_responses += 1
            response = Response(
                self._mangle(response.payload, truncate=True),
                response.service_seconds,
            )
        return response, spike_extra

    def _mangle(self, payload: object, truncate: bool) -> object:
        """Damage a payload the way a broken stream would.

        Text payloads come back as a plain string: a mangled tagged
        payload loses its generation token (the token was part of the
        bytes), so a client can never present a stale token as if the
        corrupt body were the content it names.  Binary payloads (raw
        bytes, or frame objects carrying a bytes ``data`` attribute)
        get their bytes flipped or cut, again with any generation token
        stripped -- the frame CRC turns either into a clean decode
        error.  Structured control messages (NOT-MODIFIED and friends)
        arrive as unparseable junk.
        """
        raw = self._binary_of(payload)
        if raw is not None:
            damaged = self._mangle_bytes(raw, truncate)
            if isinstance(payload, (bytes, bytearray)):
                return damaged
            return type(payload)(damaged)  # frame object, token dropped
        text: Optional[str] = None
        if isinstance(payload, str):
            text = payload
        else:
            tagged = getattr(payload, "xml", None)
            if isinstance(tagged, str):
                text = tagged
        if text is None:
            return _CORRUPTION_JUNK
        if truncate:
            keep = max(1, int(len(text) * self._rng.uniform(0.1, 0.9)))
            return text[:keep]
        junk = _CORRUPTION_JUNK
        if len(text) <= len(junk):
            return junk
        pos = self._rng.randrange(0, len(text) - len(junk))
        return text[:pos] + junk + text[pos + len(junk):]

    @staticmethod
    def _binary_of(payload: object) -> Optional[bytes]:
        """The wire bytes of a binary payload, or None for text forms."""
        if isinstance(payload, (bytes, bytearray)):
            return bytes(payload)
        data = getattr(payload, "data", None)
        if isinstance(data, (bytes, bytearray)):
            return bytes(data)
        return None

    def _mangle_bytes(self, raw: bytes, truncate: bool) -> bytes:
        """Bit-flip or truncate a byte string (never empty)."""
        if truncate:
            keep = max(1, int(len(raw) * self._rng.uniform(0.1, 0.9)))
            return raw[:keep]
        damaged = bytearray(raw)
        if not damaged:
            return raw
        pos = self._rng.randrange(0, len(damaged))
        damaged[pos] ^= 1 << self._rng.randrange(0, 8)
        return bytes(damaged)
