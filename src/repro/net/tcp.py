"""Simulated TCP request/response streams ("XML over TCP", Fig. 1).

Gmetad talks to gmond agents and to child gmetads by opening a TCP
connection and reading an XML stream; viewers do the same against gmetad.
The model here is a single request/response exchange:

1. connect: one round trip ``2 * latency`` (SYN / SYN-ACK),
2. request transfer: usually tiny (a query line),
3. server service time: returned by the handler (CPU time the server
   charged while producing the response),
4. response transfer: ``latency + size / bandwidth``.

Failures surface exactly as they do to the real gmetad: a connection to
an unreachable or dead host produces **no response**, and the client's
timeout fires -- "Remote failures are handled identically to link
failures, and are detected with TCP timeouts" (§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.net.address import Address
from repro.net.fabric import Fabric
from repro.sim.engine import Engine, Event


class TcpTimeout(Exception):
    """Raised/reported when a request sees no response within the timeout.

    Carries the diagnostic context a caller needs to react without
    keeping its own bookkeeping: the target :class:`Address` that never
    answered, the client host that asked, and the timeout that elapsed.
    The poller's fail-over and the pub-sub reconnect logic both key off
    ``address``.
    """

    def __init__(
        self, address: Address, timeout: float, client: Optional[str] = None
    ) -> None:
        who = f" (from {client})" if client else ""
        super().__init__(
            f"timeout after {timeout}s connecting to {address}{who}"
        )
        self.address = address
        self.timeout = timeout
        self.client = client


@dataclass
class Response:
    """What a server handler returns.

    ``payload`` is the response object (Ganglia XML text in practice);
    ``service_seconds`` is how long the server took to produce it, which
    delays the response delivery (the paper's query-latency experiments
    measure exactly this path).
    """

    payload: object
    service_seconds: float = 0.0

    @property
    def size_bytes(self) -> int:
        payload = self.payload
        if isinstance(payload, (str, bytes)):
            return max(1, len(payload))
        declared = getattr(payload, "size_bytes", None)
        if isinstance(declared, int) and declared > 0:
            return declared  # structured payloads model their own wire size
        return 64  # small structured control message


#: Server handler: (client_host, request) -> Response
Handler = Callable[[str, object], Response]
#: Client success callback: (payload, rtt_seconds)
OnResponse = Callable[[object, float], None]
#: Client failure callback: (error,)
OnTimeout = Callable[[TcpTimeout], None]


class TcpServer:
    """A listening endpoint bound to an :class:`Address`."""

    def __init__(self, address: Address, handler: Handler) -> None:
        self.address = address
        self.handler = handler
        self.requests_served = 0


class TcpNetwork:
    """Connection broker between simulated hosts."""

    def __init__(self, engine: Engine, fabric: Fabric) -> None:
        self._engine = engine
        self._fabric = fabric
        self._servers: Dict[Address, TcpServer] = {}
        # statistics
        self.requests_sent = 0
        self.responses_delivered = 0
        self.timeouts = 0

    # -- server side -------------------------------------------------------

    def listen(self, address: Address, handler: Handler) -> TcpServer:
        """Bind a handler to an address; one listener per address."""
        if address in self._servers:
            raise ValueError(f"address {address} already has a listener")
        if not self._fabric.has_host(address.host):
            raise KeyError(f"cannot listen on unknown host {address.host!r}")
        server = TcpServer(address, handler)
        self._servers[address] = server
        return server

    def close(self, address: Address) -> None:
        """Stop listening on an address (idempotent)."""
        self._servers.pop(address, None)

    def is_listening(self, address: Address) -> bool:
        """True if something is bound to the address."""
        return address in self._servers

    # -- client side -------------------------------------------------------

    def request(
        self,
        client: str,
        address: Address,
        payload: object,
        on_response: OnResponse,
        timeout: float = 10.0,
        on_timeout: Optional[OnTimeout] = None,
        request_size: int = 64,
    ) -> None:
        """Open a connection, send ``payload``, await the response.

        Exactly one of ``on_response`` / ``on_timeout`` fires.  The
        reachability check happens twice -- at connect time and when the
        response would be delivered -- so a partition or crash occurring
        *during* the exchange also manifests as a timeout.
        """
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.requests_sent += 1
        start = self._engine.now

        timed_out = {"flag": False}

        def fire_timeout() -> None:
            timed_out["flag"] = True
            self.timeouts += 1
            if on_timeout is not None:
                on_timeout(TcpTimeout(address, timeout, client))

        timeout_event: Event = self._engine.call_later(timeout, fire_timeout)

        server = self._servers.get(address)
        if server is None or not self._fabric.reachable(client, address.host):
            # Nothing will ever answer; the timeout stands.
            return

        link = self._fabric.link(client, address.host)
        # connect handshake (1 RTT) + request transfer
        arrive_delay = 2.0 * link.latency + link.transfer_time(request_size)

        def at_server() -> None:
            if timed_out["flag"]:
                return
            # Server host may have died while the request was in flight.
            if self._servers.get(address) is not server:
                return
            if not self._fabric.reachable(client, address.host):
                return
            server.requests_served += 1
            response = server.handler(client, payload)
            if not isinstance(response, Response):
                response = Response(response)
            back_delay = response.service_seconds + link.transfer_time(
                response.size_bytes
            )
            self._engine.call_later(back_delay, deliver, response)

        def deliver(response: Response) -> None:
            if timed_out["flag"]:
                return
            if not self._fabric.reachable(address.host, client):
                return
            timeout_event.cancel()
            self.responses_delivered += 1
            on_response(response.payload, self._engine.now - start)

        self._engine.call_later(arrive_delay, at_server)
