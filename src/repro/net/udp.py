"""Best-effort UDP multicast channel for the gmond local-area backbone.

Gmon agents "organize into a redundant, leaderless network where nodes
listen to their neighbors rather than polling them" over a UDP multicast
channel.  The channel here delivers each datagram to every joined member
(including the sender, matching multicast loopback) after the link
latency, independently dropping each delivery with the configured loss
rate.  Members on downed or partitioned hosts simply do not receive --
exactly the soft-state world gmond is designed for.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.net.fabric import Fabric
from repro.sim.engine import Engine

#: Receiver callback signature: (sender_host, payload, size_bytes)
Receiver = Callable[[str, object, int], None]


class MulticastChannel:
    """One multicast group (Ganglia's default is 239.2.11.71:8649)."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        group: str = "239.2.11.71:8649",
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self._engine = engine
        self._fabric = fabric
        self.group = group
        self.loss_rate = loss_rate
        self._rng = rng or random.Random(0)
        self._members: Dict[str, Receiver] = {}
        # -- statistics used by the gmond traffic benchmark ----------------
        self.datagrams_sent = 0
        self.bytes_sent = 0
        self.datagrams_delivered = 0
        self.datagrams_dropped = 0

    @property
    def fabric(self) -> Fabric:
        """The topology this channel runs over (receivers resolve peer IPs)."""
        return self._fabric

    # -- membership --------------------------------------------------------

    def join(self, host: str, receiver: Receiver) -> None:
        """Subscribe ``host``; one receiver per host."""
        if host in self._members:
            raise ValueError(f"host {host!r} already joined {self.group}")
        self._fabric.host(host)  # validate existence
        self._members[host] = receiver

    def leave(self, host: str) -> None:
        """Unsubscribe a host (idempotent)."""
        self._members.pop(host, None)

    def members(self) -> list[str]:
        """Currently joined host names, sorted."""
        return sorted(self._members)

    # -- transmission --------------------------------------------------------

    def send(self, src: str, payload: object, size_bytes: int) -> int:
        """Multicast ``payload`` from ``src``; returns deliveries scheduled.

        A sender whose host is down sends nothing.  Each member delivery
        is independent: separate loss draw, separate latency, and a
        reachability check *at send time* (a partition healed later does
        not retroactively deliver old datagrams).
        """
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if not self._fabric.host(src).up:
            return 0
        self.datagrams_sent += 1
        self.bytes_sent += size_bytes
        scheduled = 0
        for member, receiver in self._members.items():
            if not self._fabric.reachable(src, member):
                self.datagrams_dropped += 1
                continue
            if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
                self.datagrams_dropped += 1
                continue
            delay = self._fabric.link(src, member).transfer_time(size_bytes)
            self._engine.call_later(
                delay, self._deliver, member, receiver, src, payload, size_bytes
            )
            scheduled += 1
        return scheduled

    def _deliver(
        self,
        member: str,
        receiver: Receiver,
        src: str,
        payload: object,
        size_bytes: int,
    ) -> None:
        # The member may have died or left while the datagram was in flight.
        if member not in self._members:
            self.datagrams_dropped += 1
            return
        if not self._fabric.host(member).up:
            self.datagrams_dropped += 1
            return
        self.datagrams_delivered += 1
        receiver(src, payload, size_bytes)
