"""Simulated network substrate: UDP multicast, TCP, topology and faults.

Ganglia's two transports are both modelled:

- :class:`~repro.net.udp.MulticastChannel` -- the local-area UDP multicast
  backbone gmond agents use to exchange metrics (best-effort, lossy).
- :class:`~repro.net.tcp.TcpNetwork` -- reliable request/response streams
  carrying Ganglia XML between gmond, gmetad and viewers, with connect
  latency, transfer time and timeouts (the failure detector of §2.1).

The :class:`~repro.net.fabric.Fabric` holds hosts, link characteristics,
host up/down state and partitions; the fault injector manipulates it.
"""

from repro.net.address import Address
from repro.net.fabric import Fabric, Host, LinkSpec
from repro.net.tcp import Response, TcpNetwork, TcpServer, TcpTimeout
from repro.net.udp import MulticastChannel

__all__ = [
    "Address",
    "Fabric",
    "Host",
    "LinkSpec",
    "MulticastChannel",
    "TcpNetwork",
    "TcpServer",
    "TcpTimeout",
    "Response",
]
