"""Topology: hosts, links, up/down state and partitions.

The fabric answers one question for the transports: *can A talk to B
right now, and with what latency/bandwidth?*  Host failures (stop and
intermittent, §1 of the paper) and wide-area partitions are expressed by
mutating fabric state; the transports consult it on every send.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set


@dataclass
class LinkSpec:
    """Latency/bandwidth characteristics of a (class of) link.

    ``latency`` is the one-way propagation delay in seconds; ``bandwidth``
    is in bytes/second.  The defaults model the paper's dedicated Gigabit
    Ethernet; wide-area trust edges typically get a higher-latency spec.
    """

    latency: float = 0.0002  # 0.2 ms one-way on a LAN
    bandwidth: float = 125e6  # 1 Gbit/s in bytes/s

    def transfer_time(self, size_bytes: int) -> float:
        """One-way time to move ``size_bytes``, propagation included."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        return self.latency + size_bytes / self.bandwidth


#: A wide-area link: 20 ms one-way, 100 Mbit/s.
WAN_LINK = LinkSpec(latency=0.020, bandwidth=12.5e6)
#: A LAN link: 0.2 ms one-way, 1 Gbit/s.
LAN_LINK = LinkSpec()


class Host:
    """One simulated machine.  ``up`` is toggled by the fault injector.

    ``ip`` stands in for what a receiving socket would report as the
    datagram's source address (gmond learns peer IPs that way).
    """

    def __init__(
        self, name: str, cluster: Optional[str] = None, ip: str = ""
    ) -> None:
        if not name:
            raise ValueError("host name must be non-empty")
        self.name = name
        self.cluster = cluster
        self.ip = ip
        self.up = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        return f"Host({self.name!r}, {state})"


class Fabric:
    """Registry of hosts plus reachability and link lookup."""

    def __init__(self, default_link: Optional[LinkSpec] = None) -> None:
        self._hosts: Dict[str, Host] = {}
        self._default_link = default_link or LAN_LINK
        # explicit per-pair links, keyed by frozenset({a, b})
        self._links: Dict[FrozenSet[str], LinkSpec] = {}
        # severed pairs (partitions), same keying
        self._cut: Set[FrozenSet[str]] = set()

    # -- hosts -----------------------------------------------------------

    def add_host(
        self, name: str, cluster: Optional[str] = None, ip: str = ""
    ) -> Host:
        """Register a new simulated host (names must be unique)."""
        if name in self._hosts:
            raise ValueError(f"duplicate host {name!r}")
        host = Host(name, cluster, ip)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """Look up a host by name; KeyError if unknown."""
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    def has_host(self, name: str) -> bool:
        """True if a host of that name is registered."""
        return name in self._hosts

    def hosts(self) -> Iterable[Host]:
        """All registered hosts."""
        return self._hosts.values()

    def set_host_up(self, name: str, up: bool) -> None:
        """Toggle a host's up/down state (the fault injector's hook)."""
        self.host(name).up = up

    # -- links -----------------------------------------------------------

    def set_link(self, a: str, b: str, spec: LinkSpec) -> None:
        """Override the link spec between hosts ``a`` and ``b``."""
        self._links[frozenset((a, b))] = spec

    def link(self, a: str, b: str) -> LinkSpec:
        """The link spec between two hosts (loopback is near-instant)."""
        if a == b:
            # loopback: negligible latency, effectively infinite bandwidth
            return LinkSpec(latency=1e-6, bandwidth=1e12)
        return self._links.get(frozenset((a, b)), self._default_link)

    # -- partitions --------------------------------------------------------

    def cut(self, a: str, b: str) -> None:
        """Sever communication between ``a`` and ``b`` (both directions)."""
        self._cut.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Restore communication between a cut pair."""
        self._cut.discard(frozenset((a, b)))

    def partition(self, side_a: Iterable[str], side_b: Iterable[str]) -> None:
        """Sever every link between the two host groups."""
        for a in side_a:
            for b in side_b:
                self.cut(a, b)

    def heal_partition(self, side_a: Iterable[str], side_b: Iterable[str]) -> None:
        """Restore every link between two host groups."""
        for a in side_a:
            for b in side_b:
                self.heal(a, b)

    def heal_all(self) -> None:
        """Remove every partition cut."""
        self._cut.clear()

    # -- reachability ------------------------------------------------------

    def reachable(self, src: str, dst: str) -> bool:
        """True if a message from ``src`` can reach ``dst`` right now.

        Requires both endpoints up and the pair not partitioned.  Unknown
        hosts are unreachable rather than an error: a monitor may probe a
        host that was never registered (e.g. a stale configuration entry).
        """
        sh = self._hosts.get(src)
        dh = self._hosts.get(dst)
        if sh is None or dh is None:
            return False
        if not sh.up or not dh.up:
            return False
        if frozenset((src, dst)) in self._cut:
            return False
        return True
