"""Topology: hosts, links, up/down state and partitions.

The fabric answers one question for the transports: *can A talk to B
right now, and with what latency/bandwidth?*  Host failures (stop and
intermittent, §1 of the paper) and wide-area partitions are expressed by
mutating fabric state; the transports consult it on every send.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, Optional


@dataclass
class LinkSpec:
    """Latency/bandwidth characteristics of a (class of) link.

    ``latency`` is the one-way propagation delay in seconds; ``bandwidth``
    is in bytes/second.  The defaults model the paper's dedicated Gigabit
    Ethernet; wide-area trust edges typically get a higher-latency spec.
    """

    latency: float = 0.0002  # 0.2 ms one-way on a LAN
    bandwidth: float = 125e6  # 1 Gbit/s in bytes/s

    def transfer_time(self, size_bytes: int) -> float:
        """One-way time to move ``size_bytes``, propagation included."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        return self.latency + size_bytes / self.bandwidth


#: A wide-area link: 20 ms one-way, 100 Mbit/s.
WAN_LINK = LinkSpec(latency=0.020, bandwidth=12.5e6)
#: A LAN link: 0.2 ms one-way, 1 Gbit/s.
LAN_LINK = LinkSpec()


@dataclass(frozen=True)
class GrayConditions:
    """Byzantine (gray) conditions on one link pair.

    Unlike a cut, a gray link still delivers -- it just delivers badly.
    All probabilities apply per response; draws come from the transport's
    own seeded stream so chaos runs replay deterministically.

    - ``corrupt_probability`` / ``truncate_probability``: chance the
      response payload is mangled in flight (overwritten span vs cut
      short).  Corruption wins the coin flip first.
    - ``spike_probability`` / ``spike_seconds``: chance a response is
      held an extra ``spike_seconds`` (bufferbloat, route flap, GC
      pause on a middlebox).
    - ``bandwidth_factor``: multiplier on effective bandwidth in (0, 1];
      1.0 means the link runs at its specified rate.
    """

    corrupt_probability: float = 0.0
    truncate_probability: float = 0.0
    spike_probability: float = 0.0
    spike_seconds: float = 0.0
    bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "corrupt_probability",
            "truncate_probability",
            "spike_probability",
        ):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1]")
        if self.spike_seconds < 0.0:
            raise ValueError("spike_seconds must be non-negative")
        if not (0.0 < self.bandwidth_factor <= 1.0):
            raise ValueError("bandwidth_factor must be in (0, 1]")

    @property
    def is_clear(self) -> bool:
        """True when every field is back at its benign default."""
        return (
            self.corrupt_probability == 0.0
            and self.truncate_probability == 0.0
            and self.spike_probability == 0.0
            and self.bandwidth_factor == 1.0
        )


class Host:
    """One simulated machine.  ``up`` is toggled by the fault injector.

    ``ip`` stands in for what a receiving socket would report as the
    datagram's source address (gmond learns peer IPs that way).
    """

    def __init__(
        self, name: str, cluster: Optional[str] = None, ip: str = ""
    ) -> None:
        if not name:
            raise ValueError("host name must be non-empty")
        self.name = name
        self.cluster = cluster
        self.ip = ip
        self.up = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        return f"Host({self.name!r}, {state})"


class Fabric:
    """Registry of hosts plus reachability and link lookup."""

    def __init__(self, default_link: Optional[LinkSpec] = None) -> None:
        self._hosts: Dict[str, Host] = {}
        self._default_link = default_link or LAN_LINK
        # explicit per-pair links, keyed by frozenset({a, b})
        self._links: Dict[FrozenSet[str], LinkSpec] = {}
        # severed pairs (partitions), same keying; refcounted so
        # overlapping partitions heal correctly (a pair cut by two
        # partitions stays cut until both heal)
        self._cut: Dict[FrozenSet[str], int] = {}
        # gray (byzantine) conditions per pair, same keying
        self._gray: Dict[FrozenSet[str], GrayConditions] = {}

    # -- hosts -----------------------------------------------------------

    def add_host(
        self, name: str, cluster: Optional[str] = None, ip: str = ""
    ) -> Host:
        """Register a new simulated host (names must be unique)."""
        if name in self._hosts:
            raise ValueError(f"duplicate host {name!r}")
        host = Host(name, cluster, ip)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """Look up a host by name; KeyError if unknown."""
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    def has_host(self, name: str) -> bool:
        """True if a host of that name is registered."""
        return name in self._hosts

    def hosts(self) -> Iterable[Host]:
        """All registered hosts."""
        return self._hosts.values()

    def set_host_up(self, name: str, up: bool) -> None:
        """Toggle a host's up/down state (the fault injector's hook)."""
        self.host(name).up = up

    # -- links -----------------------------------------------------------

    def set_link(self, a: str, b: str, spec: LinkSpec) -> None:
        """Override the link spec between hosts ``a`` and ``b``."""
        self._links[frozenset((a, b))] = spec

    def link(self, a: str, b: str) -> LinkSpec:
        """The link spec between two hosts (loopback is near-instant)."""
        if a == b:
            # loopback: negligible latency, effectively infinite bandwidth
            return LinkSpec(latency=1e-6, bandwidth=1e12)
        return self._links.get(frozenset((a, b)), self._default_link)

    # -- partitions --------------------------------------------------------

    def cut(self, a: str, b: str) -> None:
        """Sever communication between ``a`` and ``b`` (both directions).

        Cuts stack: each :meth:`cut` needs a matching :meth:`heal` before
        the pair is reachable again, so two overlapping partitions that
        both sever a pair don't un-sever it when only one heals.
        """
        key = frozenset((a, b))
        self._cut[key] = self._cut.get(key, 0) + 1

    def heal(self, a: str, b: str) -> None:
        """Undo one :meth:`cut` on the pair (no-op when not cut)."""
        key = frozenset((a, b))
        count = self._cut.get(key, 0)
        if count <= 1:
            self._cut.pop(key, None)
        else:
            self._cut[key] = count - 1

    def partition(self, side_a: Iterable[str], side_b: Iterable[str]) -> None:
        """Sever every link between the two host groups."""
        for a in side_a:
            for b in side_b:
                self.cut(a, b)

    def heal_partition(self, side_a: Iterable[str], side_b: Iterable[str]) -> None:
        """Restore every link between two host groups."""
        for a in side_a:
            for b in side_b:
                self.heal(a, b)

    def heal_all(self) -> None:
        """Remove every partition cut."""
        self._cut.clear()

    # -- gray (byzantine) conditions ---------------------------------------

    def set_gray(self, a: str, b: str, **fields) -> GrayConditions:
        """Merge gray-condition fields onto the pair and return the result.

        Only the named fields change; the rest keep their current value
        (or the benign default if the pair had no conditions yet).  When
        the merge lands every field back at its default the entry is
        dropped entirely, so transports pay nothing on healthy links.
        """
        key = frozenset((a, b))
        current = self._gray.get(key, GrayConditions())
        merged = replace(current, **fields)
        if merged.is_clear:
            self._gray.pop(key, None)
        else:
            self._gray[key] = merged
        return merged

    def gray(self, a: str, b: str) -> Optional[GrayConditions]:
        """The gray conditions on a pair, or None when the link is clean."""
        if a == b:
            return None  # loopback never degrades
        return self._gray.get(frozenset((a, b)))

    def clear_gray(self, a: str, b: str) -> None:
        """Drop every gray condition on the pair."""
        self._gray.pop(frozenset((a, b)), None)

    def clear_all_gray(self) -> None:
        """Drop gray conditions on every pair."""
        self._gray.clear()

    # -- reachability ------------------------------------------------------

    def reachable(self, src: str, dst: str) -> bool:
        """True if a message from ``src`` can reach ``dst`` right now.

        Requires both endpoints up and the pair not partitioned.  Unknown
        hosts are unreachable rather than an error: a monitor may probe a
        host that was never registered (e.g. a stale configuration entry).
        """
        sh = self._hosts.get(src)
        dh = self._hosts.get(dst)
        if sh is None or dh is None:
            return False
        if not sh.up or not dh.up:
            return False
        if frozenset((src, dst)) in self._cut:
            return False
        return True
