"""Clustering-driven shard placement for the storage tier.

Two layers, deliberately separate:

- **Series groups -> shards** (:func:`assign_groups`): every archived
  series belongs to a *group* -- one ``(source, cluster, host)`` -- and
  groups are packed into K shards by a seeded k-means over their feature
  vectors (update rate, query heat, source/cluster affinity) followed by
  a weight-balanced slicing of the cluster ordering.  Affinity
  coordinates are derived from the ``(source, cluster)`` names, so hosts
  of one cluster land adjacent and usually share shards -- the
  clustering-aware co-location of SNIPPETS.md snippet 1.
- **Shards -> storage nodes** (:class:`ShardMap`): each shard owns an
  ordered replica list (primary first).  Rebalancing after a node join
  or leave is *bounded*: a single membership change moves at most
  ``ceil(slots/N)`` shards (``ceil(K/N)`` at R=1), never a full
  reshuffle -- the property the Hypothesis suite pins.

Everything here is pure data manipulation: deterministic given
(features, seed), no simulation clock, no randomness beyond
seed-derived streams.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.sim.rng import derive_seed

#: A series group: every key of one (source, cluster, host) moves as a unit.
GroupKey = Tuple[str, str, str]

#: Weight of the affinity coordinates relative to the (normalized) rate
#: and heat axes.  Affinity dominates so same-cluster groups cluster
#: together unless their load profiles diverge hard.
_AFFINITY_WEIGHT = 2.0


@dataclass(frozen=True)
class GroupFeatures:
    """Placement features for one series group."""

    update_rate: float = 0.0  # archive updates per observation window
    query_heat: float = 0.0   # fetches served from the group's series

    def weight(self) -> float:
        """Packing weight: how much storage work the group represents."""
        return 1.0 + self.update_rate + self.query_heat


def _affinity_point(group: GroupKey, seed: int) -> Tuple[float, float]:
    """Stable 2-D coordinate shared by all hosts of one (source, cluster)."""
    source, cluster, _host = group
    span = float(2**63)
    x = derive_seed(seed, f"aff-x:{source}") / span
    y = derive_seed(seed, f"aff-y:{source}/{cluster}") / span
    return x, y


def _feature_vectors(
    groups: Sequence[GroupKey],
    features: Dict[GroupKey, GroupFeatures],
    seed: int,
) -> List[Tuple[float, ...]]:
    max_rate = max(
        (features[g].update_rate for g in groups), default=0.0
    ) or 1.0
    max_heat = max(
        (features[g].query_heat for g in groups), default=0.0
    ) or 1.0
    vectors = []
    for g in groups:
        f = features[g]
        ax, ay = _affinity_point(g, seed)
        vectors.append(
            (
                f.update_rate / max_rate,
                f.query_heat / max_heat,
                ax * _AFFINITY_WEIGHT,
                ay * _AFFINITY_WEIGHT,
            )
        )
    return vectors


def _sq_dist(a: Sequence[float], b: Sequence[float]) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))


def _kmeans_labels(
    vectors: List[Tuple[float, ...]], k: int, seed: int, iterations: int
) -> List[int]:
    """Seeded Lloyd iterations; ties and init are deterministic."""
    n = len(vectors)
    k = min(k, n)
    rng = random.Random(derive_seed(seed, "kmeans-init"))
    order = list(range(n))
    rng.shuffle(order)
    centroids = [list(vectors[i]) for i in order[:k]]
    labels = [0] * n
    for _ in range(iterations):
        moved = False
        for i, v in enumerate(vectors):
            best, best_d = 0, math.inf
            for c, centroid in enumerate(centroids):
                d = _sq_dist(v, centroid)
                if d < best_d - 1e-15:
                    best, best_d = c, d
            if labels[i] != best:
                labels[i] = best
                moved = True
        sums = [[0.0] * len(vectors[0]) for _ in range(k)]
        counts = [0] * k
        for i, v in enumerate(vectors):
            c = labels[i]
            counts[c] += 1
            for j, x in enumerate(v):
                sums[c][j] += x
        for c in range(k):
            if counts[c]:  # empty clusters keep their old centroid
                centroids[c] = [s / counts[c] for s in sums[c]]
        if not moved:
            break
    return labels


def assign_groups(
    features: Dict[GroupKey, GroupFeatures],
    shards: int,
    seed: int,
    iterations: int = 8,
) -> Dict[GroupKey, int]:
    """Deterministically place every group into one of ``shards`` shards.

    k-means clusters the feature vectors (so similar groups are adjacent
    in the packing order), then the cluster-sorted group sequence is
    sliced into shards at equal *weight* boundaries.  Balanced shard
    weights are what make the per-node flush critical path scale with
    node count; the adjacency is what keeps a cluster's hosts
    co-located.
    """
    groups = sorted(features)
    if not groups:
        return {}
    vectors = _feature_vectors(groups, features, seed)
    labels = _kmeans_labels(vectors, shards, seed, iterations)
    ordered = sorted(range(len(groups)), key=lambda i: (labels[i], groups[i]))
    total = sum(features[g].weight() for g in groups)
    assignment: Dict[GroupKey, int] = {}
    cum = 0.0
    shard = 0
    for i in ordered:
        g = groups[i]
        # advance to the shard whose weight band contains the cumulative
        # midpoint of this group -- never past the last shard
        mid = cum + features[g].weight() / 2.0
        while shard < shards - 1 and mid >= (shard + 1) * total / shards:
            shard += 1
        assignment[g] = shard
        cum += features[g].weight()
    return assignment


class ShardMap:
    """Shard -> ordered replica (storage node) lists, rebalanced minimally.

    The invariant the bounded-movement guarantee rests on: replica slots
    stay balanced across live nodes (max load - min load <= 1).  Under
    that invariant a dead node holds at most ``ceil(slots/N)`` slots (so
    a leave changes at most that many shards) and a join pulls at most
    ``ceil(slots/(N+1))`` slots onto the new node -- both within the
    ``ceil(K/N)``-at-R=1 budget.
    """

    def __init__(
        self,
        shards: int,
        node_names: Sequence[str],
        replication: int = 1,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        if not node_names:
            raise ValueError("need at least one node")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.shards = shards
        self.node_names: List[str] = sorted(node_names)
        n = len(self.node_names)
        self.targets: List[int] = [min(replication, n)] * shards
        # round-robin start: primary s % N, backups on the next nodes --
        # balanced per replica rank, so per-node load starts balanced
        self.replicas: List[List[str]] = [
            [self.node_names[(s + r) % n] for r in range(self.targets[s])]
            for s in range(shards)
        ]

    # -- queries -----------------------------------------------------------

    def target(self, shard: int) -> int:
        return self.targets[shard]

    def set_target(self, shard: int, replication: int) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.targets[shard] = replication

    def loads(self, live: Sequence[str]) -> Dict[str, int]:
        """Replica slots currently assigned per live node."""
        load = {name: 0 for name in live}
        for nodes in self.replicas:
            for name in nodes:
                if name in load:
                    load[name] += 1
        return load

    def shards_on(self, node: str) -> List[int]:
        return [s for s, nodes in enumerate(self.replicas) if node in nodes]

    # -- mutation ----------------------------------------------------------

    def replace_replica(self, shard: int, old: str, new: str) -> None:
        """Swap one replica in place (repair picked a replacement node)."""
        nodes = self.replicas[shard]
        nodes[nodes.index(old)] = new

    def add_replica(self, shard: int, node: str) -> None:
        if node in self.replicas[shard]:
            raise ValueError(f"{node} already replicates shard {shard}")
        self.replicas[shard].append(node)

    def rebalance(self, live: Sequence[str]) -> int:
        """Adapt to the live set; returns how many shards changed.

        Three deterministic passes: evict dead replicas, refill each
        shard to its target from the least-loaded live nodes, then drain
        the load spread to <= 1 by moving single replicas from the most-
        to the least-loaded node (this is the only pass a pure join
        exercises, and it only ever moves slots *onto* underloaded
        nodes).
        """
        live_set = set(live)
        for name in sorted(live_set):
            if name not in self.node_names:
                self.node_names.append(name)
        self.node_names.sort()
        changed = set()

        for s, nodes in enumerate(self.replicas):
            kept = [n for n in nodes if n in live_set]
            if len(kept) != len(nodes):
                changed.add(s)
            self.replicas[s] = kept

        if not live_set:
            return len(changed)
        load = self.loads(sorted(live_set))
        for s in range(self.shards):
            nodes = self.replicas[s]
            want = min(self.targets[s], len(live_set))
            while len(nodes) < want:
                candidates = [n for n in load if n not in nodes]
                if not candidates:
                    break
                pick = min(candidates, key=lambda n: (load[n], n))
                nodes.append(pick)
                load[pick] += 1
                changed.add(s)

        for _ in range(sum(self.targets)):
            lo = min(load, key=lambda n: (load[n], n))
            hi = max(load, key=lambda n: (load[n], n))
            if load[hi] - load[lo] <= 1:
                break
            moved = False
            for s in sorted(self.shards_on(hi)):
                if lo not in self.replicas[s]:
                    self.replace_replica(s, hi, lo)
                    load[hi] -= 1
                    load[lo] += 1
                    changed.add(s)
                    moved = True
                    break
            if not moved:
                break
        return len(changed)
