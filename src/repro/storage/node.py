"""One simulated storage node: a private RRD store plus work accounting.

Nodes do not sit on the network fabric -- the paper's gmetad writes its
RRDs through the local filesystem, and this tier models a local fleet of
writer processes/disks behind one daemon.  What matters for the
experiments is (a) whether a node is up, (b) which series it physically
holds, and (c) how much *work* it absorbed, because the parallel-flush
throughput of the tier is governed by the busiest node (the critical
path), not the sum.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.rrd.database import RraSpec
from repro.rrd.store import RrdStore


class StorageNode:
    """A storage node: name, liveness, private store, work counters."""

    def __init__(
        self,
        name: str,
        mode: str = "full",
        step: float = 15.0,
        rra_specs: Optional[Sequence[RraSpec]] = None,
        downtime_fill: str = "zero",
    ) -> None:
        self.name = name
        self.up = True
        self.store = RrdStore(
            mode=mode,
            step=step,
            rra_specs=list(rra_specs) if rra_specs is not None else None,
            downtime_fill=downtime_fill,
        )
        #: simulated seconds of storage work absorbed (updates + repairs)
        self.busy_seconds = 0.0
        #: physical RRD updates applied on this node
        self.updates_applied = 0
        #: write batches (column scatters / scalar flushes) landed here
        self.flushes = 0
        #: times this node was killed / restarted
        self.kills = 0
        self.restarts = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "DOWN"
        return (
            f"<StorageNode {self.name} {state} "
            f"updates={self.updates_applied} busy={self.busy_seconds:.3f}s>"
        )


def make_node_names(count: int) -> List[str]:
    """The fleet's node names: ``st00`` .. ``stNN`` (sorted == id order)."""
    return [f"st{i:02d}" for i in range(count)]
