"""Replicated, sharded storage tier behind the gmetad archiver.

Gated by ``GmetadConfig.storage_tier`` (a :class:`StorageTierConfig`);
``None`` -- the default -- keeps the single-store archiver path
byte-identical to baseline.  See DESIGN.md §12.
"""

from repro.storage.config import StorageTierConfig
from repro.storage.node import StorageNode, make_node_names
from repro.storage.placement import (
    GroupFeatures,
    ShardMap,
    assign_groups,
)
from repro.storage.tier import StorageTier, StorageUnavailable, TierColumnPlan

__all__ = [
    "StorageTierConfig",
    "StorageNode",
    "make_node_names",
    "GroupFeatures",
    "ShardMap",
    "assign_groups",
    "StorageTier",
    "StorageUnavailable",
    "TierColumnPlan",
]
