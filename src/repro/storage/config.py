"""Configuration for the replicated, sharded storage tier.

Kept dependency-free (plain dataclass, no repro imports) because
:mod:`repro.core.tree` imports it into :class:`GmetadConfig` -- the
config gate must not drag the storage fleet into the core import graph.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StorageTierConfig:
    """Knobs for one gmetad's simulated storage-node fleet.

    Attaching this to ``GmetadConfig.storage_tier`` replaces the
    daemon's single :class:`~repro.rrd.store.RrdStore` with a
    :class:`~repro.storage.tier.StorageTier`: series are partitioned
    into ``shards`` placed across ``nodes`` simulated storage nodes by
    feature clustering, hot shards replicate ``hot_replication``-way,
    and fetches fail over to surviving replicas when a node dies.
    ``None`` (the default) keeps the single-store archiver path
    byte-identical to baseline.
    """

    #: number of simulated storage nodes behind the archiver
    nodes: int = 4
    #: number of series shards (placement unit; K in the placement math)
    shards: int = 16
    #: base replica count for every shard
    replication: int = 1
    #: replica count for *hot* shards (0 means "same as replication")
    hot_replication: int = 0
    #: fraction of shards (by query heat) promoted to hot replication
    hot_fraction: float = 0.25
    #: root seed for the deterministic placement machinery
    placement_seed: int = 20031201
    #: how often the clustering-driven placement refinement runs
    #: (seconds of simulated time; 0 disables periodic rebalancing)
    rebalance_interval: float = 120.0
    #: cap on series *groups* moved between shards per rebalance pass
    #: (the "bounded movement" of the clustering refinement)
    max_group_moves: int = 8
    #: k-means iteration budget for the feature clustering
    kmeans_iterations: int = 8
    #: anti-entropy sweep cadence (seconds; 0 disables self-repair)
    repair_interval: float = 15.0
    #: target: every under-replicated shard is restored to its replica
    #: count within this many seconds of the incident (reported against
    #: measured time-to-repair; the sweep cadence must make it feasible)
    repair_deadline: float = 60.0
    #: simulated seconds of storage-node work per physical RRD update
    #: (defaults to the CostModel's rrd_update when left at 0)
    rrd_update_cost: float = 0.0
    #: simulated seconds of storage-node work to re-replicate one series
    repair_cost_per_series: float = 2.0e-5

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("storage tier needs at least one node")
        if self.shards < 1:
            raise ValueError("storage tier needs at least one shard")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.hot_replication < 0:
            raise ValueError("hot_replication must be >= 0 (0 = base)")
        if not (0.0 <= self.hot_fraction <= 1.0):
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.rebalance_interval < 0:
            raise ValueError("rebalance_interval must be >= 0")
        if self.max_group_moves < 0:
            raise ValueError("max_group_moves must be >= 0")
        if self.kmeans_iterations < 1:
            raise ValueError("kmeans_iterations must be >= 1")
        if self.repair_interval < 0:
            raise ValueError("repair_interval must be >= 0")
        if self.repair_deadline <= 0:
            raise ValueError("repair_deadline must be positive")
        if self.rrd_update_cost < 0:
            raise ValueError("rrd_update_cost must be >= 0")
        if self.repair_cost_per_series < 0:
            raise ValueError("repair_cost_per_series must be >= 0")

    @property
    def effective_hot_replication(self) -> int:
        """Replica count hot shards actually get (never below base)."""
        return max(self.replication, self.hot_replication or self.replication)
