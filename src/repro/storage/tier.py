"""The replicated, sharded storage tier behind one gmetad's archiver.

A :class:`StorageTier` stands in for the archiver's single
:class:`~repro.rrd.store.RrdStore`: it exposes the same surface
(``update`` / ``column_plan`` / ``update_columns`` / ``update_summary``
/ ``database`` / ``fetch_series`` / ``keys`` ...) but routes every
series to a shard and every shard to an ordered replica list of
simulated :class:`~repro.storage.node.StorageNode` fleets.

Design points:

- **Logical vs physical accounting.**  ``update_count`` / ``on_update``
  / CPU charges count *logical* updates exactly as the single store
  would -- the archiver's charged work is identical with the tier on or
  off (the equivalence suite pins this).  The R-way physical fan-out is
  tracked per node in ``busy_seconds``: parallel-flush throughput is
  logical updates over the *busiest* node's seconds (the critical
  path), which is what actually scales with fleet width.
- **Freshness is a per-shard version.**  Every write batch that reaches
  at least one live replica bumps the shard version; a replica's
  ``applied`` version advances only contiguously, so a node that missed
  writes (down, or newly restarted) reads as *stale* until the
  anti-entropy pass copies a fresh replica's series over.  A batch no
  live replica absorbed is counted in ``updates_lost``.
- **Failover on read.**  Fetches prefer the primary, fall over to the
  first fresh live replica (counted in ``failover_fetches``), degrade
  to a stale live replica (``stale_fetches``) and only raise
  :class:`StorageUnavailable` when every replica of the shard is dead.
- **Anti-entropy repair.**  A periodic sweep finds shards with fewer
  than R fresh live replicas, re-syncs stale-but-live members and
  recruits replacement nodes (least loaded first) for dead ones by
  cloning series state; time from node death to full R is recorded per
  incident in ``repair_times``.
- **Clustering-driven rebalance.**  A slower periodic pass re-runs the
  feature clustering (:func:`repro.storage.placement.assign_groups`)
  over observed update rates and query heat and migrates at most
  ``max_group_moves`` series groups per pass toward their ideal shard.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.rrd.database import RraSpec
from repro.rrd.store import MetricKey, SUMMARY_HOST
from repro.sim.engine import Engine, PeriodicTask
from repro.sim.rng import derive_seed
from repro.storage.config import StorageTierConfig
from repro.storage.node import StorageNode, make_node_names
from repro.storage.placement import (
    GroupFeatures,
    GroupKey,
    ShardMap,
    assign_groups,
)


class StorageUnavailable(RuntimeError):
    """Every replica of the shard holding the requested series is down."""

    def __init__(self, key: MetricKey, shard: int) -> None:
        super().__init__(f"no live replica for shard {shard} ({key})")
        self.key = key
        self.shard = shard


class TierColumnPlan:
    """A shard-aware column plan: one sub-scatter per (shard, node).

    Mirrors :class:`repro.rrd.store.ColumnPlan`'s contract (``keys``,
    ``__len__``, ``update``) so the archiver's plan cache works
    unchanged.  The shard grouping is rebuilt whenever the tier's
    placement epoch moves (a group migrated), and per-node sub-plans are
    bound lazily so replicas recruited by repair start receiving scatter
    writes on the next poll without invalidating the archiver's cache.
    """

    __slots__ = ("tier", "keys", "_epoch", "_chunks", "_node_plans")

    def __init__(self, tier: "StorageTier", keys: Sequence[MetricKey]) -> None:
        self.tier = tier
        self.keys = list(keys)
        self._epoch = -1
        self._chunks: List[Tuple[int, "object", List[MetricKey]]] = []
        self._node_plans: Dict[Tuple[int, str], object] = {}

    def __len__(self) -> int:
        return len(self.keys)

    def _rebuild(self) -> None:
        import numpy as np

        tier = self.tier
        by_shard: Dict[int, List[int]] = {}
        for j, key in enumerate(self.keys):
            s = tier._shard_of(key)
            by_shard.setdefault(s, []).append(j)
        self._chunks = [
            (
                s,
                np.asarray(positions, dtype=np.int64),
                [self.keys[j] for j in positions],
            )
            for s, positions in sorted(by_shard.items())
        ]
        self._node_plans.clear()
        self._epoch = tier.placement_epoch

    def update(self, t: float, values: "object") -> None:
        tier = self.tier
        n = len(self.keys)
        tier.update_count += n
        if tier.on_update is not None:
            tier.on_update(n)
        if self._epoch != tier.placement_epoch:
            self._rebuild()
        for s, sel, chunk_keys in self._chunks:
            tier._note_updates(chunk_keys[0], len(chunk_keys))
            sub_values = values[sel]
            tier._scatter_shard(s, chunk_keys, t, sub_values, self._node_plans)


class StorageTier:
    """RrdStore-compatible front over a fleet of storage nodes."""

    #: duck-type marker (obs and tests check this without importing us)
    is_storage_tier = True

    def __init__(
        self,
        engine: Engine,
        config: StorageTierConfig,
        mode: str = "full",
        step: float = 15.0,
        rra_specs: Optional[Sequence[RraSpec]] = None,
        downtime_fill: str = "zero",
        on_update: Optional[Callable[[int], None]] = None,
        update_cost: Optional[float] = None,
    ) -> None:
        if mode not in ("full", "account"):
            raise ValueError(f"mode must be 'full' or 'account', got {mode!r}")
        self.engine = engine
        self.config = config
        # -- RrdStore-compatible surface attributes
        self.mode = mode
        self.step = step
        self.rra_specs = list(rra_specs) if rra_specs is not None else None
        self.downtime_fill = downtime_fill
        self.on_update = on_update
        self.update_count = 0
        self.create_count = 0
        # -- the fleet
        self.nodes: Dict[str, StorageNode] = {
            name: StorageNode(
                name,
                mode=mode,
                step=step,
                rra_specs=self.rra_specs,
                downtime_fill=downtime_fill,
            )
            for name in make_node_names(config.nodes)
        }
        self.shard_map = ShardMap(
            config.shards, list(self.nodes), config.replication
        )
        #: physical per-update cost charged to a node's busy_seconds
        self._update_cost = (
            update_cost
            if update_cost is not None and update_cost > 0
            else config.rrd_update_cost
        ) or 2.5e-5
        # -- placement state
        self._key_shard: Dict[MetricKey, int] = {}
        self._group_shard: Dict[GroupKey, int] = {}
        self._group_keys: Dict[GroupKey, List[MetricKey]] = {}
        self._shard_keys: List[Set[MetricKey]] = [
            set() for _ in range(config.shards)
        ]
        #: bumped whenever a key changes shard; column plans watch it
        self.placement_epoch = 0
        # -- freshness state
        self._versions: List[int] = [0] * config.shards
        self._applied: List[Dict[str, int]] = [
            {} for _ in range(config.shards)
        ]
        # -- feature accumulators for the clustering pass
        self._group_updates: Dict[GroupKey, int] = {}
        self._group_heat: Dict[GroupKey, float] = {}
        # -- counters (mirrored into obs gauges when attached)
        self.failover_fetches = 0
        self.stale_fetches = 0
        self.fetch_failures = 0
        self.updates_lost = 0
        self.repairs_completed = 0
        self.groups_migrated = 0
        self.rebalance_passes = 0
        self.repair_times: List[float] = []
        self._incidents: Dict[int, float] = {}
        self._registry = None  # obs MetricsRegistry, attached lazily
        self._tasks: List[PeriodicTask] = []
        self._started = False

    # -- lifecycle (driven by GmetadBase.start/stop) -----------------------

    def start(self) -> "StorageTier":
        if self._started:
            return self
        self._started = True
        if self.config.repair_interval > 0:
            self._tasks.append(
                self.engine.every(self.config.repair_interval, self.repair_sweep)
            )
        if self.config.rebalance_interval > 0:
            self._tasks.append(
                self.engine.every(
                    self.config.rebalance_interval, self.rebalance_sweep
                )
            )
        return self

    def stop(self) -> None:
        for task in self._tasks:
            task.stop()
        self._tasks.clear()
        self._started = False

    def attach_registry(self, registry) -> None:
        """Publish per-shard flush timings into an obs registry."""
        self._registry = registry

    # -- fleet control (fault injector entry points) -----------------------

    def has_node(self, name: str) -> bool:
        return name in self.nodes

    def kill_node(self, name: str) -> None:
        """Take one storage node down (fail-stop)."""
        node = self.nodes[name]
        if not node.up:
            return
        node.up = False
        node.kills += 1
        now = self.engine.now
        for s in self.shard_map.shards_on(name):
            if s not in self._incidents and self._shard_deficit(s) > 0:
                self._incidents[s] = now

    def restart_node(self, name: str) -> None:
        """Bring a node back; it stays *stale* until anti-entropy syncs it."""
        node = self.nodes[name]
        if node.up:
            return
        node.up = True
        node.restarts += 1

    def nodes_up(self) -> int:
        return sum(1 for n in self.nodes.values() if n.up)

    # -- placement ---------------------------------------------------------

    @staticmethod
    def _group_of(key: MetricKey) -> GroupKey:
        return (key.source, key.cluster, key.host)

    def _shard_of(self, key: MetricKey) -> int:
        s = self._key_shard.get(key)
        if s is not None:
            return s
        group = self._group_of(key)
        gs = self._group_shard.get(group)
        if gs is None:
            # initial placement: stable hash of the group name; the
            # periodic clustering pass refines it from observed features
            gs = derive_seed(
                self.config.placement_seed, f"group:{'/'.join(group)}"
            ) % self.config.shards
            self._group_shard[group] = gs
            self._group_keys[group] = []
        self._key_shard[key] = gs
        self._group_keys[group].append(key)
        self._shard_keys[gs].add(key)
        if self.mode == "full":
            self.create_count += 1
        return gs

    def _note_updates(self, key: MetricKey, count: int) -> None:
        group = self._group_of(key)
        self._group_updates[group] = self._group_updates.get(group, 0) + count

    def note_query_heat(
        self, source: str, cluster: str, host: str, amount: float = 1.0
    ) -> None:
        """Feed external query heat (e.g. from the query engine) in."""
        group = (source, cluster, host)
        self._group_heat[group] = self._group_heat.get(group, 0.0) + amount

    # -- freshness ---------------------------------------------------------

    def _apply_version(self, shard: int, node_name: str, version: int) -> None:
        applied = self._applied[shard]
        if applied.get(node_name, 0) == version - 1:
            applied[node_name] = version

    def _fresh_live(self, shard: int) -> List[str]:
        ver = self._versions[shard]
        applied = self._applied[shard]
        return [
            n
            for n in self.shard_map.replicas[shard]
            if self.nodes[n].up and applied.get(n, 0) >= ver
        ]

    def _shard_deficit(self, shard: int) -> int:
        live_nodes = self.nodes_up()
        want = min(self.shard_map.target(shard), max(live_nodes, 1))
        return max(0, want - len(self._fresh_live(shard)))

    def under_replicated_shards(self) -> int:
        """Shards currently below their fresh-live replica target."""
        return sum(
            1 for s in range(self.config.shards) if self._shard_deficit(s) > 0
        )

    # -- writing (RrdStore surface) ----------------------------------------

    def update(self, key: MetricKey, t: float, value: Optional[float]) -> None:
        self.update_count += 1
        if self.on_update is not None:
            self.on_update(1)
        s = self._shard_of(key)
        self._note_updates(key, 1)
        ver = self._versions[s] + 1
        applied = False
        for name in self.shard_map.replicas[s]:
            node = self.nodes[name]
            if not node.up:
                continue
            node.store.update(key, t, value)
            node.busy_seconds += self._update_cost
            node.updates_applied += 1
            self._apply_version(s, name, ver)
            applied = True
        if applied:
            self._versions[s] = ver
        else:
            self.updates_lost += 1

    def update_summary(
        self, source: str, cluster: str, metric: str, t: float,
        total: float, num: int,
    ) -> None:
        base = MetricKey(source, cluster, SUMMARY_HOST, metric)
        self.update(base, t, total)
        self.update(
            MetricKey(source, cluster, SUMMARY_HOST, f"{metric}.num"),
            t,
            float(num),
        )

    def column_plan(self, keys: Sequence[MetricKey]) -> TierColumnPlan:
        return TierColumnPlan(self, keys)

    def update_columns(
        self, plan: TierColumnPlan, t: float, values: "object"
    ) -> None:
        plan.update(t, values)

    def _scatter_shard(
        self,
        shard: int,
        keys: List[MetricKey],
        t: float,
        values: "object",
        node_plans: Dict[Tuple[int, str], object],
    ) -> None:
        """Land one shard's slice of a column scatter on its replicas."""
        ver = self._versions[shard] + 1
        applied = False
        batch_seconds = len(keys) * self._update_cost
        for name in self.shard_map.replicas[shard]:
            node = self.nodes[name]
            if not node.up:
                continue
            plan = node_plans.get((shard, name))
            if plan is None:
                plan = node.store.column_plan(keys)
                node_plans[(shard, name)] = plan
            plan.update(t, values)
            node.busy_seconds += batch_seconds
            node.updates_applied += len(keys)
            node.flushes += 1
            self._apply_version(shard, name, ver)
            applied = True
        if applied:
            self._versions[shard] = ver
        else:
            self.updates_lost += 1
        if self._registry is not None:
            self._registry.histogram(
                f"storage_flush.s{shard:02d}", units="s"
            ).observe(batch_seconds)

    def ensure(self, key: MetricKey):
        if self.mode == "account":
            raise RuntimeError("accounting-mode store keeps no databases")
        s = self._shard_of(key)
        return self._read_node(key, s).store.ensure(key)

    # -- reading (RrdStore surface, with failover) -------------------------

    def _read_node(self, key: MetricKey, shard: int) -> StorageNode:
        replicas = self.shard_map.replicas[shard]
        live = [n for n in replicas if self.nodes[n].up]
        if not live:
            self.fetch_failures += 1
            raise StorageUnavailable(key, shard)
        fresh = self._fresh_live(shard)
        chosen = fresh[0] if fresh else live[0]
        if not fresh:
            self.stale_fetches += 1
        if replicas and chosen != replicas[0]:
            self.failover_fetches += 1
        return self.nodes[chosen]

    def database(self, key: MetricKey):
        if self.mode == "account":
            raise RuntimeError("accounting-mode store keeps no databases")
        s = self._key_shard.get(key)
        if s is None:
            return None
        group = self._group_of(key)
        self._group_heat[group] = self._group_heat.get(group, 0.0) + 1.0
        return self._read_node(key, s).store.database(key)

    def fetch_series(
        self, key: MetricKey, start: float, end: float
    ):
        series = self.database(key)
        if series is None:
            raise KeyError(f"no archive for {key}")
        return series.fetch(start, end)

    def keys(self) -> List[MetricKey]:
        if self.mode == "account":
            return []  # parity: an accounting store records no keys
        return sorted(self._key_shard)

    def keys_for_host(
        self, source: str, cluster: str, host: str
    ) -> List[MetricKey]:
        if self.mode == "account":
            return []
        return sorted(
            k
            for k in self._key_shard
            if k.source == source and k.cluster == cluster and k.host == host
        )

    def __len__(self) -> int:
        return 0 if self.mode == "account" else len(self._key_shard)

    # -- anti-entropy repair ----------------------------------------------

    def _sync_node(self, shard: int, src: StorageNode, dst: StorageNode) -> None:
        """Copy every series of ``shard`` from a fresh replica to ``dst``."""
        keys = self._shard_keys[shard]
        if self.mode == "full":
            for key in sorted(keys):
                dst.store.clone_series_from(key, src.store)
        dst.busy_seconds += len(keys) * self.config.repair_cost_per_series
        self._applied[shard][dst.name] = self._versions[shard]
        self.repairs_completed += 1

    def repair_sweep(self) -> int:
        """One anti-entropy pass; returns how many shard syncs ran."""
        now = self.engine.now
        live_count = self.nodes_up()
        synced = 0
        for s in range(self.config.shards):
            deficit = self._shard_deficit(s)
            if deficit == 0:
                started = self._incidents.pop(s, None)
                if started is not None:
                    self.repair_times.append(now - started)
                continue
            if s not in self._incidents:
                self._incidents[s] = now
            fresh = self._fresh_live(s)
            if not fresh:
                continue  # nothing to copy from yet; incident stays open
            src = self.nodes[fresh[0]]
            replicas = self.shard_map.replicas[s]
            # 1) re-sync stale but live assigned replicas in place
            for name in list(replicas):
                node = self.nodes[name]
                if node.up and name not in fresh:
                    self._sync_node(s, src, node)
                    synced += 1
            # 2) recruit replacements for dead replicas, least-loaded first
            want = min(self.shard_map.target(s), max(live_count, 1))
            load = self.shard_map.loads(
                sorted(n for n, node in self.nodes.items() if node.up)
            )
            while (
                sum(1 for n in replicas if self.nodes[n].up) < want
            ):
                candidates = [
                    n for n in load if n not in replicas
                ]
                if not candidates:
                    break
                pick = min(candidates, key=lambda n: (load[n], n))
                dead = next(
                    (n for n in replicas if not self.nodes[n].up), None
                )
                if dead is not None:
                    self.shard_map.replace_replica(s, dead, pick)
                    self._applied[s].pop(dead, None)
                else:
                    self.shard_map.add_replica(s, pick)
                load[pick] += 1
                self._sync_node(s, src, self.nodes[pick])
                synced += 1
            if self._shard_deficit(s) == 0:
                started = self._incidents.pop(s, None)
                if started is not None:
                    self.repair_times.append(now - started)
        return synced

    # -- clustering-driven rebalance ---------------------------------------

    def _collect_features(self) -> Dict[GroupKey, GroupFeatures]:
        return {
            group: GroupFeatures(
                update_rate=float(self._group_updates.get(group, 0)),
                query_heat=float(self._group_heat.get(group, 0.0)),
            )
            for group in self._group_shard
        }

    def rebalance_sweep(self) -> int:
        """Refine placement toward the clustering ideal; bounded moves."""
        self.rebalance_passes += 1
        if not self._group_shard:
            return 0
        features = self._collect_features()
        ideal = assign_groups(
            features,
            self.config.shards,
            self.config.placement_seed,
            iterations=self.config.kmeans_iterations,
        )
        misplaced = [
            g
            for g in sorted(ideal)
            if ideal[g] != self._group_shard[g]
        ]
        misplaced.sort(key=lambda g: (-features[g].weight(), g))
        moved = 0
        for g in misplaced[: self.config.max_group_moves]:
            if self._move_group(g, ideal[g]):
                moved += 1
        self._refresh_hot_targets(features)
        if moved:
            self.placement_epoch += 1
            self.groups_migrated += moved
        return moved

    def _move_group(self, group: GroupKey, new_shard: int) -> bool:
        old_shard = self._group_shard[group]
        if old_shard == new_shard:
            return False
        keys = self._group_keys.get(group, [])
        if self.mode == "full" and keys:
            fresh = self._fresh_live(old_shard)
            if not fresh:
                return False  # no consistent source to copy from; retry later
            src = self.nodes[fresh[0]]
            for name in self.shard_map.replicas[new_shard]:
                node = self.nodes[name]
                if not node.up:
                    continue
                for key in keys:
                    node.store.clone_series_from(key, src.store)
                node.busy_seconds += (
                    len(keys) * self.config.repair_cost_per_series
                )
        self._group_shard[group] = new_shard
        for key in keys:
            self._key_shard[key] = new_shard
            self._shard_keys[old_shard].discard(key)
            self._shard_keys[new_shard].add(key)
        return True

    def _refresh_hot_targets(
        self, features: Dict[GroupKey, GroupFeatures]
    ) -> None:
        """Promote the hottest shards (by query heat) to R_hot replicas."""
        cfg = self.config
        hot_r = cfg.effective_hot_replication
        if hot_r <= cfg.replication or cfg.hot_fraction <= 0:
            return
        heat = [0.0] * cfg.shards
        for group, shard in self._group_shard.items():
            heat[shard] += features.get(group, GroupFeatures()).query_heat
        hot_count = max(1, int(math.ceil(cfg.shards * cfg.hot_fraction)))
        ranked = sorted(range(cfg.shards), key=lambda s: (-heat[s], s))
        hot = set(ranked[:hot_count])
        for s in range(cfg.shards):
            self.shard_map.set_target(
                s, hot_r if s in hot and heat[s] > 0 else cfg.replication
            )
        # the anti-entropy sweep recruits the extra replicas

    # -- reporting ---------------------------------------------------------

    def critical_path_seconds(self) -> float:
        """Busy seconds of the busiest node: the parallel-flush bound."""
        return max((n.busy_seconds for n in self.nodes.values()), default=0.0)

    def total_node_seconds(self) -> float:
        return sum(n.busy_seconds for n in self.nodes.values())

    def stats(self) -> Dict[str, float]:
        """Flat counter snapshot (CLI, benchmarks, obs gauges)."""
        return {
            "nodes": float(len(self.nodes)),
            "nodes_up": float(self.nodes_up()),
            "shards": float(self.config.shards),
            "series": float(len(self._key_shard)),
            "logical_updates": float(self.update_count),
            "physical_updates": float(
                sum(n.updates_applied for n in self.nodes.values())
            ),
            "updates_lost": float(self.updates_lost),
            "failover_fetches": float(self.failover_fetches),
            "stale_fetches": float(self.stale_fetches),
            "fetch_failures": float(self.fetch_failures),
            "under_replicated_shards": float(self.under_replicated_shards()),
            "repairs_completed": float(self.repairs_completed),
            "groups_migrated": float(self.groups_migrated),
            "critical_path_seconds": self.critical_path_seconds(),
            "total_node_seconds": self.total_node_seconds(),
        }
