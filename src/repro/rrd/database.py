"""One metric's history: a step clock plus a set of round-robin archives.

Semantics follow RRDtool's GAUGE data source (gmond already reports
rates, so Ganglia archives gauges): updates are binned into fixed steps,
multiple updates within a step are averaged, and skipped steps during an
outage are filled.  The fill value is configurable:

- ``downtime_fill="zero"`` (default) reproduces the paper's behaviour --
  "If a monitored node has failed, it keeps a 'zero' record during the
  downtime, aiding time-of-death forensic analysis";
- ``downtime_fill="nan"`` gives RRDtool's native unknown semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.rrd.consolidate import ConsolidationFunction
from repro.rrd.rra import RoundRobinArchive


@dataclass(frozen=True)
class RraSpec:
    """Declarative archive description used to build databases."""

    cf: ConsolidationFunction
    pdp_per_row: int
    rows: int
    xff: float = 0.5

    def build(self) -> RoundRobinArchive:
        """Instantiate the archive this spec describes."""
        return RoundRobinArchive(self.cf, self.pdp_per_row, self.rows, self.xff)


def default_rra_specs() -> List[RraSpec]:
    """Ganglia's stock RRA ladder (step 15 s).

    hour at full resolution, day at 6 min, week at ~42 min, month at
    ~2.8 h, year at ~24 h -- "we can see a metric's history over the past
    year but with less resolution than if we ask about more recent
    behavior".
    """
    avg = ConsolidationFunction.AVERAGE
    return [
        RraSpec(avg, 1, 244),
        RraSpec(avg, 24, 244),
        RraSpec(avg, 168, 244),
        RraSpec(avg, 672, 244),
        RraSpec(avg, 5760, 374),
    ]


def compact_rra_specs() -> List[RraSpec]:
    """A small ladder for tests and examples (bounded memory)."""
    avg = ConsolidationFunction.AVERAGE
    return [RraSpec(avg, 1, 64), RraSpec(avg, 8, 64), RraSpec(avg, 64, 64)]


class RrdDatabase:
    """Fixed-size, multi-resolution history for one numeric metric."""

    def __init__(
        self,
        step: float = 15.0,
        rra_specs: Optional[Sequence[RraSpec]] = None,
        downtime_fill: str = "zero",
        xff: float = 0.5,
    ) -> None:
        if step <= 0:
            raise ValueError("step must be positive")
        if downtime_fill not in ("zero", "nan"):
            raise ValueError(f"downtime_fill must be 'zero' or 'nan', got {downtime_fill!r}")
        self.step = step
        specs = list(rra_specs) if rra_specs is not None else default_rra_specs()
        if not specs:
            raise ValueError("at least one RRA is required")
        self.rras = [s.build() for s in specs]
        self.downtime_fill = downtime_fill
        self._fill_value = 0.0 if downtime_fill == "zero" else math.nan
        self._current_step: Optional[int] = None
        self._step_sum = 0.0
        self._step_count = 0
        self.last_update_time: Optional[float] = None
        self.updates = 0

    # -- ingestion -----------------------------------------------------------

    def _step_index(self, t: float) -> int:
        return int(t // self.step)

    def update(self, t: float, value: Optional[float]) -> None:
        """Record ``value`` observed at time ``t``.

        ``t`` must be non-decreasing across calls (RRDtool rejects
        out-of-order updates too).  ``None`` or NaN records an explicit
        unknown sample.
        """
        if self.last_update_time is not None and t < self.last_update_time:
            raise ValueError(
                f"out-of-order update: {t} < last {self.last_update_time}"
            )
        self.last_update_time = t
        self.updates += 1
        step = self._step_index(t)
        if self._current_step is None:
            self._current_step = step
        elif step > self._current_step:
            self._finalize_pdp()
            missing = step - self._current_step - 1
            if missing > 0:
                for rra in self.rras:
                    rra.push_fill(
                        self._fill_value, missing, self._current_step + 1
                    )
            self._current_step = step
        if value is not None and not (isinstance(value, float) and math.isnan(value)):
            self._step_sum += float(value)
            self._step_count += 1

    def _finalize_pdp(self) -> None:
        if self._current_step is None:
            return
        pdp = (
            self._step_sum / self._step_count if self._step_count else math.nan
        )
        for rra in self.rras:
            rra.push_pdp(pdp, self._current_step)
        self._step_sum = 0.0
        self._step_count = 0

    def update_many(self, samples: "Sequence[Tuple[float, Optional[float]]]") -> None:
        """Apply a time-sorted batch of ``(t, value)`` samples.

        Semantically identical to calling :meth:`update` per sample, but
        amortizes the per-call bookkeeping -- this is the primitive the
        batched store (§4 archiving optimization) flushes through, and
        what the ``test_rrd_archiving`` ablation measures.
        """
        if not samples:
            return
        step_width = self.step
        last = self.last_update_time
        current = self._current_step
        step_sum = self._step_sum
        step_count = self._step_count
        fill = self._fill_value
        rras = self.rras
        for t, value in samples:
            if last is not None and t < last:
                raise ValueError(f"out-of-order update: {t} < last {last}")
            last = t
            step = int(t // step_width)
            if current is None:
                current = step
            elif step > current:
                pdp = step_sum / step_count if step_count else math.nan
                for rra in rras:
                    rra.push_pdp(pdp, current)
                missing = step - current - 1
                if missing > 0:
                    for rra in rras:
                        rra.push_fill(fill, missing, current + 1)
                current = step
                step_sum = 0.0
                step_count = 0
            if value is not None and value == value:  # not None, not NaN
                step_sum += value
                step_count += 1
        self.last_update_time = last
        self._current_step = current
        self._step_sum = step_sum
        self._step_count = step_count
        self.updates += len(samples)

    def flush(self, now: float) -> None:
        """Close out steps up to ``now`` (e.g. before a fetch at end of run)."""
        if self._current_step is None:
            return
        step = self._step_index(now)
        if step > self._current_step:
            self.update(now, None)
            # the update() call above started accumulating an (empty)
            # PDP for `step`; nothing else to do.

    # -- reading ---------------------------------------------------------

    def memory_rows(self) -> int:
        """Total rows across archives (fixed: never grows)."""
        return sum(r.rows for r in self.rras)

    def best_rra_for(self, span_steps: int) -> RoundRobinArchive:
        """Finest-resolution archive covering at least ``span_steps``.

        If no archive has accumulated enough history yet, the one with
        the widest coverage wins (early in a database's life the finest
        archive holds everything there is).
        """
        by_resolution = sorted(self.rras, key=lambda r: r.pdp_per_row)
        for rra in by_resolution:
            if rra.coverage_steps() >= span_steps:
                return rra
        return max(by_resolution, key=lambda r: r.coverage_steps())

    def fetch(
        self, start: float, end: float
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """History rows whose interval ends in ``(start, end]``.

        Returns ``(times, values, resolution_seconds)`` where ``times``
        are row-end timestamps.  Picks the finest archive that covers the
        requested span -- ask about last hour, get 15-second rows; ask
        about last month, get coarse ones.
        """
        if end < start:
            raise ValueError("end must be >= start")
        span_steps = max(1, int(math.ceil((end - start) / self.step)))
        rra = self.best_rra_for(span_steps)
        times: List[float] = []
        values: List[float] = []
        for end_step, value in rra.rows_with_end_steps():
            t = end_step * self.step
            if start < t <= end:
                times.append(t)
                values.append(value)
        return (
            np.asarray(times),
            np.asarray(values),
            rra.pdp_per_row * self.step,
        )

    def latest(self) -> Optional[float]:
        """Most recent finalized full-resolution row value (may be NaN)."""
        finest = min(self.rras, key=lambda r: r.pdp_per_row)
        rows = finest.recent_rows(1)
        return float(rows[0]) if len(rows) else None
