"""Round-robin time-series databases (Ganglia's RRDtool, reimplemented).

"Ganglia keeps historical records of data in specialized time-series
databases, whose stream-based design supports a wide range of time scale
queries employing lossy compression with a bias towards recent data. ...
The databases are highly optimized for this type of data and do not grow
in size over time.  If a monitored node has failed, it keeps a 'zero'
record during the downtime, aiding time-of-death forensic analysis."
(§2.1)

This package provides:

- :class:`~repro.rrd.database.RrdDatabase` -- one metric's history:
  fixed-size, multi-resolution, consolidated archives.
- :class:`~repro.rrd.store.RrdStore` -- the per-gmetad collection of
  databases keyed by (source, cluster, host, metric), with an
  *accounting* mode used by the large scaling experiments (CPU cost is
  charged but no arrays are allocated).
- :class:`~repro.rrd.batch.BatchedRrdStore` -- the paper's §4 future-work
  optimization: coalesce updates to amortize per-update overhead.
"""

from repro.rrd.consolidate import ConsolidationFunction
from repro.rrd.database import RrdDatabase, RraSpec, default_rra_specs
from repro.rrd.rra import RoundRobinArchive
from repro.rrd.store import MetricKey, RrdStore
from repro.rrd.batch import BatchedRrdStore

__all__ = [
    "ConsolidationFunction",
    "RoundRobinArchive",
    "RrdDatabase",
    "RraSpec",
    "default_rra_specs",
    "RrdStore",
    "MetricKey",
    "BatchedRrdStore",
]
