"""The per-gmetad archive store: one RRD per (source, cluster, host, metric).

Two modes:

- ``mode="full"`` keeps real :class:`~repro.rrd.database.RrdDatabase`
  objects -- used by tests, examples and the forensics workflows.
- ``mode="account"`` counts updates without allocating arrays -- used by
  the Figure 5/6 scaling experiments, where only the *CPU cost* of
  archiving matters (the paper puts archives on tmpfs for the same
  reason: isolate CPU from I/O).  The update-counting is exact, so the
  charged work is identical to full mode.

Summary archives use host="__summary__" and two series per metric
(sum and num), matching "Nodes in the N-level monitoring tree keep only
summary archives of descendants rather than full duplicates".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.rrd.database import RraSpec, RrdDatabase

if TYPE_CHECKING:
    import numpy as np

    from repro.rrd.bank import SeriesBank

#: Pseudo-host name under which cluster/grid summaries are archived.
SUMMARY_HOST = "__summary__"


@dataclass(frozen=True, order=True)
class MetricKey:
    """Identifies one archived time series."""

    source: str   # data source (cluster or grid) name
    cluster: str  # cluster name ("" for grid-level summaries)
    host: str     # host name, or SUMMARY_HOST
    metric: str   # metric name, possibly suffixed ".sum" / ".num"

    def __str__(self) -> str:
        return f"{self.source}/{self.cluster}/{self.host}/{self.metric}"


class ColumnPlan:
    """A bound scatter target: one bank series per key, in key order.

    Built once per stable poll layout by :meth:`RrdStore.column_plan`;
    each poll then lands with a single :meth:`update` call.  Charges the
    same update count the per-key loop would (accounting parity).
    """

    __slots__ = ("store", "keys", "indices")

    def __init__(
        self, store: "RrdStore", keys: Sequence[MetricKey],
        indices: Optional["np.ndarray"],
    ) -> None:
        self.store = store
        self.keys = list(keys)
        self.indices = indices  # None in accounting mode

    def __len__(self) -> int:
        return len(self.keys)

    def update(self, t: float, values: "np.ndarray") -> None:
        """Apply one poll: ``values[j]`` is the sample for ``keys[j]``."""
        store = self.store
        n = len(self.keys)
        store.update_count += n
        if store.on_update is not None:
            store.on_update(n)
        if store.mode == "account":
            return
        store._bank.update_column(t, self.indices, values)


class RrdStore:
    """Creates databases on demand and routes updates to them.

    Series live in one of two homes: classic per-key
    :class:`RrdDatabase` objects (the scalar path), or a shared
    :class:`~repro.rrd.bank.SeriesBank` for keys bound into a
    :class:`ColumnPlan` (the columnar scatter path).  A key belongs to
    exactly one home -- scalar :meth:`update` calls on a bank-owned key
    route into the bank, and :meth:`database` returns a
    :class:`BankSeriesView` for them, so readers can't tell the
    difference.
    """

    def __init__(
        self,
        mode: str = "full",
        step: float = 15.0,
        rra_specs: Optional[Sequence[RraSpec]] = None,
        downtime_fill: str = "zero",
        on_update: Optional[Callable[[int], None]] = None,
    ) -> None:
        if mode not in ("full", "account"):
            raise ValueError(f"mode must be 'full' or 'account', got {mode!r}")
        self.mode = mode
        self.step = step
        self.rra_specs = list(rra_specs) if rra_specs is not None else None
        self.downtime_fill = downtime_fill
        self.on_update = on_update
        self._databases: Dict[MetricKey, RrdDatabase] = {}
        self._bank: Optional["SeriesBank"] = None
        self._bank_index: Dict[MetricKey, int] = {}
        self._bank_keys_cache: List[MetricKey] = []
        self.update_count = 0
        self.create_count = 0

    # -- writing -----------------------------------------------------------

    def update(self, key: MetricKey, t: float, value: Optional[float]) -> None:
        """Route one sample to its database (creating it on first touch)."""
        self.update_count += 1
        if self.on_update is not None:
            self.on_update(1)
        if self.mode == "account":
            return
        i = self._bank_index.get(key)
        if i is not None:
            self._bank.update_one(i, t, value)
            return
        self.ensure(key).update(t, value)

    def column_plan(self, keys: Sequence[MetricKey]) -> ColumnPlan:
        """Bind ``keys`` to bank series for vectorized scatter updates.

        In full mode each key gets (or keeps) a slot in the shared
        series bank; a key already archived as a scalar database cannot
        be re-bound (the histories would fork).  In accounting mode the
        plan only counts.
        """
        if self.mode == "account":
            return ColumnPlan(self, keys, None)
        import numpy as np

        if self._bank is None:
            from repro.rrd.bank import SeriesBank

            self._bank = SeriesBank(
                step=self.step,
                rra_specs=self.rra_specs,
                downtime_fill=self.downtime_fill,
            )
        index = self._bank_index
        indices = np.empty(len(keys), dtype=np.int64)
        for j, key in enumerate(keys):
            i = index.get(key)
            if i is None:
                if key in self._databases:
                    raise ValueError(
                        f"{key} already archived as a scalar database"
                    )
                i = self._bank.add_series(1)
                index[key] = i
                self.create_count += 1
            indices[j] = i
        return ColumnPlan(self, keys, indices)

    def update_columns(self, plan: ColumnPlan, t: float, values: "np.ndarray") -> None:
        """Apply one poll through a previously bound :class:`ColumnPlan`."""
        plan.update(t, values)

    def ensure(self, key: MetricKey) -> RrdDatabase:
        """The database for ``key``, created on first touch (full mode)."""
        if self.mode == "account":
            raise RuntimeError("accounting-mode store keeps no databases")
        if key in self._bank_index:
            raise RuntimeError(f"{key} is bank-owned; use database() to read")
        db = self._databases.get(key)
        if db is None:
            db = RrdDatabase(
                step=self.step,
                rra_specs=self.rra_specs,
                downtime_fill=self.downtime_fill,
            )
            self._databases[key] = db
            self.create_count += 1
        return db

    def update_summary(
        self, source: str, cluster: str, metric: str, t: float,
        total: float, num: int,
    ) -> None:
        """Archive one summary reduction as its two component series."""
        base = MetricKey(source, cluster, SUMMARY_HOST, metric)
        self.update(base, t, total)
        self.update(
            MetricKey(source, cluster, SUMMARY_HOST, f"{metric}.num"),
            t,
            float(num),
        )

    def clone_series_from(self, key: MetricKey, src: "RrdStore") -> bool:
        """Replicate one series' full state from another store.

        The storage tier's repair/re-replication primitive: after the
        copy, this store answers ``fetch``/``latest``/``updates`` for
        ``key`` identically to ``src``.  The series lands in the same
        home it has in the source (bank slot or scalar database); a key
        that already lives in the *other* home here is an error -- the
        histories would fork.  Returns False when there is nothing to
        copy (unknown key, or either store only accounts).
        """
        if self.mode == "account" or src.mode == "account":
            return False
        src_i = src._bank_index.get(key)
        if src_i is not None:
            if key in self._databases:
                raise ValueError(
                    f"{key} is a scalar database here but bank-owned in src"
                )
            if self._bank is None:
                from repro.rrd.bank import SeriesBank

                self._bank = SeriesBank(
                    step=self.step,
                    rra_specs=self.rra_specs,
                    downtime_fill=self.downtime_fill,
                )
            dst_i = self._bank_index.get(key)
            if dst_i is None:
                dst_i = self._bank.add_series(1)
                self._bank_index[key] = dst_i
                self.create_count += 1
            self._bank.copy_series_from(src._bank, src_i, dst_i)
            return True
        db = src._databases.get(key)
        if db is None:
            return False
        if key in self._bank_index:
            raise ValueError(
                f"{key} is bank-owned here but a scalar database in src"
            )
        import copy

        if key not in self._databases:
            self.create_count += 1
        self._databases[key] = copy.deepcopy(db)
        return True

    # -- reading -----------------------------------------------------------

    def database(self, key: MetricKey):
        """The series for a key, or None if never written (full mode).

        Returns an :class:`RrdDatabase` for scalar keys and a
        :class:`BankSeriesView` (same read surface: ``fetch``,
        ``latest``, ``flush``, ``updates``, ``last_update_time``) for
        bank-owned keys.
        """
        if self.mode == "account":
            raise RuntimeError("accounting-mode store keeps no databases")
        i = self._bank_index.get(key)
        if i is not None:
            return BankSeriesView(self._bank, i)
        return self._databases.get(key)

    def bank_series(self) -> Tuple[Optional["SeriesBank"], List[MetricKey]]:
        """The shared bank and its index-ordered key list.

        ``keys[i]`` names bank column ``i`` -- the inverse of the
        key-to-index map, which the analytics stage needs to label the
        columns of :meth:`SeriesBank.window_matrix`.  Returns
        ``(None, [])`` when no columnar plan ever ran.  Indices are
        allocated densely and never reused, so the inverse is rebuilt
        only when series were added since the last call.
        """
        if self._bank is None:
            return None, []
        if len(self._bank_keys_cache) != len(self._bank_index):
            ordered: List[Optional[MetricKey]] = [None] * self._bank.size
            for key, i in self._bank_index.items():
                ordered[i] = key
            self._bank_keys_cache = ordered  # type: ignore[assignment]
        return self._bank, self._bank_keys_cache

    def keys(self) -> List[MetricKey]:
        """Every archived series key, sorted."""
        return sorted([*self._databases, *self._bank_index])

    def keys_for_host(self, source: str, cluster: str, host: str) -> List[MetricKey]:
        """All series keys for one (source, cluster, host)."""
        return sorted(
            k
            for k in (*self._databases, *self._bank_index)
            if k.source == source and k.cluster == cluster and k.host == host
        )

    def fetch_series(
        self, key: MetricKey, start: float, end: float
    ) -> Tuple["np.ndarray", "np.ndarray", float]:
        """Fetch one series' history regardless of which home holds it."""
        series = self.database(key)
        if series is None:
            raise KeyError(f"no archive for {key}")
        return series.fetch(start, end)

    def __len__(self) -> int:
        return len(self._databases) + len(self._bank_index)


class BankSeriesView:
    """Read/maintenance adapter giving one bank series the database API."""

    __slots__ = ("bank", "index")

    def __init__(self, bank: "SeriesBank", index: int) -> None:
        self.bank = bank
        self.index = index

    @property
    def step(self) -> float:
        return self.bank.step

    @property
    def updates(self) -> int:
        return self.bank.updates_of(self.index)

    @property
    def last_update_time(self) -> Optional[float]:
        return self.bank.last_update_time_of(self.index)

    def update(self, t: float, value: Optional[float]) -> None:
        self.bank.update_one(self.index, t, value)

    def flush(self, now: float) -> None:
        self.bank.flush_one(self.index, now)

    def fetch(self, start: float, end: float):
        return self.bank.fetch(self.index, start, end)

    def latest(self) -> Optional[float]:
        return self.bank.latest(self.index)
