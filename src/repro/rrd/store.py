"""The per-gmetad archive store: one RRD per (source, cluster, host, metric).

Two modes:

- ``mode="full"`` keeps real :class:`~repro.rrd.database.RrdDatabase`
  objects -- used by tests, examples and the forensics workflows.
- ``mode="account"`` counts updates without allocating arrays -- used by
  the Figure 5/6 scaling experiments, where only the *CPU cost* of
  archiving matters (the paper puts archives on tmpfs for the same
  reason: isolate CPU from I/O).  The update-counting is exact, so the
  charged work is identical to full mode.

Summary archives use host="__summary__" and two series per metric
(sum and num), matching "Nodes in the N-level monitoring tree keep only
summary archives of descendants rather than full duplicates".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.rrd.database import RraSpec, RrdDatabase

#: Pseudo-host name under which cluster/grid summaries are archived.
SUMMARY_HOST = "__summary__"


@dataclass(frozen=True, order=True)
class MetricKey:
    """Identifies one archived time series."""

    source: str   # data source (cluster or grid) name
    cluster: str  # cluster name ("" for grid-level summaries)
    host: str     # host name, or SUMMARY_HOST
    metric: str   # metric name, possibly suffixed ".sum" / ".num"

    def __str__(self) -> str:
        return f"{self.source}/{self.cluster}/{self.host}/{self.metric}"


class RrdStore:
    """Creates databases on demand and routes updates to them."""

    def __init__(
        self,
        mode: str = "full",
        step: float = 15.0,
        rra_specs: Optional[Sequence[RraSpec]] = None,
        downtime_fill: str = "zero",
        on_update: Optional[Callable[[int], None]] = None,
    ) -> None:
        if mode not in ("full", "account"):
            raise ValueError(f"mode must be 'full' or 'account', got {mode!r}")
        self.mode = mode
        self.step = step
        self.rra_specs = list(rra_specs) if rra_specs is not None else None
        self.downtime_fill = downtime_fill
        self.on_update = on_update
        self._databases: Dict[MetricKey, RrdDatabase] = {}
        self.update_count = 0
        self.create_count = 0

    # -- writing -----------------------------------------------------------

    def update(self, key: MetricKey, t: float, value: Optional[float]) -> None:
        """Route one sample to its database (creating it on first touch)."""
        self.update_count += 1
        if self.on_update is not None:
            self.on_update(1)
        if self.mode == "account":
            return
        self.ensure(key).update(t, value)

    def ensure(self, key: MetricKey) -> RrdDatabase:
        """The database for ``key``, created on first touch (full mode)."""
        if self.mode == "account":
            raise RuntimeError("accounting-mode store keeps no databases")
        db = self._databases.get(key)
        if db is None:
            db = RrdDatabase(
                step=self.step,
                rra_specs=self.rra_specs,
                downtime_fill=self.downtime_fill,
            )
            self._databases[key] = db
            self.create_count += 1
        return db

    def update_summary(
        self, source: str, cluster: str, metric: str, t: float,
        total: float, num: int,
    ) -> None:
        """Archive one summary reduction as its two component series."""
        base = MetricKey(source, cluster, SUMMARY_HOST, metric)
        self.update(base, t, total)
        self.update(
            MetricKey(source, cluster, SUMMARY_HOST, f"{metric}.num"),
            t,
            float(num),
        )

    # -- reading -----------------------------------------------------------

    def database(self, key: MetricKey) -> Optional[RrdDatabase]:
        """The database for a key, or None if never written (full mode)."""
        if self.mode == "account":
            raise RuntimeError("accounting-mode store keeps no databases")
        return self._databases.get(key)

    def keys(self) -> List[MetricKey]:
        """Every archived series key, sorted."""
        return sorted(self._databases)

    def keys_for_host(self, source: str, cluster: str, host: str) -> List[MetricKey]:
        """All series keys for one (source, cluster, host)."""
        return sorted(
            k
            for k in self._databases
            if k.source == source and k.cluster == cluster and k.host == host
        )

    def __len__(self) -> int:
        return len(self._databases)
