"""Consolidation functions: how k primary data points become one row."""

from __future__ import annotations

import enum
import math
from typing import Optional


class ConsolidationFunction(enum.Enum):
    """RRDtool's consolidation vocabulary."""

    AVERAGE = "AVERAGE"
    MIN = "MIN"
    MAX = "MAX"
    LAST = "LAST"


class RowAccumulator:
    """Incrementally consolidates PDPs into one archive row.

    Tracks unknown PDPs so the ``xff`` (xfiles factor) rule can void a
    row built mostly from gaps: if more than ``xff`` of the PDPs in a row
    are unknown, the row itself is unknown.
    """

    def __init__(self, cf: ConsolidationFunction) -> None:
        self.cf = cf
        self.reset()

    def reset(self) -> None:
        """Clear the accumulator for a new row."""
        self.total = 0
        self.known = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._last: Optional[float] = None

    def add(self, value: Optional[float]) -> None:
        """Add one PDP; ``None``/NaN means unknown."""
        self.total += 1
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return
        self.known += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._last = value

    def result(self, xff: float) -> float:
        """The consolidated row value, or NaN if too much was unknown."""
        if self.total == 0:
            return math.nan
        unknown_fraction = 1.0 - self.known / self.total
        if self.known == 0 or unknown_fraction > xff:
            return math.nan
        if self.cf is ConsolidationFunction.AVERAGE:
            return self._sum / self.known
        if self.cf is ConsolidationFunction.MIN:
            return self._min
        if self.cf is ConsolidationFunction.MAX:
            return self._max
        return self._last if self._last is not None else math.nan
