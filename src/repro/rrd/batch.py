"""Batched RRD updates: the paper's §4 archiving optimization.

"Our archiving technique makes too many updates to the file-based
databases, causing unnecessary disk I/O.  We believe in future designs
gmeta can manipulate its RRD databases in a more efficient manner."

The real cost being amortized is per-update overhead (in RRDtool: an
open/seek/write per update; here: Python call dispatch and step
bookkeeping).  :class:`BatchedRrdStore` queues samples per key and
flushes them together, applying a same-step run of samples in a single
accumulate.  The ``test_rrd_archiving`` ablation benchmark measures the
speedup against the unbatched store.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.rrd.store import ColumnPlan, MetricKey, RrdStore

if TYPE_CHECKING:
    import numpy as np


class BatchedRrdStore:
    """Write-behind front for an :class:`RrdStore`.

    Samples accumulate in per-key queues; :meth:`flush` drains them in
    key order (one database lookup per key, not per sample).  Call
    :meth:`flush` at the end of each polling cycle -- deferring longer
    trades archive freshness for throughput, exactly the tradeoff the
    paper describes for its background parsing.
    """

    def __init__(self, store: RrdStore, max_pending: int = 100_000) -> None:
        self.store = store
        self.max_pending = max_pending
        self._pending: Dict[MetricKey, List[Tuple[float, Optional[float]]]] = {}
        self._pending_count = 0
        self.flushes = 0
        self.samples_batched = 0

    def update(self, key: MetricKey, t: float, value: Optional[float]) -> None:
        """Queue one sample; auto-flushes when ``max_pending`` is reached."""
        self._pending.setdefault(key, []).append((t, value))
        self._pending_count += 1
        self.samples_batched += 1
        if self._pending_count >= self.max_pending:
            self.flush()

    def update_summary(
        self, source: str, cluster: str, metric: str, t: float,
        total: float, num: int,
    ) -> None:
        """Queue a summary reduction as its sum and num series."""
        from repro.rrd.store import SUMMARY_HOST

        self.update(MetricKey(source, cluster, SUMMARY_HOST, metric), t, total)
        self.update(
            MetricKey(source, cluster, SUMMARY_HOST, f"{metric}.num"),
            t,
            float(num),
        )

    def column_plan(self, keys: Sequence[MetricKey]) -> ColumnPlan:
        """Bind keys to the backing store's series bank (pass-through)."""
        return self.store.column_plan(keys)

    def update_columns(
        self, plan: ColumnPlan, t: float, values: "np.ndarray"
    ) -> None:
        """Apply one poll's columnar scatter through the batch layer.

        Any queued scalar samples are flushed *first*: the scatter
        lands at time ``t``, and a later flush of earlier-queued samples
        for the same series would be rejected as out-of-order.  The
        scatter itself is never queued -- it is already a batch.
        """
        if self._pending_count:
            self.flush()
        plan.update(t, values)

    @property
    def pending(self) -> int:
        return self._pending_count

    def flush(self) -> int:
        """Apply all queued samples; returns how many were written.

        Flush ordering is deterministic and documented, because archive
        state must not depend on arrival order:

        - keys drain in sorted :class:`MetricKey` order (source, cluster,
          host, metric) regardless of the order updates were queued in;
        - within a key, samples apply in timestamp order, and the sort is
          **stable**: two samples with the same timestamp keep their
          arrival order, so a same-step pair ``(t, a), (t, b)``
          accumulates ``a`` then ``b`` into the PDP exactly like the
          unbatched store would.

        ``test_batch_flush_determinism`` pins these properties.

        In full mode each key's run goes through
        :meth:`~repro.rrd.database.RrdDatabase.update_many` -- one
        database lookup and one bookkeeping pass per key instead of per
        sample, which is where the batching speedup comes from.
        """
        written = 0
        # Key order keeps flushes deterministic regardless of arrival order.
        for key in sorted(self._pending):
            samples = self._pending[key]
            samples.sort(key=lambda s: s[0])
            if self.store.mode == "full":
                self.store.ensure(key).update_many(samples)
                self.store.update_count += len(samples)
                if self.store.on_update is not None:
                    self.store.on_update(len(samples))
            else:
                for t, value in samples:
                    self.store.update(key, t, value)
            written += len(samples)
        self._pending.clear()
        self._pending_count = 0
        self.flushes += 1
        return written
