"""One round-robin archive: a fixed circular buffer of consolidated rows.

An RRA consolidates every ``pdp_per_row`` primary data points into one
row and keeps the most recent ``rows`` rows.  Old rows are overwritten --
this is the "lossy compression with a bias towards recent data" and the
reason the database "does not grow in size over time".
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.rrd.consolidate import ConsolidationFunction, RowAccumulator


class RoundRobinArchive:
    """Circular row store plus the accumulator for the row in progress."""

    def __init__(
        self,
        cf: ConsolidationFunction,
        pdp_per_row: int,
        rows: int,
        xff: float = 0.5,
    ) -> None:
        if pdp_per_row <= 0:
            raise ValueError("pdp_per_row must be positive")
        if rows <= 0:
            raise ValueError("rows must be positive")
        if not (0.0 <= xff < 1.0):
            raise ValueError("xff must be in [0, 1)")
        self.cf = cf
        self.pdp_per_row = pdp_per_row
        self.rows = rows
        self.xff = xff
        self._values = np.full(rows, np.nan)
        self._head = 0  # next write slot
        self.rows_written = 0
        self._acc = RowAccumulator(cf)
        #: step index *after* the most recently finalized row (set by the
        #: owning database; anchors row timestamps)
        self.last_row_end_step: Optional[int] = None

    # -- ingestion -----------------------------------------------------------

    @property
    def pending_pdps(self) -> int:
        """PDPs accumulated toward the in-progress row."""
        return self._acc.total

    def push_pdp(self, value: Optional[float], step_index: int) -> bool:
        """Add the PDP for ``step_index``; returns True if a row closed.

        Rows are aligned to the absolute step grid: the row closes when
        ``step_index + 1`` is a multiple of ``pdp_per_row``.
        """
        self._acc.add(value)
        if (step_index + 1) % self.pdp_per_row == 0:
            self._write_row(self._acc.result(self.xff))
            self._acc.reset()
            self.last_row_end_step = step_index + 1
            return True
        return False

    def push_fill(self, value: float, count: int, first_step: int) -> int:
        """Push ``count`` identical PDPs starting at ``first_step``.

        Equivalent to ``count`` calls to :meth:`push_pdp` but fills whole
        rows in bulk -- long downtimes (hours of zero records) would
        otherwise cost one Python call per 15-second step.  Returns the
        number of rows closed.
        """
        if count <= 0:
            return 0
        closed = 0
        step = first_step
        remaining = count
        # 1) finish the partial row the slow way (< pdp_per_row steps)
        while remaining > 0 and (step % self.pdp_per_row != 0 or self._acc.total):
            if self.push_pdp(value, step):
                closed += 1
            step += 1
            remaining -= 1
        # 2) whole rows of the identical value, vectorized
        full_rows = remaining // self.pdp_per_row
        if full_rows > 0:
            row_value = value if not math.isnan(value) else math.nan
            self._write_rows_bulk(row_value, full_rows)
            closed += full_rows
            step += full_rows * self.pdp_per_row
            remaining -= full_rows * self.pdp_per_row
            self.last_row_end_step = step
        # 3) leftover partial accumulation
        while remaining > 0:
            if self.push_pdp(value, step):
                closed += 1
            step += 1
            remaining -= 1
        return closed

    def _write_row(self, value: float) -> None:
        self._values[self._head] = value
        self._head = (self._head + 1) % self.rows
        self.rows_written += 1

    def _write_rows_bulk(self, value: float, count: int) -> None:
        if count >= self.rows:
            self._values[:] = value
            self._head = 0
        else:
            end = self._head + count
            if end <= self.rows:
                self._values[self._head : end] = value
            else:
                self._values[self._head :] = value
                self._values[: end - self.rows] = value
            self._head = end % self.rows
        self.rows_written += count

    # -- reading -----------------------------------------------------------

    @property
    def filled_rows(self) -> int:
        return min(self.rows_written, self.rows)

    def recent_rows(self, count: Optional[int] = None) -> np.ndarray:
        """The last ``count`` rows, oldest first (default: all filled)."""
        n = self.filled_rows if count is None else min(count, self.filled_rows)
        if n == 0:
            return np.empty(0)
        idx = (self._head - n + np.arange(n)) % self.rows
        return self._values[idx].copy()

    def rows_with_end_steps(self) -> List[Tuple[int, float]]:
        """[(row_end_step, value), ...] oldest first, for fetch()."""
        if self.last_row_end_step is None:
            return []
        values = self.recent_rows()
        n = len(values)
        return [
            (self.last_row_end_step - (n - 1 - i) * self.pdp_per_row, values[i])
            for i in range(n)
        ]

    def coverage_steps(self) -> int:
        """How many base steps of history this archive currently holds."""
        return self.filled_rows * self.pdp_per_row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RRA({self.cf.value}, pdp_per_row={self.pdp_per_row}, "
            f"rows={self.rows}, written={self.rows_written})"
        )
