"""Persistence for round-robin databases (Ganglia's ``rrd_rootdir``).

Real gmetad keeps one RRD file per metric under
``<rrd_rootdir>/<source>/<host>/<metric>.rrd``.  This module mirrors
that layout with ``.npz`` files (numpy's compressed container): a store
saved here survives a daemon restart with every archive row, the
partial accumulator and the step clock intact.

Format: each ``.npz`` holds one JSON metadata blob plus the row array
of every RRA.  Loading reconstructs a database observationally
identical to the saved one (pinned by round-trip tests).
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Union

import numpy as np

from repro.rrd.consolidate import ConsolidationFunction
from repro.rrd.database import RraSpec, RrdDatabase
from repro.rrd.store import MetricKey, RrdStore

FORMAT_VERSION = 1


class PersistError(RuntimeError):
    """Corrupt or incompatible saved database."""


def save_database(database: RrdDatabase, path: Union[str, pathlib.Path]) -> None:
    """Write one database to ``path`` (parent directories created)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "version": FORMAT_VERSION,
        "step": database.step,
        "downtime_fill": database.downtime_fill,
        "current_step": database._current_step,
        "step_sum": database._step_sum,
        "step_count": database._step_count,
        "last_update_time": database.last_update_time,
        "updates": database.updates,
        "rras": [],
    }
    arrays = {}
    for i, rra in enumerate(database.rras):
        meta["rras"].append(
            {
                "cf": rra.cf.value,
                "pdp_per_row": rra.pdp_per_row,
                "rows": rra.rows,
                "xff": rra.xff,
                "head": rra._head,
                "rows_written": rra.rows_written,
                "last_row_end_step": rra.last_row_end_step,
                "acc_total": rra._acc.total,
                "acc_known": rra._acc.known,
                "acc_sum": rra._acc._sum,
                "acc_min": _json_float(rra._acc._min),
                "acc_max": _json_float(rra._acc._max),
                "acc_last": rra._acc._last,
            }
        )
        arrays[f"rra_{i}"] = rra._values
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def _json_float(value: float):
    """inf/-inf/nan survive JSON as tagged strings."""
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    if isinstance(value, float) and math.isnan(value):
        return "nan"
    return value


def _from_json_float(value):
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    if value == "nan":
        return math.nan
    return value


def load_database(path: Union[str, pathlib.Path]) -> RrdDatabase:
    """Reconstruct a database saved by :func:`save_database`."""
    path = pathlib.Path(path)
    try:
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode("utf-8"))
            row_arrays = [
                data[f"rra_{i}"].copy() for i in range(len(meta["rras"]))
            ]
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
        raise PersistError(f"cannot load {path}: {exc}") from None
    if meta.get("version") != FORMAT_VERSION:
        raise PersistError(
            f"{path}: format version {meta.get('version')} not supported"
        )
    specs = [
        RraSpec(
            ConsolidationFunction(entry["cf"]),
            entry["pdp_per_row"],
            entry["rows"],
            entry["xff"],
        )
        for entry in meta["rras"]
    ]
    database = RrdDatabase(
        step=meta["step"],
        rra_specs=specs,
        downtime_fill=meta["downtime_fill"],
    )
    database._current_step = meta["current_step"]
    database._step_sum = meta["step_sum"]
    database._step_count = meta["step_count"]
    database.last_update_time = meta["last_update_time"]
    database.updates = meta["updates"]
    for rra, entry, values in zip(database.rras, meta["rras"], row_arrays):
        if len(values) != rra.rows:
            raise PersistError(f"{path}: row array size mismatch")
        rra._values[:] = values
        rra._head = entry["head"]
        rra.rows_written = entry["rows_written"]
        rra.last_row_end_step = entry["last_row_end_step"]
        rra._acc.total = entry["acc_total"]
        rra._acc.known = entry["acc_known"]
        rra._acc._sum = entry["acc_sum"]
        rra._acc._min = _from_json_float(entry["acc_min"])
        rra._acc._max = _from_json_float(entry["acc_max"])
        rra._acc._last = entry["acc_last"]
    return database


# -- whole-store persistence ---------------------------------------------------


def _key_path(root: pathlib.Path, key: MetricKey) -> pathlib.Path:
    """Ganglia's rrd_rootdir layout: source/cluster/host/metric.npz."""
    return root / key.source / key.cluster / key.host / f"{key.metric}.npz"


def save_store(store: RrdStore, root: Union[str, pathlib.Path]) -> int:
    """Persist every database of a full-mode store; returns file count."""
    if store.mode != "full":
        raise PersistError("only full-mode stores hold databases to save")
    root = pathlib.Path(root)
    count = 0
    for key in store.keys():
        save_database(store.database(key), _key_path(root, key))
        count += 1
    return count


def load_store(
    root: Union[str, pathlib.Path],
    step: float = 15.0,
) -> RrdStore:
    """Rebuild a store from a directory written by :func:`save_store`."""
    root = pathlib.Path(root)
    if not root.is_dir():
        raise PersistError(f"no such archive directory: {root}")
    store = RrdStore(mode="full", step=step)
    for path in sorted(root.rglob("*.npz")):
        relative = path.relative_to(root)
        parts = relative.parts
        if len(parts) != 4:
            raise PersistError(f"unexpected archive layout at {relative}")
        source, cluster, host, filename = parts
        key = MetricKey(source, cluster, host, filename[: -len(".npz")])
        store._databases[key] = load_database(path)
        store.create_count += 1
    return store
