"""A bank of RRD series updated by vectorized column scatter.

One :class:`SeriesBank` holds the per-series step clocks, PDP
accumulators and ring buffers for *many* metric series that share a step
and RRA ladder -- the detail archives of one cluster poll.  Where
:class:`~repro.rrd.database.RrdDatabase` pays Python call dispatch and
step bookkeeping per metric per poll, the bank applies a whole poll as a
handful of array operations (§4: "gmetad can manipulate its RRD
databases in a more efficient manner").

The trick that makes the hot path branch-free: in the steady state every
series in a poll is exactly one step behind the incoming sample, so
finalizing their PDPs, consolidating them into the row accumulators and
closing rows (when the step grid says so -- rows are aligned to the
absolute grid, identically for every series) are uniform vector ops over
the whole cohort.  Series that are further behind (a host rejoining
after downtime) drop to a per-series scalar path that mirrors
``RrdDatabase.update`` -- including ``push_fill``'s partial/bulk/partial
row structure -- so the archived rows are value-identical to what the
scalar store would hold.

Ring positions are derived from the absolute step grid
(``(end_step // pdp_per_row - 1) % rows``), so no per-series head
pointer exists; physical slot layout differs from the scalar archive's
(which starts every series at slot 0) but all reads reconstruct rows
from ``last_row_end``/``rows_written``, making the layout unobservable.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.rrd.consolidate import ConsolidationFunction
from repro.rrd.database import RraSpec, default_rra_specs


class _BankRra:
    """One RRA ladder rung, vectorized across all series in the bank."""

    __slots__ = (
        "cf",
        "pdp_per_row",
        "rows",
        "xff",
        "values",
        "rows_written",
        "last_row_end",
        "acc_total",
        "acc_known",
        "acc_sum",
        "acc_min",
        "acc_max",
        "acc_last",
        "acc_last_known",
    )

    def __init__(self, spec: RraSpec, capacity: int) -> None:
        self.cf = spec.cf
        self.pdp_per_row = spec.pdp_per_row
        self.rows = spec.rows
        self.xff = spec.xff
        self.values = np.full((spec.rows, capacity), np.nan)
        self.rows_written = np.zeros(capacity, dtype=np.int64)
        self.last_row_end = np.full(capacity, -1, dtype=np.int64)  # -1: none
        self.acc_total = np.zeros(capacity, dtype=np.int64)
        self.acc_known = np.zeros(capacity, dtype=np.int64)
        self.acc_sum = np.zeros(capacity)
        self.acc_min = np.full(capacity, np.inf)
        self.acc_max = np.full(capacity, -np.inf)
        self.acc_last = np.full(capacity, np.nan)
        self.acc_last_known = np.zeros(capacity, dtype=bool)

    def grow(self, capacity: int) -> None:
        old = self.values.shape[1]
        if capacity <= old:
            return
        for name in self.__slots__[4:]:
            arr = getattr(self, name)
            if arr.ndim == 2:
                fresh = np.full((self.rows, capacity), np.nan)
                fresh[:, :old] = arr
            else:
                fill = {
                    "rows_written": 0,
                    "last_row_end": -1,
                    "acc_total": 0,
                    "acc_known": 0,
                    "acc_sum": 0.0,
                    "acc_min": np.inf,
                    "acc_max": -np.inf,
                    "acc_last": np.nan,
                    "acc_last_known": False,
                }[name]
                fresh = np.full(capacity, fill, dtype=arr.dtype)
                fresh[:old] = arr
            setattr(self, name, fresh)

    # -- vectorized cohort operations ---------------------------------------

    def add_pdp_cohort(self, idx: np.ndarray, pdp: np.ndarray, step: int) -> None:
        """``push_pdp(pdp, step)`` for every series in ``idx`` at once."""
        self.acc_total[idx] += 1
        known = ~np.isnan(pdp)
        ik = idx[known]
        if ik.size:
            pk = pdp[known]
            self.acc_known[ik] += 1
            self.acc_sum[ik] += pk
            self.acc_min[ik] = np.minimum(self.acc_min[ik], pk)
            self.acc_max[ik] = np.maximum(self.acc_max[ik], pk)
            self.acc_last[ik] = pk
            self.acc_last_known[ik] = True
        if (step + 1) % self.pdp_per_row == 0:
            self._close_rows(idx, step + 1)

    def _close_rows(self, idx: np.ndarray, end_step: int) -> None:
        total = self.acc_total[idx]
        known = self.acc_known[idx]
        result = np.full(idx.shape, np.nan)
        # total > 0 always here (a PDP was just added); replicate the
        # RowAccumulator.result formula elementwise
        frac = 1.0 - known / total
        ok = (known > 0) & (frac <= self.xff)
        iok = idx[ok]
        if iok.size:
            if self.cf is ConsolidationFunction.AVERAGE:
                result[ok] = self.acc_sum[iok] / known[ok]
            elif self.cf is ConsolidationFunction.MIN:
                result[ok] = self.acc_min[iok]
            elif self.cf is ConsolidationFunction.MAX:
                result[ok] = self.acc_max[iok]
            else:  # LAST
                result[ok] = self.acc_last[iok]
        self.values[(end_step // self.pdp_per_row - 1) % self.rows, idx] = result
        self.rows_written[idx] += 1
        self.last_row_end[idx] = end_step
        # reset accumulators
        self.acc_total[idx] = 0
        self.acc_known[idx] = 0
        self.acc_sum[idx] = 0.0
        self.acc_min[idx] = np.inf
        self.acc_max[idx] = -np.inf
        self.acc_last_known[idx] = False

    # -- per-series scalar operations (gap/straggler path) ------------------

    def push_pdp_one(self, i: int, value: float, step: int) -> None:
        self.acc_total[i] += 1
        if not math.isnan(value):
            self.acc_known[i] += 1
            self.acc_sum[i] += value
            if value < self.acc_min[i]:
                self.acc_min[i] = value
            if value > self.acc_max[i]:
                self.acc_max[i] = value
            self.acc_last[i] = value
            self.acc_last_known[i] = True
        if (step + 1) % self.pdp_per_row == 0:
            self._close_row_one(i, step + 1)

    def _close_row_one(self, i: int, end_step: int) -> None:
        total = int(self.acc_total[i])
        known = int(self.acc_known[i])
        if total == 0 or known == 0 or (1.0 - known / total) > self.xff:
            result = math.nan
        elif self.cf is ConsolidationFunction.AVERAGE:
            result = self.acc_sum[i] / known
        elif self.cf is ConsolidationFunction.MIN:
            result = self.acc_min[i]
        elif self.cf is ConsolidationFunction.MAX:
            result = self.acc_max[i]
        else:
            result = self.acc_last[i] if self.acc_last_known[i] else math.nan
        self.values[(end_step // self.pdp_per_row - 1) % self.rows, i] = result
        self.rows_written[i] += 1
        self.last_row_end[i] = end_step
        self.acc_total[i] = 0
        self.acc_known[i] = 0
        self.acc_sum[i] = 0.0
        self.acc_min[i] = np.inf
        self.acc_max[i] = -np.inf
        self.acc_last_known[i] = False

    def push_fill_one(self, i: int, value: float, count: int, first_step: int) -> None:
        """``RoundRobinArchive.push_fill`` for one series: partial row the
        slow way, whole rows in bulk, leftover accumulation."""
        if count <= 0:
            return
        ppr = self.pdp_per_row
        step = first_step
        remaining = count
        while remaining > 0 and (step % ppr != 0 or self.acc_total[i]):
            self.push_pdp_one(i, value, step)
            step += 1
            remaining -= 1
        full_rows = remaining // ppr
        if full_rows > 0:
            # bulk rows take the fill value directly, not via the
            # accumulator (matching the scalar bulk path: a row built
            # purely from one fill value consolidates to that value)
            if full_rows >= self.rows:
                self.values[:, i] = value
            else:
                pos = (step // ppr + np.arange(full_rows)) % self.rows
                self.values[pos, i] = value
            self.rows_written[i] += full_rows
            step += full_rows * ppr
            remaining -= full_rows * ppr
            self.last_row_end[i] = step
        while remaining > 0:
            self.push_pdp_one(i, value, step)
            step += 1
            remaining -= 1

    # -- reading -------------------------------------------------------------

    def coverage_steps_one(self, i: int) -> int:
        return int(min(self.rows_written[i], self.rows)) * self.pdp_per_row

    def rows_with_end_steps_one(self, i: int) -> List[Tuple[int, float]]:
        last_end = int(self.last_row_end[i])
        if last_end < 0:
            return []
        n = int(min(self.rows_written[i], self.rows))
        ppr = self.pdp_per_row
        last_pos = last_end // ppr - 1
        pos = (last_pos - (n - 1) + np.arange(n)) % self.rows
        vals = self.values[pos, i]
        return [
            (last_end - (n - 1 - j) * ppr, float(vals[j])) for j in range(n)
        ]


class SeriesBank:
    """Many RRD series sharing one step and RRA ladder.

    Series are identified by dense integer index (allocate with
    :meth:`add_series`); the owning store maps :class:`MetricKey` to
    index.  The write path is :meth:`update_column` -- one call per
    (poll, step) applying a value vector to a series-index vector.
    """

    def __init__(
        self,
        step: float = 15.0,
        rra_specs: Optional[Sequence[RraSpec]] = None,
        downtime_fill: str = "zero",
    ) -> None:
        if step <= 0:
            raise ValueError("step must be positive")
        if downtime_fill not in ("zero", "nan"):
            raise ValueError(
                f"downtime_fill must be 'zero' or 'nan', got {downtime_fill!r}"
            )
        self.step = step
        self.specs = (
            list(rra_specs) if rra_specs is not None else default_rra_specs()
        )
        if not self.specs:
            raise ValueError("at least one RRA is required")
        self.downtime_fill = downtime_fill
        self._fill_value = 0.0 if downtime_fill == "zero" else math.nan
        self.size = 0
        self._cap = 0
        self._started = np.zeros(0, dtype=bool)
        self._cur_step = np.zeros(0, dtype=np.int64)
        self._pdp_sum = np.zeros(0)
        self._pdp_count = np.zeros(0, dtype=np.int64)
        self._last_t = np.full(0, np.nan)
        self._updates = np.zeros(0, dtype=np.int64)
        self.rras: List[_BankRra] = [_BankRra(s, 0) for s in self.specs]

    # -- series management ---------------------------------------------------

    def _grow(self, needed: int) -> None:
        cap = max(64, self._cap)
        while cap < needed:
            cap *= 2
        if cap == self._cap:
            return
        n = self.size
        started = np.zeros(cap, dtype=bool)
        started[:n] = self._started[:n]
        self._started = started
        for name, fill, dtype in (
            ("_cur_step", 0, np.int64),
            ("_pdp_sum", 0.0, np.float64),
            ("_pdp_count", 0, np.int64),
            ("_last_t", np.nan, np.float64),
            ("_updates", 0, np.int64),
        ):
            arr = np.full(cap, fill, dtype=dtype)
            arr[:n] = getattr(self, name)[:n]
            setattr(self, name, arr)
        for rra in self.rras:
            rra.grow(cap)
        self._cap = cap

    def add_series(self, count: int = 1) -> int:
        """Allocate ``count`` fresh series; returns the first index."""
        first = self.size
        self._grow(self.size + count)
        self.size += count
        return first

    def copy_series_from(self, src: "SeriesBank", src_i: int, dst_i: int) -> None:
        """Overwrite series ``dst_i`` with the full state of ``src[src_i]``.

        The replication primitive of the storage tier: step clock, PDP
        accumulators and every RRA rung are copied column-wise, so the
        destination series answers ``fetch``/``latest`` identically to
        the source.  Banks must share step and RRA ladder.
        """
        if src.step != self.step or len(src.rras) != len(self.rras):
            raise ValueError("banks must share step and RRA ladder")
        for mine, theirs in zip(self.rras, src.rras):
            if (
                mine.cf is not theirs.cf
                or mine.pdp_per_row != theirs.pdp_per_row
                or mine.rows != theirs.rows
            ):
                raise ValueError("banks must share step and RRA ladder")
        self._started[dst_i] = src._started[src_i]
        self._cur_step[dst_i] = src._cur_step[src_i]
        self._pdp_sum[dst_i] = src._pdp_sum[src_i]
        self._pdp_count[dst_i] = src._pdp_count[src_i]
        self._last_t[dst_i] = src._last_t[src_i]
        self._updates[dst_i] = src._updates[src_i]
        for mine, theirs in zip(self.rras, src.rras):
            mine.values[:, dst_i] = theirs.values[:, src_i]
            for name in _BankRra.__slots__[5:]:
                getattr(mine, name)[dst_i] = getattr(theirs, name)[src_i]

    # -- writing -------------------------------------------------------------

    def update_column(
        self, t: float, idx: np.ndarray, values: np.ndarray
    ) -> None:
        """Apply one poll's samples: ``values[j]`` to series ``idx[j]``.

        ``idx`` must not repeat a series.  NaN values record explicit
        unknown samples (they advance the step clock without counting
        toward the PDP), exactly like ``RrdDatabase.update``.
        """
        if idx.size == 0:
            return
        last = self._last_t[idx]
        late = last > t  # NaN (never updated) compares False
        if late.any():
            j = int(np.argmax(late))
            raise ValueError(
                f"out-of-order update: {t} < last {float(last[j])}"
            )
        self._last_t[idx] = t
        self._updates[idx] += 1
        step = int(t // self.step)

        started = self._started[idx]
        if not started.all():
            fresh = idx[~started]
            self._started[fresh] = True
            self._cur_step[fresh] = step
            # pdp_sum/count already zero for fresh series
        behind = started & (self._cur_step[idx] < step)
        if behind.any():
            bidx = idx[behind]
            cohort_mask = self._cur_step[bidx] == step - 1
            cohort = bidx[cohort_mask]
            if cohort.size:
                cnt = self._pdp_count[cohort]
                pdp = np.full(cohort.shape, np.nan)
                nz = cnt > 0
                if nz.any():
                    pdp[nz] = self._pdp_sum[cohort[nz]] / cnt[nz]
                for rra in self.rras:
                    rra.add_pdp_cohort(cohort, pdp, step - 1)
                self._cur_step[cohort] = step
                self._pdp_sum[cohort] = 0.0
                self._pdp_count[cohort] = 0
            stragglers = bidx[~cohort_mask]
            for i in stragglers:
                self._advance_one(int(i), step)

        known = ~np.isnan(values)
        ik = idx[known]
        if ik.size:
            self._pdp_sum[ik] += values[known]
            self._pdp_count[ik] += 1

    def _advance_one(self, i: int, step: int) -> None:
        """Mirror of ``RrdDatabase.update``'s step advance for one series."""
        cur = int(self._cur_step[i])
        cnt = int(self._pdp_count[i])
        pdp = self._pdp_sum[i] / cnt if cnt else math.nan
        for rra in self.rras:
            rra.push_pdp_one(i, pdp, cur)
        missing = step - cur - 1
        if missing > 0:
            for rra in self.rras:
                rra.push_fill_one(i, self._fill_value, missing, cur + 1)
        self._cur_step[i] = step
        self._pdp_sum[i] = 0.0
        self._pdp_count[i] = 0

    def update_one(self, i: int, t: float, value: Optional[float]) -> None:
        """Scalar update for one series (mixed-path routing)."""
        last = self._last_t[i]
        if not math.isnan(last) and t < last:
            raise ValueError(f"out-of-order update: {t} < last {float(last)}")
        self._last_t[i] = t
        self._updates[i] += 1
        step = int(t // self.step)
        if not self._started[i]:
            self._started[i] = True
            self._cur_step[i] = step
        elif step > self._cur_step[i]:
            self._advance_one(i, step)
        if value is not None and not (
            isinstance(value, float) and math.isnan(value)
        ):
            self._pdp_sum[i] += float(value)
            self._pdp_count[i] += 1

    def flush_one(self, i: int, now: float) -> None:
        """Close out steps up to ``now`` (mirror of ``RrdDatabase.flush``)."""
        if not self._started[i]:
            return
        if int(now // self.step) > self._cur_step[i]:
            self.update_one(i, now, None)

    # -- reading -------------------------------------------------------------

    def updates_of(self, i: int) -> int:
        return int(self._updates[i])

    def last_update_time_of(self, i: int) -> Optional[float]:
        t = float(self._last_t[i])
        return None if math.isnan(t) else t

    def _best_rra_for(self, i: int, span_steps: int) -> _BankRra:
        by_resolution = sorted(self.rras, key=lambda r: r.pdp_per_row)
        for rra in by_resolution:
            if rra.coverage_steps_one(i) >= span_steps:
                return rra
        return max(by_resolution, key=lambda r: r.coverage_steps_one(i))

    def fetch(
        self, i: int, start: float, end: float
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Mirror of ``RrdDatabase.fetch`` for one series."""
        if end < start:
            raise ValueError("end must be >= start")
        span_steps = max(1, int(math.ceil((end - start) / self.step)))
        rra = self._best_rra_for(i, span_steps)
        times: List[float] = []
        values: List[float] = []
        for end_step, value in rra.rows_with_end_steps_one(i):
            t = end_step * self.step
            if start < t <= end:
                times.append(t)
                values.append(value)
        return (
            np.asarray(times),
            np.asarray(values),
            rra.pdp_per_row * self.step,
        )

    def latest(self, i: int) -> Optional[float]:
        """Most recent finalized full-resolution row value (may be NaN)."""
        finest = min(self.rras, key=lambda r: r.pdp_per_row)
        rows = finest.rows_with_end_steps_one(i)
        return float(rows[-1][1]) if rows else None

    def window_matrix(
        self, k: int
    ) -> Tuple[np.ndarray, np.ndarray, float, np.ndarray]:
        """The last ``k`` finest-resolution rows of every series, time-major.

        Returns ``(values, counts, row_seconds, last_end_steps)``:

        - ``values`` is ``(k, size)``; row ``k-1`` is each series'
          newest closed row, earlier rows walk back one row period at a
          time.  Slots a series has not written are NaN.
        - ``counts[i]`` is how many of the ``k`` rows are real for
          series ``i``.
        - ``row_seconds`` is the row period (finest ``pdp_per_row`` x
          step), shared by every series in the bank.
        - ``last_end_steps[i]`` is the absolute end step of series
          ``i``'s newest row (-1 when it has no closed rows); the row
          at position ``j`` ends at ``(last_end_steps[i] - (k-1-j) *
          pdp_per_row) * step`` seconds.

        This is the analytics stage's whole-bank readout: one fancy-
        indexed gather regardless of how many series the bank holds, the
        vectorized twin of calling :meth:`_BankRra.rows_with_end_steps_one`
        per series (the differential test pins the equivalence).  Rows
        are aligned per series to its own newest row -- a straggler's
        window simply ends earlier, which per-series trend/anomaly
        kernels are indifferent to.
        """
        if k <= 0:
            raise ValueError("window size must be positive")
        finest = min(self.rras, key=lambda r: r.pdp_per_row)
        n = self.size
        ppr = finest.pdp_per_row
        row_seconds = ppr * self.step
        values = np.full((k, n), np.nan)
        counts = np.zeros(n, dtype=np.int64)
        last_end = finest.last_row_end[:n].copy()
        if n == 0:
            return values, counts, row_seconds, last_end
        have = last_end >= 0
        counts[have] = np.minimum(
            finest.rows_written[:n][have], min(finest.rows, k)
        )
        last_pos = last_end // ppr - 1  # junk where have is False
        offsets = np.arange(k - 1, -1, -1)  # back-offsets per output row
        pos = (last_pos[None, :] - offsets[:, None]) % finest.rows
        gathered = finest.values[pos, np.arange(n)[None, :]]
        valid = offsets[:, None] < counts[None, :]
        values[valid] = gathered[valid]
        return values, counts, row_seconds, last_end
