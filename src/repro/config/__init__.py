"""Configuration-file front end: real Ganglia config syntax.

Deployments describe monitors in ``gmetad.conf`` ("We manually
configure the unidirectional trust edges", §2) and clusters in
``gmond.conf``.  This package parses the relevant subset of both
formats into this library's config objects, so an existing Ganglia
site's files drive the simulation directly:

- :func:`~repro.config.gmetadconf.parse_gmetad_conf` -- ``data_source``
  lines with redundant endpoints and per-source polling intervals,
  ``gridname``, ``authority``, ``scalability`` (``off`` selects the
  1-level design, exactly like Ganglia 2.5's flag);
- :func:`~repro.config.gmondconf.parse_gmond_conf` -- cluster identity,
  multicast channel, heartbeat/host timeout knobs.
"""

from repro.config.gmetadconf import ConfigError, ParsedGmetadConf, parse_gmetad_conf
from repro.config.gmondconf import parse_gmond_conf

__all__ = [
    "ConfigError",
    "ParsedGmetadConf",
    "parse_gmetad_conf",
    "parse_gmond_conf",
]
