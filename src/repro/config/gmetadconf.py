"""Parser for the gmetad.conf format (Ganglia 2.5 syntax).

Recognized directives::

    # comments and blank lines
    data_source "my cluster" [poll_interval] host[:port] [host[:port] ...]
    gridname "MyGrid"
    authority "http://hostname/ganglia/"
    xml_port 8651
    scalability on|off          # off selects the 1-level design
    trusted_hosts host1 host2 ...
    rrd_rootdir "/var/lib/ganglia/rrds"
    analytics on|off            # streaming analytics stage (default off)

``data_source`` follows the real daemon's convention: the optional
second token is the polling interval in seconds (default 15); each
remaining token is a redundant endpoint for fail-over, defaulting to
port 8649.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analytics.config import AnalyticsConfig
from repro.core.tree import DataSourceConfig, GmetadConfig
from repro.net.address import GMOND_XML_PORT, Address


class ConfigError(ValueError):
    """Malformed configuration file."""

    def __init__(self, message: str, line_number: int = 0) -> None:
        if line_number:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


@dataclass
class ParsedGmetadConf:
    """Everything a gmetad.conf can express, plus what we map it to."""

    gridname: str = "unspecified"
    authority: Optional[str] = None
    xml_port: int = 8651
    scalability: bool = True  # True -> N-level, False -> 1-level
    analytics: bool = False   # streaming analytics + predictive alerting
    trusted_hosts: List[str] = field(default_factory=list)
    rrd_rootdir: str = "/var/lib/ganglia/rrds"
    data_sources: List[DataSourceConfig] = field(default_factory=list)

    def to_gmetad_config(self, host: str, archive_mode: str = "full") -> GmetadConfig:
        """Materialize as a :class:`GmetadConfig` running on ``host``."""
        config = GmetadConfig(
            name=self.gridname,
            host=host,
            gridname=self.gridname,
            authority_url=self.authority,
            archive_mode=archive_mode,
        )
        config.data_sources = list(self.data_sources)
        if self.analytics:
            config.analytics = AnalyticsConfig()
        return config

    @property
    def design(self) -> str:
        """Which gmetad design the scalability flag selects."""
        return "nlevel" if self.scalability else "1level"


def _parse_endpoint(token: str, line_number: int) -> Address:
    host, _, port_text = token.partition(":")
    if not host:
        raise ConfigError(f"empty host in endpoint {token!r}", line_number)
    if port_text:
        try:
            port = int(port_text)
        except ValueError:
            raise ConfigError(
                f"bad port in endpoint {token!r}", line_number
            ) from None
    else:
        port = GMOND_XML_PORT
    try:
        return Address(host, port)
    except ValueError as exc:
        raise ConfigError(str(exc), line_number) from None


def _parse_data_source(tokens: List[str], line_number: int) -> DataSourceConfig:
    if len(tokens) < 2:
        raise ConfigError("data_source needs a name and endpoints", line_number)
    name = tokens[1]
    rest = tokens[2:]
    poll_interval = 15.0
    if rest and rest[0].replace(".", "", 1).isdigit():
        poll_interval = float(rest[0])
        rest = rest[1:]
    if not rest:
        raise ConfigError(
            f"data_source {name!r} lists no endpoints", line_number
        )
    addresses = [_parse_endpoint(token, line_number) for token in rest]
    try:
        return DataSourceConfig(
            name=name,
            addresses=addresses,
            poll_interval=poll_interval,
            timeout=min(10.0, poll_interval * 0.66),
        )
    except ValueError as exc:
        raise ConfigError(str(exc), line_number) from None


def parse_gmetad_conf(text: str) -> ParsedGmetadConf:
    """Parse gmetad.conf text into a :class:`ParsedGmetadConf`."""
    parsed = ParsedGmetadConf()
    seen_sources = set()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            tokens = shlex.split(line, comments=True)
        except ValueError as exc:
            raise ConfigError(f"unparseable line: {exc}", line_number) from None
        if not tokens:
            continue
        directive = tokens[0]
        if directive == "data_source":
            source = _parse_data_source(tokens, line_number)
            if source.name in seen_sources:
                raise ConfigError(
                    f"duplicate data_source {source.name!r}", line_number
                )
            seen_sources.add(source.name)
            parsed.data_sources.append(source)
        elif directive == "gridname":
            if len(tokens) != 2:
                raise ConfigError("gridname takes one value", line_number)
            parsed.gridname = tokens[1]
        elif directive == "authority":
            if len(tokens) != 2:
                raise ConfigError("authority takes one value", line_number)
            parsed.authority = tokens[1]
        elif directive == "xml_port":
            try:
                parsed.xml_port = int(tokens[1])
            except (IndexError, ValueError):
                raise ConfigError("xml_port takes an integer", line_number) from None
        elif directive == "scalability":
            if len(tokens) != 2 or tokens[1] not in ("on", "off"):
                raise ConfigError("scalability takes on|off", line_number)
            parsed.scalability = tokens[1] == "on"
        elif directive == "analytics":
            if len(tokens) != 2 or tokens[1] not in ("on", "off"):
                raise ConfigError("analytics takes on|off", line_number)
            parsed.analytics = tokens[1] == "on"
        elif directive == "trusted_hosts":
            parsed.trusted_hosts.extend(tokens[1:])
        elif directive == "rrd_rootdir":
            if len(tokens) != 2:
                raise ConfigError("rrd_rootdir takes one value", line_number)
            parsed.rrd_rootdir = tokens[1]
        else:
            raise ConfigError(f"unknown directive {directive!r}", line_number)
    return parsed
