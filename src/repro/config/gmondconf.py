"""Parser for the gmond.conf format (Ganglia 2.5 flat syntax).

Ganglia 2.5's gmond.conf is a flat ``key  value`` file (the nested
block syntax arrived in 3.x).  Recognized keys::

    name            "Meteor Cluster"
    owner           "SDSC"
    url             "http://meteor.sdsc.edu/"
    mcast_channel   239.2.11.71
    mcast_port      8649
    host_dmax       3600        # seconds; 0 = never forget a host
    heartbeat       20          # our extension: heartbeat interval
    send_jitter     0.1         # our extension
"""

from __future__ import annotations

import shlex

from repro.config.gmetadconf import ConfigError
from repro.gmond.config import GmondConfig

_STRING_KEYS = {"name", "owner", "url", "mcast_channel"}
_FLOAT_KEYS = {"host_dmax", "heartbeat", "send_jitter", "mcast_port"}


def parse_gmond_conf(text: str) -> GmondConfig:
    """Parse gmond.conf text into a :class:`GmondConfig`."""
    values: dict = {}
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            tokens = shlex.split(line, comments=True)
        except ValueError as exc:
            raise ConfigError(f"unparseable line: {exc}", line_number) from None
        if not tokens:
            continue
        if len(tokens) != 2:
            raise ConfigError(
                f"expected 'key value', got {line!r}", line_number
            )
        key, value = tokens
        if key in _STRING_KEYS:
            values[key] = value
        elif key in _FLOAT_KEYS:
            try:
                values[key] = float(value)
            except ValueError:
                raise ConfigError(
                    f"{key} takes a number, got {value!r}", line_number
                ) from None
        else:
            raise ConfigError(f"unknown key {key!r}", line_number)
    if "name" not in values:
        raise ConfigError("gmond.conf must set a cluster name")
    group = values.get("mcast_channel", "239.2.11.71")
    port = int(values.get("mcast_port", 8649))
    try:
        return GmondConfig(
            cluster_name=values["name"],
            owner=values.get("owner", "unspecified"),
            url=values.get("url", ""),
            multicast_group=f"{group}:{port}",
            heartbeat_interval=values.get("heartbeat", 20.0),
            heartbeat_window=values.get("heartbeat", 20.0) * 4,
            host_dmax=values.get("host_dmax", 0.0),
            send_jitter=values.get("send_jitter", 0.1),
        )
    except ValueError as exc:
        raise ConfigError(str(exc)) from None
