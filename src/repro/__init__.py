"""repro: a full reproduction of *Wide Area Cluster Monitoring with
Ganglia* (Sacerdoti, Katz, Massie, Culler -- CLUSTER 2003).

The package implements both halves of Ganglia -- the gmond local-area
monitor and the gmetad wide-area monitor -- plus every substrate the
paper's evaluation depends on (simulated UDP multicast and TCP, an
RRD-style time-series database, pseudo-gmond workload emulators, a web
frontend cost model), all running on a deterministic discrete-event
simulation.

Quick start::

    from repro import build_paper_tree

    federation = build_paper_tree("nlevel", hosts_per_cluster=50)
    federation.start()
    federation.engine.run_for(120.0)
    xml, _ = federation.gmetad("root").serve_query("/?filter=summary")

Layout:

- :mod:`repro.sim` -- event engine, RNG streams, CPU accounting
- :mod:`repro.net` -- simulated UDP multicast / TCP / topology faults
- :mod:`repro.metrics` -- metric catalog and host workload models
- :mod:`repro.wire` -- the Ganglia XML language (model/writer/parser)
- :mod:`repro.gmond` -- local-area monitor agents and pseudo-gmond
- :mod:`repro.rrd` -- round-robin time-series databases
- :mod:`repro.core` -- gmetad: 1-level baseline, N-level design,
  query engines, alarms, self-organizing tree
- :mod:`repro.frontend` -- web-frontend emulation (Table 1)
- :mod:`repro.faults` -- failure injection
- :mod:`repro.obs` -- self-observability: metrics registry, trace
  spans, the in-band ``__gmetad__`` cluster, drift auditor
- :mod:`repro.pubsub` -- push delivery: delta-encoded publish-subscribe
- :mod:`repro.bench` -- experiment drivers for every figure and table
"""

from repro.bench.experiments import (
    run_figure5,
    run_figure6,
    run_pubsub_comparison,
    run_table1,
)
from repro.analysis.availability import FederationProbe, SoakReport
from repro.bench.topology import Federation, build_paper_tree
from repro.core.gmetad import Gmetad
from repro.core.resilience import Overloaded, ResilienceConfig
from repro.obs import Observability, ObservabilityConfig
from repro.faults.injector import FaultInjector
from repro.faults.schedules import FaultEvent, FaultSchedule
from repro.core.gmetad_1level import OneLevelGmetad
from repro.core.query import GmetadQuery
from repro.core.tree import DataSourceConfig, GmetadConfig, MonitorTree
from repro.frontend.viewer import PushFrontend, WebFrontend
from repro.pubsub.broker import PubSubBroker
from repro.pubsub.client import PushClient
from repro.gmond.cluster import SimulatedCluster
from repro.gmond.pseudo import PseudoGmond
from repro.net.address import Address
from repro.net.fabric import Fabric
from repro.net.tcp import TcpNetwork
from repro.rrd.database import RrdDatabase
from repro.sim.engine import Engine
from repro.sim.resources import CostModel
from repro.sim.rng import RngRegistry
from repro.storage import StorageTier, StorageTierConfig, StorageUnavailable

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Engine",
    "RngRegistry",
    "CostModel",
    "Address",
    "Fabric",
    "TcpNetwork",
    "SimulatedCluster",
    "PseudoGmond",
    "RrdDatabase",
    "Gmetad",
    "OneLevelGmetad",
    "GmetadQuery",
    "GmetadConfig",
    "DataSourceConfig",
    "MonitorTree",
    "WebFrontend",
    "PushFrontend",
    "PubSubBroker",
    "PushClient",
    "ResilienceConfig",
    "Overloaded",
    "Observability",
    "ObservabilityConfig",
    "FaultInjector",
    "FaultSchedule",
    "FaultEvent",
    "StorageTier",
    "StorageTierConfig",
    "StorageUnavailable",
    "FederationProbe",
    "SoakReport",
    "Federation",
    "build_paper_tree",
    "run_figure5",
    "run_figure6",
    "run_pubsub_comparison",
    "run_table1",
]
