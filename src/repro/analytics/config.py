"""Analytics knobs (one block per gmetad, default: fully off).

Attached via ``GmetadConfig(analytics=AnalyticsConfig(...))``.  ``None``
-- the default everywhere, including every paper-figure runner --
compiles the whole stage out: no flush hook is registered, no
``__analytics__`` source exists, and served output stays byte-identical
to the ungated daemon (the equivalence suite pins this, like every
prior feature gate).
"""

from __future__ import annotations

from dataclasses import dataclass

#: The synthetic data-source name analytics signals are mounted under.
#: Same double-underscore convention as ``__gmetad__`` (repro.obs).
ANALYTICS_SOURCE = "__analytics__"


@dataclass
class AnalyticsConfig:
    """Configuration for the streaming analytics stage (``repro.analytics``)."""

    enabled: bool = True
    #: how many finest-resolution archive rows each pass reads (the
    #: trend/anomaly window; bounded so a pass is O(window x series))
    window_rows: int = 16
    #: EWMA smoothing factor for the anomaly baseline (0 < alpha <= 1)
    ewma_alpha: float = 0.25
    #: rows required before a series reports a slope or z-score;
    #: fewer and the kernels return NaN (alarm rules then skip it)
    min_points: int = 4
    #: |z| at or above this counts as an anomaly in the published
    #: ``analytics_anomalies`` gauge (rule thresholds are independent)
    anomaly_z: float = 4.0
    #: minimum seconds between analytics passes (0 = every distinct
    #: flush timestamp; passes within one timestamp always coalesce)
    cadence: float = 0.0
    #: publish the ``__analytics__`` in-band cluster (off leaves the
    #: readings query-able by alarm rules but out of the datastore)
    publish: bool = True
    #: minimum seconds between ``__analytics__`` publishes
    publish_interval: float = 15.0
    #: z-score denominator floor: ``max(std, abs + rel * |mean|)`` --
    #: keeps near-constant series from alarming on float dust
    z_floor_abs: float = 1e-6
    z_floor_rel: float = 0.05

    def __post_init__(self) -> None:
        if self.window_rows < 2:
            raise ValueError("window_rows must be >= 2")
        if not (0.0 < self.ewma_alpha <= 1.0):
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.min_points < 2:
            raise ValueError("min_points must be >= 2")
        if self.anomaly_z <= 0:
            raise ValueError("anomaly_z must be positive")
        if self.cadence < 0:
            raise ValueError("cadence must be non-negative")
        if self.publish_interval < 0:
            raise ValueError("publish_interval must be non-negative")
        if self.z_floor_abs < 0 or self.z_floor_rel < 0:
            raise ValueError("z-score floors must be non-negative")
