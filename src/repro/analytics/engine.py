"""The analytics stage bound to one gmetad daemon.

One :class:`AnalyticsEngine` per gated daemon hooks the archiver's
flush notification and, at most once per flush timestamp (plus an
optional cadence), recomputes trend and anomaly signals for *every*
archived series in one vectorized pass:

- the window readout is :meth:`SeriesBank.window_matrix` -- a single
  fancy-indexed gather over the bank's 2-D ring arrays when the
  columnar path owns the series, with a scalar per-series fallback for
  stores that keep classic databases (or the storage tier's failover
  fetch surface);
- the kernels (:mod:`repro.analytics.kernels`) are whole-matrix column
  ops: least-squares slope, EWMA mean/variance, anomaly z-score.

Readings feed the predictive rule kinds in :mod:`repro.core.alarms`
through :meth:`reading`, and a compact signal summary is published as
an in-band ``__analytics__`` cluster through the same pipeline the
``__gmetad__`` self-cluster uses -- so frontends, pub-sub subscribers,
read replicas and the binary codec serve analytics for free.

Charging policy mirrors ``repro.obs``: computing readings charges the
daemon's CPU account (``analytics_series`` work units per series per
pass, category "analytics"), and publishing the signal cluster pays the
full summarize/archive price like any other source.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.analytics.config import ANALYTICS_SOURCE, AnalyticsConfig
from repro.analytics.kernels import ewma_zscore, latest_values, rolling_slope
from repro.metrics.catalog import Slope
from repro.metrics.types import MetricType
from repro.rrd.store import MetricKey
from repro.wire.model import ClusterElement, HostElement, MetricElement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.gmetad_base import GmetadBase

#: SOURCE attribute on published analytics metric elements
ANALYTICS_METRIC_SOURCE = "gmetad-analytics"


@dataclass(frozen=True)
class SeriesReading:
    """The analytics signals for one archived series, one pass."""

    latest: float        # newest closed archive row (NaN: none)
    slope: float         # fitted trend, units/second (NaN: too few rows)
    zscore: float        # newest row vs EWMA baseline (NaN: too few rows)
    row_seconds: float   # archive row period the signals were fit over
    end_time: float      # timestamp of the newest closed row


class AnalyticsEngine:
    """Vectorized trend/anomaly readings for one gmetad's archives."""

    def __init__(self, gmetad: "GmetadBase", config: AnalyticsConfig) -> None:
        self.gmetad = gmetad
        self.config = config
        self.passes = 0
        self.series_analyzed = 0
        self.anomalies = 0  # |z| >= config.anomaly_z in the latest pass
        self._last_pass_t = -math.inf
        self._last_publish_t = -math.inf
        self._installing = False
        self._keys: List[MetricKey] = []
        self._index: Dict[MetricKey, int] = {}
        self._latest = np.zeros(0)
        self._slope = np.zeros(0)
        self._zscore = np.zeros(0)
        self._row_seconds = gmetad.archiver.store.step if hasattr(
            gmetad.archiver.store, "step"
        ) else 15.0
        self._end_times = np.zeros(0)
        gmetad.archiver.on_flush = self._on_flush

    # -- flush-driven recompute ---------------------------------------------

    def _on_flush(self, source: str, t: float) -> None:
        if self._installing or source == ANALYTICS_SOURCE:
            return
        if t <= self._last_pass_t:
            return  # coalesce: detail + summary flushes share a timestamp
        if t - self._last_pass_t < self.config.cadence:
            return
        self.recompute(t)
        if (
            self.config.publish
            and t - self._last_publish_t >= self.config.publish_interval
        ):
            self.publish(t)

    def recompute(self, t: float) -> None:
        """One analytics pass over every archived series."""
        self._last_pass_t = t
        store = self.gmetad.archiver.store
        if getattr(store, "mode", "full") == "account":
            return  # accounting stores keep no history to analyze
        values = counts = None
        keys: List[MetricKey] = []
        bank_series = getattr(store, "bank_series", None)
        if bank_series is not None:
            bank, keys = bank_series()
            if bank is not None and bank.size:
                values, counts, row_seconds, last_end = bank.window_matrix(
                    self.config.window_rows
                )
                end_times = last_end.astype(float) * bank.step
        if values is None:
            values, keys, row_seconds, end_times = self._scalar_window(store, t)
        if not keys:
            return
        cfg = self.config
        self._keys = keys
        self._latest = latest_values(values)
        self._slope = rolling_slope(values, row_seconds, cfg.min_points)
        self._zscore = ewma_zscore(
            values, cfg.ewma_alpha, cfg.min_points,
            floor_abs=cfg.z_floor_abs, floor_rel=cfg.z_floor_rel,
        )
        self._row_seconds = row_seconds
        self._end_times = end_times
        self._index = {}  # rebuilt lazily on first lookup
        self.passes += 1
        self.series_analyzed = len(keys)
        with np.errstate(invalid="ignore"):
            self.anomalies = int(
                np.count_nonzero(np.abs(self._zscore) >= cfg.anomaly_z)
            )
        self.gmetad.charge(
            len(keys) * self.gmetad.costs.analytics_series, "analytics"
        )

    def _scalar_window(self, store, t: float):
        """Window matrix for stores without a bank (per-series fetch).

        The slow path -- classic scalar databases and the storage tier's
        failover fetch surface.  Each series' last ``window_rows`` rows
        are right-aligned into the matrix, so the kernels are identical
        either way.
        """
        k = self.config.window_rows
        keys = [
            key for key in store.keys() if key.source != ANALYTICS_SOURCE
        ]
        if not keys:
            return None, [], self._row_seconds, np.zeros(0)
        row_seconds = getattr(store, "step", 15.0)
        values = np.full((k, len(keys)), np.nan)
        end_times = np.full(len(keys), -row_seconds)
        for i, key in enumerate(keys):
            try:
                times, vals, series_row_seconds = store.fetch_series(
                    key, t - (k + 1) * row_seconds, t
                )
            except KeyError:
                continue
            if len(vals) == 0:
                continue
            row_seconds = series_row_seconds
            tail = min(k, len(vals))
            values[k - tail:, i] = vals[-tail:]
            end_times[i] = times[-1]
        return values, keys, row_seconds, end_times

    # -- reading access (alarm rules) ----------------------------------------

    def reading(
        self, source: str, host: str, metric: str
    ) -> Optional[SeriesReading]:
        """The latest signals for one (source, host, metric), or None."""
        if not self._keys:
            return None
        if not self._index:
            self._index = {key: i for i, key in enumerate(self._keys)}
        snapshot = self.gmetad.datastore.source(source)
        cluster = (
            snapshot.cluster.name
            if snapshot is not None and snapshot.cluster is not None
            else source
        )
        i = self._index.get(MetricKey(source, cluster, host, metric))
        if i is None:
            return None
        return SeriesReading(
            latest=float(self._latest[i]),
            slope=float(self._slope[i]),
            zscore=float(self._zscore[i]),
            row_seconds=float(self._row_seconds),
            end_time=float(self._end_times[i]),
        )

    # -- in-band publication -------------------------------------------------

    def signals(self) -> Dict[str, float]:
        """The published signal set as plain name -> value."""
        finite_slope = self._slope[~np.isnan(self._slope)]
        finite_z = self._zscore[~np.isnan(self._zscore)]
        return {
            "analytics_anomalies": float(self.anomalies),
            "analytics_max_abs_z": (
                float(np.max(np.abs(finite_z))) if finite_z.size else 0.0
            ),
            "analytics_max_slope": (
                float(np.max(finite_slope)) if finite_slope.size else 0.0
            ),
            "analytics_passes": float(self.passes),
            "analytics_rising": float(np.count_nonzero(finite_slope > 0.0)),
            "analytics_series": float(self.series_analyzed),
        }

    def build_cluster(self, now: float) -> ClusterElement:
        """Render the signal set as a full-form ``__analytics__`` cluster."""
        interval = max(self.config.publish_interval, 1.0)
        cluster = ClusterElement(name=ANALYTICS_SOURCE, localtime=now)
        host = HostElement(
            name=self.gmetad.config.host,
            reported=now,
            tn=0.0,
            tmax=interval * 4.0,
        )
        for name, value in sorted(self.signals().items()):
            host.add_metric(
                MetricElement(
                    name=name,
                    val=f"{value:.6f}".rstrip("0").rstrip("."),
                    mtype=MetricType.DOUBLE,
                    tn=0.0,
                    tmax=interval * 4.0,
                    slope=Slope.BOTH,
                    source=ANALYTICS_METRIC_SOURCE,
                )
            )
        cluster.add_host(host)
        return cluster

    def publish(self, now: float) -> None:
        """Install the signal cluster in band and notify subscribers.

        Archiving the signal series re-enters the flush hook; the
        ``_installing`` guard keeps the stage from analyzing itself
        mid-pass (its series are also excluded from scalar readouts).
        """
        from repro.obs.selfcluster import install_inband_cluster

        self._last_publish_t = now
        cluster = self.build_cluster(now)
        self._installing = True
        try:
            install_inband_cluster(self.gmetad, ANALYTICS_SOURCE, cluster, now)
        finally:
            self._installing = False
        self.gmetad._publish(ANALYTICS_SOURCE, now)
