"""Fault-schedule replay: predictive vs static alerting, measured.

One gmetad polls one scripted pseudo-gmond while a schedule of faults
plays out -- load ramps (the thing prediction should beat thresholds
on), host flaps (the thing prediction must *not* page on) and an
optional storage-node kill (the analytics stage must keep producing
readings through the tier's failover fetch surface).

Two :class:`~repro.core.alarms.AlarmEngine` instances watch the same
daemon: a *static* engine with the classic threshold rule
(``load_one > 5``) and a *predictive* engine with the analytics-backed
rule kinds (``predict_cross`` within a horizon, ``anomaly`` z-score).
For every ramp the replay records when each engine first fired; the
difference is the detection lead time.  Predictive fires that land
outside every fault window are false positives, rated against the
total number of (evaluation pass, host) windows.

``benchmarks/test_analytics_alerting.py`` commits these numbers as
``BENCH_analytics.json``; ``repro-sim analytics`` prints them.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analytics.config import AnalyticsConfig
from repro.core.alarms import AlarmEngine, AlarmRule, predictive_rules
from repro.core.gmetad import Gmetad
from repro.core.tree import GmetadConfig
from repro.faults.injector import FaultInjector
from repro.gmond.pseudo import PseudoGmond
from repro.net.fabric import Fabric
from repro.net.tcp import TcpNetwork
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.storage.config import StorageTierConfig

#: extra seconds after a fault window in which fires still count as
#: caused by the fault (archive rows and hold timers trail the input)
FAULT_MARGIN = 60.0


@dataclass(frozen=True)
class Ramp:
    """A linear load ramp on one emulated host."""

    host: int
    start: float
    end: float
    peak: float  # load_one value reached at ``end``


@dataclass(frozen=True)
class Flap:
    """One emulated host silent from ``start`` to ``end``."""

    host: int
    start: float
    end: float


@dataclass
class ReplaySchedule:
    """The scripted scenario one replay runs."""

    hosts: int = 8
    duration: float = 900.0
    tick: float = 15.0
    ramps: List[Ramp] = field(default_factory=list)
    flaps: List[Flap] = field(default_factory=list)
    #: (node, start, duration): fail-stop one storage node (needs
    #: ``storage=True`` on the replay; ignored otherwise)
    storage_kill: Optional[tuple] = None
    #: (start, duration, factor): run the gmetad<->gmond link at
    #: ``factor`` of nominal bandwidth for a stretch of the replay
    degrade: Optional[tuple] = None


def default_schedule(
    hosts: int = 8, duration: float = 900.0, storage: bool = False
) -> ReplaySchedule:
    """The standard scenario: three ramps, two flaps, optional kill.

    Fault targets are spread over the cluster (indices scale with the
    host count) and clipped to ``duration`` so a short smoke replay
    still exercises at least one ramp and one flap.
    """
    ramp_hosts = sorted({0 % hosts, 3 % hosts, 5 % hosts})
    flap_hosts = [i for i in range(hosts) if i not in ramp_hosts][:2]
    ramps = [
        Ramp(host=ramp_hosts[0], start=120.0, end=420.0, peak=8.5),
        Ramp(host=ramp_hosts[len(ramp_hosts) // 2],
             start=300.0, end=600.0, peak=9.0),
        Ramp(host=ramp_hosts[-1], start=450.0, end=780.0, peak=8.0),
    ]
    flaps = [
        Flap(host=host, start=180.0 + 320.0 * i, end=360.0 + 320.0 * i)
        for i, host in enumerate(flap_hosts)
    ]
    schedule = ReplaySchedule(
        hosts=hosts,
        duration=duration,
        ramps=[r for r in ramps if r.end + FAULT_MARGIN <= duration],
        flaps=[f for f in flaps if f.end <= duration],
    )
    if storage:
        schedule.storage_kill = ("st01", 240.0, 300.0)
    return schedule


@dataclass
class RampOutcome:
    """When each engine first noticed one ramp."""

    host: int
    start: float
    end: float
    static_fire: Optional[float] = None
    predictive_fire: Optional[float] = None

    @property
    def lead(self) -> Optional[float]:
        """Static fire time minus predictive fire time (None: no pair)."""
        if self.static_fire is None or self.predictive_fire is None:
            return None
        return self.static_fire - self.predictive_fire


@dataclass
class ReplayResult:
    """Everything one replay measured."""

    hosts: int
    duration: float
    storage: bool
    ramps: List[RampOutcome]
    static_fires: int
    predictive_fires: int
    false_positives: int
    evaluation_windows: int
    analytics_passes: int
    analytics_series: int
    notifications: List[str]

    @property
    def leads(self) -> List[float]:
        return [r.lead for r in self.ramps if r.lead is not None]

    @property
    def median_lead(self) -> float:
        return statistics.median(self.leads) if self.leads else 0.0

    @property
    def fp_rate(self) -> float:
        if self.evaluation_windows == 0:
            return 0.0
        return self.false_positives / self.evaluation_windows

    def to_dict(self) -> Dict:
        """JSON-ready summary (what the benchmark commits)."""
        return {
            "hosts": self.hosts,
            "duration_seconds": self.duration,
            "storage_tier": self.storage,
            "ramps": [
                {
                    "host": r.host,
                    "start": r.start,
                    "end": r.end,
                    "static_fire": r.static_fire,
                    "predictive_fire": r.predictive_fire,
                    "lead_seconds": r.lead,
                }
                for r in self.ramps
            ],
            "median_lead_seconds": self.median_lead,
            "static_fires": self.static_fires,
            "predictive_fires": self.predictive_fires,
            "false_positives": self.false_positives,
            "evaluation_windows": self.evaluation_windows,
            "fp_rate": self.fp_rate,
            "analytics_passes": self.analytics_passes,
            "analytics_series": self.analytics_series,
        }


def run_replay(
    schedule: Optional[ReplaySchedule] = None,
    seed: int = 1234,
    storage: bool = False,
    window_rows: int = 8,
    load_threshold: float = 5.0,
    horizon: float = 120.0,
    anomaly_z: float = 4.0,
) -> ReplayResult:
    """Run one fault-schedule replay and measure both alarm engines.

    ``storage=True`` swaps the archiver for a 4-node replicated storage
    tier (scalar analytics fallback through the failover fetch surface)
    and arms the schedule's storage kill; the default runs the columnar
    bank path the vectorized kernels were built for.
    """
    schedule = schedule or default_schedule(storage=storage)
    engine = Engine()
    fabric = Fabric()
    rngs = RngRegistry(seed)
    tcp = TcpNetwork(engine, fabric, rng=rngs.stream("tcp.gray"))
    walk_rng = rngs.stream("replay.walk")

    pseudo = PseudoGmond(
        engine,
        fabric,
        tcp,
        "replay-c0",
        schedule.hosts,
        rngs.stream("pseudo:replay-c0"),
        refresh_interval=float("inf"),  # the driver scripts all churn
    )
    config = GmetadConfig(
        name="replay",
        host="gmeta-replay",
        archive_mode="full",
        incremental=True,
        columnar=not storage,
        storage_tier=(
            StorageTierConfig(nodes=4, replication=2) if storage else None
        ),
        analytics=AnalyticsConfig(
            window_rows=window_rows, anomaly_z=anomaly_z,
            publish_interval=30.0,
        ),
    )
    config.add_source("replay-c0", [pseudo.address])
    gmetad = Gmetad(engine, fabric, tcp, config)

    static = AlarmEngine(gmetad, interval=schedule.tick)
    static.add_rule(
        AlarmRule(
            name="static-load",
            selector=r"~/.*/.*/load_one",
            op=">",
            threshold=load_threshold,
        )
    )
    predictive = AlarmEngine(gmetad, interval=schedule.tick)
    for rule in predictive_rules(
        load_threshold=load_threshold, horizon=horizon, anomaly_z=anomaly_z
    ):
        predictive.add_rule(rule)

    injector = FaultInjector(engine, fabric)
    if storage and schedule.storage_kill is not None:
        node, at, duration = schedule.storage_kill
        injector.register_storage_tier(gmetad.archiver.store)
        injector.kill_storage_node(node, at=at, duration=duration)
    if schedule.degrade is not None:
        at, duration, factor = schedule.degrade
        injector.degrade_links(
            [config.host], [pseudo.server_host], factor,
            at=at, duration=duration,
        )

    # -- the scripted workload driver ------------------------------------
    base = [walk_rng.uniform(0.6, 1.2) for _ in range(schedule.hosts)]

    def tick() -> None:
        now = engine.now
        for flap in schedule.flaps:
            if flap.start <= now < flap.start + schedule.tick:
                pseudo.set_host_down(flap.host, True)
            if flap.end <= now < flap.end + schedule.tick:
                pseudo.set_host_down(flap.host, False)
        updates: Dict[int, Dict[str, float]] = {}
        for i in range(schedule.hosts):
            if i in pseudo.down_hosts:
                continue
            base[i] = min(
                1.5, max(0.5, base[i] + walk_rng.uniform(-0.05, 0.05))
            )
            value = base[i]
            for ramp in schedule.ramps:
                if ramp.host == i and ramp.start <= now <= ramp.end:
                    frac = (now - ramp.start) / (ramp.end - ramp.start)
                    value = base[i] + frac * (ramp.peak - base[i])
            updates[i] = {"load_one": value}
        if updates:
            pseudo.set_metric_values(updates, now)
        down = sorted(pseudo.down_hosts)
        if down:
            pseudo.mutate(hosts=down, now=now)  # age their TN

    engine.every(schedule.tick, tick, initial_delay=1.0)

    gmetad.start()
    static.start()
    predictive.start()
    engine.run_for(schedule.duration)
    gmetad.stop()
    static.stop()
    predictive.stop()

    # -- measurement ------------------------------------------------------
    def subject(host_index: int) -> str:
        return f"/replay-c0/{pseudo.name}-0-{host_index}/load_one"

    outcomes = [
        RampOutcome(host=r.host, start=r.start, end=r.end)
        for r in schedule.ramps
    ]
    for n in static.notifications:
        if n.kind != "fire":
            continue
        for outcome in outcomes:
            if (
                n.subject == subject(outcome.host)
                and outcome.start <= n.time <= outcome.end + FAULT_MARGIN
                and outcome.static_fire is None
            ):
                outcome.static_fire = n.time

    # fault windows per host subject: a predictive fire inside one is a
    # true (or at least excusable) positive; anything else counts false
    windows: Dict[str, List[tuple]] = {}
    for r in schedule.ramps:
        windows.setdefault(subject(r.host), []).append(
            (r.start, r.end + FAULT_MARGIN)
        )
    for f in schedule.flaps:
        windows.setdefault(subject(f.host), []).append(
            (f.start, f.end + FAULT_MARGIN)
        )

    predictive_fires = 0
    false_positives = 0
    for n in predictive.notifications:
        if n.kind != "fire":
            continue
        predictive_fires += 1
        in_window = any(
            lo <= n.time <= hi for lo, hi in windows.get(n.subject, [])
        )
        if in_window:
            for outcome in outcomes:
                if (
                    n.subject == subject(outcome.host)
                    and outcome.start <= n.time <= outcome.end + FAULT_MARGIN
                    and outcome.predictive_fire is None
                ):
                    outcome.predictive_fire = n.time
        else:
            false_positives += 1

    analytics = gmetad.analytics
    return ReplayResult(
        hosts=schedule.hosts,
        duration=schedule.duration,
        storage=storage,
        ramps=outcomes,
        static_fires=sum(
            1 for n in static.notifications if n.kind == "fire"
        ),
        predictive_fires=predictive_fires,
        false_positives=false_positives,
        evaluation_windows=predictive.evaluations * schedule.hosts,
        analytics_passes=analytics.passes if analytics else 0,
        analytics_series=analytics.series_analyzed if analytics else 0,
        notifications=[
            n.render() for n in (*static.notifications, *predictive.notifications)
        ],
    )
