"""Vectorized analytics kernels over a time-major window matrix.

Every kernel takes the ``(k, n)`` matrix produced by
:meth:`repro.rrd.bank.SeriesBank.window_matrix` -- ``k`` archive rows
(oldest first) by ``n`` series -- and reduces it column-wise with whole-
bank numpy operations.  There is no per-series Python dispatch anywhere:
cost scales as array ops over the window, not as interpreter loops over
the series population.  NaN marks rows a series has not written (or
consolidated away under xff); all kernels mask it out per column.

``tests/test_analytics_kernels.py`` pins each kernel against a scalar
per-series reference implementation (the differential test).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def latest_values(values: np.ndarray) -> np.ndarray:
    """Each series' newest non-NaN row value (NaN when it has none)."""
    k, n = values.shape
    mask = ~np.isnan(values)
    # per column: offset (from the newest row) of the last valid row
    back = np.argmax(mask[::-1], axis=0)
    latest = values[k - 1 - back, np.arange(n)]
    latest[~mask.any(axis=0)] = np.nan
    return latest


def rolling_slope(
    values: np.ndarray, row_seconds: float, min_points: int
) -> np.ndarray:
    """Per-series least-squares slope over the window, in units/second.

    NaN rows are excluded per column; columns with fewer than
    ``min_points`` known rows (or no time spread) report NaN.  One
    masked moment computation across the whole matrix.
    """
    k, n = values.shape
    mask = ~np.isnan(values)
    x = np.arange(k, dtype=float)[:, None] * row_seconds
    y = np.where(mask, values, 0.0)
    cnt = mask.sum(axis=0)
    sx = (x * mask).sum(axis=0)
    sy = y.sum(axis=0)
    sxx = (x * x * mask).sum(axis=0)
    sxy = (x * y).sum(axis=0)
    denom = cnt * sxx - sx * sx
    slope = np.full(n, np.nan)
    ok = (cnt >= max(2, min_points)) & (denom > 0)
    slope[ok] = (cnt[ok] * sxy[ok] - sx[ok] * sy[ok]) / denom[ok]
    return slope


def ewma_mean_var(
    values: np.ndarray, alpha: float
) -> Tuple[np.ndarray, np.ndarray]:
    """EWMA mean and variance per series, walked oldest row to newest.

    The standard recurrences -- ``mean += alpha * d`` and
    ``var = (1 - alpha) * (var + alpha * d^2)`` -- seeded from each
    series' first known row.  The loop is over the (constant, small)
    window length; every iteration is a whole-row vector op.
    """
    k, n = values.shape
    mean = np.full(n, np.nan)
    var = np.zeros(n)
    for j in range(k):
        row = values[j]
        known = ~np.isnan(row)
        fresh = known & np.isnan(mean)
        mean[fresh] = row[fresh]
        upd = known & ~np.isnan(mean) & ~fresh
        d = row[upd] - mean[upd]
        incr = alpha * d
        mean[upd] += incr
        var[upd] = (1.0 - alpha) * (var[upd] + d * incr)
    return mean, var


def ewma_zscore(
    values: np.ndarray,
    alpha: float,
    min_points: int,
    floor_abs: float = 1e-6,
    floor_rel: float = 0.05,
) -> np.ndarray:
    """Anomaly z-score of each series' newest row vs its own history.

    The baseline is the EWMA mean/variance of rows ``0..k-2``; the
    newest row is scored against it, with the denominator floored at
    ``floor_abs + floor_rel * |mean|`` so a near-constant series does
    not alarm on float dust.  Columns with fewer than ``min_points``
    history rows (or a NaN newest row) report NaN.
    """
    if values.shape[0] < 2:
        return np.full(values.shape[1], np.nan)
    history = values[:-1]
    newest = values[-1]
    mean, var = ewma_mean_var(history, alpha)
    cnt = (~np.isnan(history)).sum(axis=0)
    std = np.sqrt(np.maximum(var, 0.0))
    z = np.full(values.shape[1], np.nan)
    ok = (cnt >= min_points) & ~np.isnan(newest) & ~np.isnan(mean)
    denom = np.maximum(std[ok], floor_abs + floor_rel * np.abs(mean[ok]))
    z[ok] = (newest[ok] - mean[ok]) / denom
    return z
