"""Streaming analytics + predictive alerting over the archive tier.

A vectorized stage that runs on :class:`~repro.rrd.bank.SeriesBank`'s
2-D ring arrays at each archive flush: rolling derivatives, EWMA
trend/anomaly z-scores and time-to-threshold prediction, feeding the
predictive rule kinds in :mod:`repro.core.alarms` and publishing its
own signals as an in-band ``__analytics__`` cluster.
"""

from repro.analytics.config import ANALYTICS_SOURCE, AnalyticsConfig
from repro.analytics.engine import AnalyticsEngine, SeriesReading

__all__ = [
    "ANALYTICS_SOURCE",
    "AnalyticsConfig",
    "AnalyticsEngine",
    "SeriesReading",
]
