"""Failure injection: stop failures, intermittent failures, partitions.

"Any monitoring system that operates over the wide-area must handle
remote failures" (§1).  The injector drives the same three failure modes
the paper's design addresses: node **stop** failures (gmetad fails over
to another gmond, Fig. 1), **intermittent** failures (periodic retry),
and **partitions** ("Even in cases of a complete partition with a
cluster, the monitor will attempt to re-establish contact at a steady
frequency").
"""

from repro.faults.injector import FaultInjector
from repro.faults.schedules import FaultEvent, FaultSchedule

__all__ = ["FaultInjector", "FaultEvent", "FaultSchedule"]
