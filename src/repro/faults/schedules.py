"""Declarative fault schedules, replayable against an injector.

Experiments describe failures as data so a run can be repeated exactly
(and so tests can assert against the schedule rather than ad-hoc
callbacks)::

    schedule = FaultSchedule([
        FaultEvent(at=120.0, action="crash", host="meteor-0-3", duration=60),
        FaultEvent(at=300.0, action="partition",
                   group_a=["gmeta-sdsc"], group_b=["pgmond-attic-c0"]),
    ])
    schedule.apply(injector)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.faults.injector import FaultInjector

_ACTIONS = (
    "crash",
    "recover",
    "flap",
    "partition",
    "corrupt",
    "degrade",
    "spike",
    "storage_kill",
    "storage_restart",
)
#: Actions that operate on the links between ``group_a`` and ``group_b``.
_GROUP_ACTIONS = ("partition", "corrupt", "degrade", "spike")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    The gray actions reuse the partition-style two-group addressing and
    add their own knobs: ``corrupt`` uses ``probability`` (and optional
    ``truncate_probability``), ``degrade`` uses ``factor`` (fraction of
    nominal bandwidth), ``spike`` uses ``magnitude`` seconds (and
    ``probability``, default 1.0 via 0.0 sentinel -- see apply).
    """

    at: float
    action: str
    host: str = ""
    duration: Optional[float] = None
    group_a: Sequence[str] = ()
    group_b: Sequence[str] = ()
    period: float = 60.0
    down_fraction: float = 0.5
    probability: float = 0.0
    truncate_probability: float = 0.0
    factor: float = 1.0
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if (
            self.action
            in ("crash", "recover", "flap", "storage_kill", "storage_restart")
            and not self.host
        ):
            raise ValueError(f"action {self.action!r} requires a host")
        if self.action in _GROUP_ACTIONS and not (
            self.group_a and self.group_b
        ):
            raise ValueError(f"{self.action} requires two host groups")
        if self.at < 0:
            raise ValueError("fault time must be non-negative")
        if self.action == "corrupt":
            if not (0.0 < self.probability <= 1.0) and not (
                0.0 < self.truncate_probability <= 1.0
            ):
                raise ValueError(
                    "corrupt requires probability or truncate_probability"
                    " in (0, 1]"
                )
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")
        if not (0.0 <= self.truncate_probability <= 1.0):
            raise ValueError("truncate_probability must be in [0, 1]")
        if self.action == "degrade" and not (0.0 < self.factor < 1.0):
            raise ValueError("degrade requires factor in (0, 1)")
        if self.action == "spike" and self.magnitude <= 0.0:
            raise ValueError("spike requires a positive magnitude")


@dataclass
class FaultSchedule:
    """An ordered collection of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Append one fault event; returns self for chaining."""
        self.events.append(event)
        return self

    def apply(self, injector: FaultInjector) -> None:
        """Arm every event on the injector's engine."""
        for event in sorted(self.events, key=lambda e: e.at):
            if event.action == "crash":
                injector.crash_host(event.host, event.at, event.duration)
            elif event.action == "recover":
                injector.recover_host(event.host, event.at)
            elif event.action == "flap":
                injector.flap_host(
                    event.host,
                    period=event.period,
                    down_fraction=event.down_fraction,
                    start=event.at,
                )
            elif event.action == "storage_kill":
                injector.kill_storage_node(
                    event.host, event.at, event.duration
                )
            elif event.action == "storage_restart":
                injector.restart_storage_node(event.host, event.at)
            elif event.action == "partition":
                injector.partition(
                    event.group_a, event.group_b, event.at, event.duration
                )
            elif event.action == "corrupt":
                injector.corrupt_links(
                    event.group_a,
                    event.group_b,
                    probability=event.probability,
                    truncate_probability=event.truncate_probability,
                    at=event.at,
                    duration=event.duration,
                )
            elif event.action == "degrade":
                injector.degrade_links(
                    event.group_a,
                    event.group_b,
                    factor=event.factor,
                    at=event.at,
                    duration=event.duration,
                )
            else:  # spike
                injector.spike_links(
                    event.group_a,
                    event.group_b,
                    magnitude=event.magnitude,
                    probability=(
                        event.probability if event.probability > 0.0 else 1.0
                    ),
                    at=event.at,
                    duration=event.duration,
                )

    def horizon(self) -> float:
        """Latest time any event touches (for choosing run length)."""
        latest = 0.0
        for event in self.events:
            end = event.at + (event.duration or 0.0)
            latest = max(latest, end)
        return latest
