"""The fault injector: schedule crashes, flaps, partitions and gray faults.

All mutations go through the fabric (hosts, links) or a pseudo-gmond
(simulated cluster members), so every transport sees the failure the same
way the real system would: UDP datagrams stop arriving, TCP connects time
out -- and on gray links, responses arrive late, short, or scrambled.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.gmond.pseudo import PseudoGmond
from repro.net.fabric import Fabric
from repro.sim.engine import Engine, PeriodicTask


class FaultInjector:
    """Schedules failures against the simulated fabric."""

    def __init__(self, engine: Engine, fabric: Fabric) -> None:
        self.engine = engine
        self.fabric = fabric
        self._flappers: List[Tuple[PeriodicTask, str]] = []
        self._storage_tiers: List[object] = []
        self.log: List[tuple] = []  # (time, action, subject)

    def _record(self, action: str, subject: str) -> None:
        self.log.append((self.engine.now, action, subject))

    # -- stop failures ---------------------------------------------------------

    def crash_host(
        self, host: str, at: float = 0.0, duration: Optional[float] = None
    ) -> None:
        """Take ``host`` down at ``at``; bring it back after ``duration``.

        ``duration=None`` is a permanent stop failure.
        """

        def down() -> None:
            self.fabric.set_host_up(host, False)
            self._record("crash", host)

        def up() -> None:
            self.fabric.set_host_up(host, True)
            self._record("recover", host)

        self.engine.call_later(at, down)
        if duration is not None:
            self.engine.call_later(at + duration, up)

    def recover_host(self, host: str, at: float = 0.0) -> None:
        """Bring a host back up at the given time."""
        self.engine.call_later(
            at,
            lambda: (
                self.fabric.set_host_up(host, True),
                self._record("recover", host),
            ),
        )

    # -- intermittent failures -------------------------------------------------

    def flap_host(
        self,
        host: str,
        period: float,
        down_fraction: float = 0.5,
        start: Optional[float] = None,
    ) -> PeriodicTask:
        """Intermittent failure: down for ``down_fraction`` of each period.

        ``start`` is when the first down-phase begins.  The default
        (``None``) waits one full period, so the host is initially up;
        an explicit ``start=0.0`` means "start flapping right now".
        """
        if not (0.0 < down_fraction < 1.0):
            raise ValueError("down_fraction must be in (0, 1)")
        if start is not None and start < 0.0:
            raise ValueError("start must be non-negative")

        def go_down() -> None:
            self.fabric.set_host_up(host, False)
            self._record("flap-down", host)
            self.engine.call_later(period * down_fraction, go_up)

        def go_up() -> None:
            self.fabric.set_host_up(host, True)
            self._record("flap-up", host)

        task = PeriodicTask(self.engine, period, go_down)
        task.start(initial_delay=period if start is None else start)
        self._flappers.append((task, host))
        return task

    def stop_flapping(self) -> None:
        """Stop every flapping task and leave hosts up.

        A host caught mid-down-phase is restored (its pending ``go_up``
        would otherwise never matter once the task stops scheduling new
        cycles, and the docstring's promise -- hosts end up *up* -- held
        only for hosts that happened to be in their up phase).
        """
        for task, host in self._flappers:
            task.stop()
            if not self.fabric.host(host).up:
                self.fabric.set_host_up(host, True)
                self._record("flap-up", host)
        self._flappers.clear()

    # -- partitions --------------------------------------------------------

    def partition(
        self,
        side_a: Iterable[str],
        side_b: Iterable[str],
        at: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        """Cut all links between two host groups; optionally heal later."""
        side_a, side_b = list(side_a), list(side_b)

        def cut() -> None:
            self.fabric.partition(side_a, side_b)
            self._record("partition", f"{side_a}|{side_b}")

        def heal() -> None:
            self.fabric.heal_partition(side_a, side_b)
            self._record("heal", f"{side_a}|{side_b}")

        self.engine.call_later(at, cut)
        if duration is not None:
            self.engine.call_later(at + duration, heal)

    # -- gray (byzantine) link conditions ---------------------------------

    @staticmethod
    def _gray_pairs(
        side_a: Iterable[str], side_b: Iterable[str]
    ) -> Tuple[List[Tuple[str, str]], str]:
        """All cross-group pairs plus a stable log label."""
        side_a, side_b = list(side_a), list(side_b)
        pairs = [(a, b) for a in side_a for b in side_b]
        return pairs, f"{side_a}|{side_b}"

    def corrupt_links(
        self,
        side_a: Iterable[str],
        side_b: Iterable[str],
        probability: float,
        truncate_probability: float = 0.0,
        at: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        """Mangle responses crossing the group boundary.

        Each response corrupts with ``probability`` (a scrambled span)
        or, failing that coin flip, truncates with
        ``truncate_probability``.  ``duration=None`` leaves the links
        poisoned until something clears them.
        """
        pairs, label = self._gray_pairs(side_a, side_b)

        def poison() -> None:
            for a, b in pairs:
                self.fabric.set_gray(
                    a,
                    b,
                    corrupt_probability=probability,
                    truncate_probability=truncate_probability,
                )
            self._record("corrupt", label)

        def clear() -> None:
            for a, b in pairs:
                self.fabric.set_gray(
                    a, b, corrupt_probability=0.0, truncate_probability=0.0
                )
            self._record("clear-corrupt", label)

        self.engine.call_later(at, poison)
        if duration is not None:
            self.engine.call_later(at + duration, clear)

    def degrade_links(
        self,
        side_a: Iterable[str],
        side_b: Iterable[str],
        factor: float,
        at: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        """Run the links at ``factor`` of their nominal bandwidth."""
        if not (0.0 < factor < 1.0):
            raise ValueError("degrade factor must be in (0, 1)")
        pairs, label = self._gray_pairs(side_a, side_b)

        def degrade() -> None:
            for a, b in pairs:
                self.fabric.set_gray(a, b, bandwidth_factor=factor)
            self._record("degrade", label)

        def clear() -> None:
            for a, b in pairs:
                self.fabric.set_gray(a, b, bandwidth_factor=1.0)
            self._record("clear-degrade", label)

        self.engine.call_later(at, degrade)
        if duration is not None:
            self.engine.call_later(at + duration, clear)

    def spike_links(
        self,
        side_a: Iterable[str],
        side_b: Iterable[str],
        magnitude: float,
        probability: float = 1.0,
        at: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        """Hold responses an extra ``magnitude`` seconds, per-response
        with ``probability`` (bufferbloat / route-flap style spikes)."""
        if magnitude <= 0.0:
            raise ValueError("spike magnitude must be positive")
        pairs, label = self._gray_pairs(side_a, side_b)

        def spike() -> None:
            for a, b in pairs:
                self.fabric.set_gray(
                    a,
                    b,
                    spike_probability=probability,
                    spike_seconds=magnitude,
                )
            self._record("spike", label)

        def clear() -> None:
            for a, b in pairs:
                self.fabric.set_gray(
                    a, b, spike_probability=0.0, spike_seconds=0.0
                )
            self._record("clear-spike", label)

        self.engine.call_later(at, spike)
        if duration is not None:
            self.engine.call_later(at + duration, clear)

    # -- storage nodes (repro.storage) -----------------------------------

    def register_storage_tier(self, tier) -> None:
        """Make a gmetad's storage tier addressable by node name.

        Multiple tiers may register (one per gmetad); a kill targets the
        node name in every tier that has it, so schedules stay
        tier-agnostic the way host schedules are fabric-agnostic.
        """
        self._storage_tiers.append(tier)

    def _storage_targets(self, node: str) -> List[object]:
        tiers = [t for t in self._storage_tiers if t.has_node(node)]
        if not tiers:
            raise KeyError(f"no registered storage tier has node {node!r}")
        return tiers

    def kill_storage_node(
        self, node: str, at: float = 0.0, duration: Optional[float] = None
    ) -> None:
        """Fail-stop one storage node at ``at``; restart after ``duration``.

        ``duration=None`` leaves the node down until an explicit
        ``restart_storage_node`` (or forever -- anti-entropy will
        re-replicate its shards onto survivors either way).
        """

        def down() -> None:
            for tier in self._storage_targets(node):
                tier.kill_node(node)
            self._record("storage-kill", node)

        def up() -> None:
            for tier in self._storage_targets(node):
                tier.restart_node(node)
            self._record("storage-restart", node)

        self.engine.call_later(at, down)
        if duration is not None:
            self.engine.call_later(at + duration, up)

    def restart_storage_node(self, node: str, at: float = 0.0) -> None:
        """Bring a killed storage node back at the given time."""

        def up() -> None:
            for tier in self._storage_targets(node):
                tier.restart_node(node)
            self._record("storage-restart", node)

        self.engine.call_later(at, up)

    # -- simulated cluster members (pseudo-gmond) ------------------------------

    def kill_pseudo_host(
        self,
        pseudo: PseudoGmond,
        index: int,
        at: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        """Silence one emulated host inside a pseudo-gmond cluster."""

        def down() -> None:
            pseudo.set_host_down(index, True)
            self._record("pseudo-down", f"{pseudo.name}[{index}]")

        def up() -> None:
            pseudo.set_host_down(index, False)
            self._record("pseudo-up", f"{pseudo.name}[{index}]")

        self.engine.call_later(at, down)
        if duration is not None:
            self.engine.call_later(at + duration, up)
