"""The fault injector: schedule crashes, flaps and partitions.

All mutations go through the fabric (hosts) or a pseudo-gmond (simulated
cluster members), so every transport sees the failure the same way the
real system would: UDP datagrams stop arriving, TCP connects time out.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.gmond.pseudo import PseudoGmond
from repro.net.fabric import Fabric
from repro.sim.engine import Engine, PeriodicTask


class FaultInjector:
    """Schedules failures against the simulated fabric."""

    def __init__(self, engine: Engine, fabric: Fabric) -> None:
        self.engine = engine
        self.fabric = fabric
        self._flappers: List[PeriodicTask] = []
        self.log: List[tuple] = []  # (time, action, subject)

    def _record(self, action: str, subject: str) -> None:
        self.log.append((self.engine.now, action, subject))

    # -- stop failures ---------------------------------------------------------

    def crash_host(
        self, host: str, at: float = 0.0, duration: Optional[float] = None
    ) -> None:
        """Take ``host`` down at ``at``; bring it back after ``duration``.

        ``duration=None`` is a permanent stop failure.
        """

        def down() -> None:
            self.fabric.set_host_up(host, False)
            self._record("crash", host)

        def up() -> None:
            self.fabric.set_host_up(host, True)
            self._record("recover", host)

        self.engine.call_later(at, down)
        if duration is not None:
            self.engine.call_later(at + duration, up)

    def recover_host(self, host: str, at: float = 0.0) -> None:
        """Bring a host back up at the given time."""
        self.engine.call_later(
            at,
            lambda: (
                self.fabric.set_host_up(host, True),
                self._record("recover", host),
            ),
        )

    # -- intermittent failures -------------------------------------------------

    def flap_host(
        self,
        host: str,
        period: float,
        down_fraction: float = 0.5,
        start: float = 0.0,
    ) -> PeriodicTask:
        """Intermittent failure: down for ``down_fraction`` of each period."""
        if not (0.0 < down_fraction < 1.0):
            raise ValueError("down_fraction must be in (0, 1)")

        def go_down() -> None:
            self.fabric.set_host_up(host, False)
            self._record("flap-down", host)
            self.engine.call_later(period * down_fraction, go_up)

        def go_up() -> None:
            self.fabric.set_host_up(host, True)
            self._record("flap-up", host)

        task = PeriodicTask(self.engine, period, go_down)
        task.start(initial_delay=start if start > 0 else period)
        self._flappers.append(task)
        return task

    def stop_flapping(self) -> None:
        """Stop every flapping task and leave hosts up."""
        for task in self._flappers:
            task.stop()
        self._flappers.clear()

    # -- partitions --------------------------------------------------------

    def partition(
        self,
        side_a: Iterable[str],
        side_b: Iterable[str],
        at: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        """Cut all links between two host groups; optionally heal later."""
        side_a, side_b = list(side_a), list(side_b)

        def cut() -> None:
            self.fabric.partition(side_a, side_b)
            self._record("partition", f"{side_a}|{side_b}")

        def heal() -> None:
            self.fabric.heal_partition(side_a, side_b)
            self._record("heal", f"{side_a}|{side_b}")

        self.engine.call_later(at, cut)
        if duration is not None:
            self.engine.call_later(at + duration, heal)

    # -- simulated cluster members (pseudo-gmond) ------------------------------

    def kill_pseudo_host(
        self,
        pseudo: PseudoGmond,
        index: int,
        at: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        """Silence one emulated host inside a pseudo-gmond cluster."""

        def down() -> None:
            pseudo.set_host_down(index, True)
            self._record("pseudo-down", f"{pseudo.name}[{index}]")

        def up() -> None:
            pseudo.set_host_down(index, False)
            self._record("pseudo-up", f"{pseudo.name}[{index}]")

        self.engine.call_later(at, down)
        if duration is not None:
            self.engine.call_later(at + duration, up)
