"""Vectorized summarization kernels over :class:`ColumnarCluster`.

Two kernels, each a drop-in replacement for its scalar reference path:

- :func:`summarize_columns` mirrors
  :func:`repro.core.summarize.summarize_cluster` -- one eager additive
  reduction per poll, computed with masked scatter-adds over the metric
  row axis instead of per-host Python loops.  ``np.add.at`` is an
  unbuffered in-order scatter, so each metric's SUM accumulates in
  document order exactly like the scalar left-to-right fold.
- :class:`ColumnarSummaryTracker` mirrors
  :class:`repro.core.delta_summary.ClusterSummaryTracker` -- the
  incremental tracker that re-reduces only changed hosts, with the
  Neumaier-compensated accumulators held as parallel slot arrays and
  each host's add/subtract applied as one vectorized update (a host's
  metrics touch distinct slots, so the within-host order the scalar
  loop uses is immaterial and the vector form is bit-identical).

Bit-identity discipline: totals, NUM counts, metric dict order, units
backfill, metadata provenance (first occurrence), the drain-to-zero
accumulator drop/rebuild, and the returned op counts (what the CPU
model charges) all match the scalar paths exactly -- including the sign
of zero, which the eager kernel patches up explicitly (a scalar fold of
only ``-0.0`` contributions yields ``-0.0`` while a scatter-add seeded
from ``0.0`` yields ``+0.0``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.columnar.layout import ColumnarCluster, InternPool
from repro.wire.model import MetricSummary, SummaryInfo

_NO_ROW = np.iinfo(np.int64).max


def summarize_columns(
    cols: ColumnarCluster,
    heartbeat_window: float = 80.0,
) -> Tuple[SummaryInfo, int]:
    """Eagerly reduce a columnar poll; mirrors ``summarize_cluster``.

    Returns ``(summary, samples_reduced)`` with the same charging
    contract: the second element is the number of numeric samples folded
    in.
    """
    pool = cols.pool
    up = cols.up_mask(heartbeat_window)
    info = SummaryInfo()
    info.hosts_up = int(np.count_nonzero(up))
    info.hosts_down = cols.host_count - info.hosts_up

    mask = cols.valid & up[cols.row_host]
    rows = np.flatnonzero(mask)
    if rows.size == 0:
        return info, 0
    nids = cols.name_ids[rows]
    vals = cols.values[rows]

    size = pool.size
    sums = np.zeros(size, dtype=np.float64)
    np.add.at(sums, nids, vals)
    nums = np.bincount(nids, minlength=size)
    first = np.full(size, _NO_ROW, dtype=np.int64)
    np.minimum.at(first, nids, rows)

    # Sign-of-zero parity: the scalar fold starts from the first value
    # itself, so a metric whose every contribution is -0.0 sums to -0.0;
    # the scatter-add starts from +0.0 and loses the sign.  (Any other
    # zero total -- cancellation, mixed-sign zeros -- is +0.0 both ways.)
    zeros = (vals == 0.0) & np.signbit(vals)
    if zeros.any():
        negz = np.bincount(nids[zeros], minlength=size)
        all_negz = (nums > 0) & (negz == nums)
        sums[all_negz] = -0.0

    # UNITS is the first *non-empty* value in document order (the scalar
    # path backfills ``existing.units = existing.units or ms.units``).
    units_final = np.full(size, pool.empty_id, dtype=np.int64)
    nonempty = cols.units_ids[rows] != pool.empty_id
    if nonempty.any():
        ufirst = np.full(size, _NO_ROW, dtype=np.int64)
        np.minimum.at(ufirst, nids[nonempty], rows[nonempty])
        seen = ufirst != _NO_ROW
        units_final[seen] = cols.units_ids[ufirst[seen]]

    active = np.flatnonzero(nums > 0)
    active = active[np.argsort(first[active], kind="stable")]
    strings = pool.strings
    type_ids = cols.type_ids
    slope_ids = cols.slope_ids
    metrics = info.metrics
    for nid in active:
        r = first[nid]
        metrics[strings[nid]] = MetricSummary(
            name=strings[nid],
            total=float(sums[nid]),
            num=int(nums[nid]),
            mtype=pool.mtype_at(int(type_ids[r])),
            units=strings[units_final[nid]],
            slope=pool.slope_at(int(slope_ids[r])),
        )
    return info, int(rows.size)


@dataclass(slots=True)
class _HostState:
    """One host's live share of the running summary (columnar form)."""

    up: bool
    #: accumulator slot per contributing metric, document order
    slots: np.ndarray
    values: np.ndarray
    name_ids: np.ndarray
    type_ids: np.ndarray
    units_ids: np.ndarray
    slope_ids: np.ndarray

    def count(self) -> int:
        # name_ids, not slots: a fresh state's slots are only resolved
        # once _add_host runs, but its contribution size is known
        return len(self.name_ids)


_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_I32 = np.empty(0, dtype=np.int32)
_EMPTY_F64 = np.empty(0, dtype=np.float64)


def _empty_host_state(up: bool) -> _HostState:
    return _HostState(
        up=up,
        slots=_EMPTY_I64,
        values=_EMPTY_F64,
        name_ids=_EMPTY_I32,
        type_ids=_EMPTY_I32,
        units_ids=_EMPTY_I32,
        slope_ids=_EMPTY_I32,
    )


class ColumnarSummaryTracker:
    """Running summary over columnar polls; mirrors the scalar tracker.

    Accumulator state is a set of parallel *slot* arrays (Neumaier sum
    and compensation, exposed total, NUM, metadata ids); a slot is
    allocated when a metric gains its first reporter and freed when its
    reporter count drains to zero, exactly like the scalar tracker drops
    a drained accumulator.  ``_order`` mirrors the scalar running dict's
    insertion order so the serialized METRICS sequence is identical --
    including the reorder when a sole-reporter metric drains and is
    immediately re-added at the end.

    When consecutive polls share a layout (same hosts, same metric rows,
    same liveness -- the overwhelmingly common case), changed hosts are
    found with one vectorized value comparison; otherwise a per-host
    slow path reproduces the scalar comparison, down to its key-*set*
    (order-insensitive) semantics.
    """

    def __init__(self, heartbeat_window: float = 80.0) -> None:
        self.heartbeat_window = heartbeat_window
        self._pool: Optional[InternPool] = None
        self._hosts: Dict[str, _HostState] = {}
        self._hosts_up = 0
        self._hosts_down = 0
        # slot arrays (capacity-doubled)
        self._cap = 0
        self._size = 0
        self._sum = _EMPTY_F64
        self._comp = _EMPTY_F64
        self._tot = _EMPTY_F64  # exposed total: first value, then sum+comp
        self._num = _EMPTY_I64
        self._tid = _EMPTY_I32
        self._uid = _EMPTY_I32
        self._sid = _EMPTY_I32
        self._free: List[int] = []
        #: name id -> slot (dense array over the intern pool), -1 absent
        self._slot_of_nid = _EMPTY_I64
        #: name id -> None, in running-dict insertion order
        self._order: Dict[int, None] = {}
        self._prev: Optional[ColumnarCluster] = None
        self._prev_up: Optional[np.ndarray] = None
        #: diagnostic: how many times the drain-to-zero rebuild fired
        self.rebuilds = 0

    # -- slot management ---------------------------------------------------

    def _grow(self, needed: int) -> None:
        cap = max(64, self._cap)
        while cap < needed:
            cap *= 2
        if cap == self._cap:
            return
        for name in ("_sum", "_comp", "_tot"):
            arr = np.zeros(cap, dtype=np.float64)
            arr[: self._size] = getattr(self, name)[: self._size]
            setattr(self, name, arr)
        num = np.zeros(cap, dtype=np.int64)
        num[: self._size] = self._num[: self._size]
        self._num = num
        for name in ("_tid", "_uid", "_sid"):
            arr = np.zeros(cap, dtype=np.int32)
            arr[: self._size] = getattr(self, name)[: self._size]
            setattr(self, name, arr)
        self._cap = cap

    def _alloc(self, k: int) -> np.ndarray:
        slots = np.empty(k, dtype=np.int64)
        reuse = min(k, len(self._free))
        for i in range(reuse):
            slots[i] = self._free.pop()
        fresh = k - reuse
        if fresh:
            self._grow(self._size + fresh)
            slots[reuse:] = np.arange(
                self._size, self._size + fresh, dtype=np.int64
            )
            self._size += fresh
        return slots

    def _sync_pool(self, pool: InternPool) -> None:
        if self._pool is None:
            self._pool = pool
        elif self._pool is not pool:
            raise ValueError("tracker is bound to a different intern pool")
        if len(self._slot_of_nid) < pool.size:
            table = np.full(max(64, 2 * pool.size), -1, dtype=np.int64)
            table[: len(self._slot_of_nid)] = self._slot_of_nid
            self._slot_of_nid = table

    # -- per-host add/subtract (each mirrors one scalar loop) --------------

    def _subtract_host(self, st: _HostState) -> int:
        if st.up:
            self._hosts_up -= 1
        else:
            self._hosts_down -= 1
        slots = st.slots
        if slots.size == 0:
            return 0
        self._num[slots] -= 1
        drained = self._num[slots] == 0
        live = slots[~drained]
        if live.size:
            v = -st.values[~drained]
            s = self._sum[live]
            t = s + v
            self._comp[live] += np.where(
                np.abs(s) >= np.abs(v), (s - t) + v, (v - t) + s
            )
            self._sum[live] = t
            self._tot[live] = t + self._comp[live]
        if drained.any():
            # last reporter left: drop the reduction and free its slot
            # (an eager re-fold would simply not produce the metric)
            dn = st.name_ids[drained]
            order = self._order
            for nid in dn:
                del order[int(nid)]
            self._slot_of_nid[dn] = -1
            self._free.extend(int(s) for s in slots[drained])
        return int(slots.size)

    def _add_host(self, st: _HostState) -> int:
        if st.up:
            self._hosts_up += 1
        else:
            self._hosts_down += 1
        nids = st.name_ids
        if nids.size == 0:
            return 0
        slots = self._slot_of_nid[nids]
        missing = slots < 0
        if missing.any():
            new_nids = nids[missing]
            new_slots = self._alloc(int(missing.sum()))
            slots[missing] = new_slots
            self._slot_of_nid[new_nids] = new_slots
            v = st.values[missing]
            self._sum[new_slots] = v
            self._comp[new_slots] = 0.0
            self._tot[new_slots] = v  # first value verbatim, like ms.copy()
            self._num[new_slots] = 1
            self._tid[new_slots] = st.type_ids[missing]
            self._uid[new_slots] = st.units_ids[missing]
            self._sid[new_slots] = st.slope_ids[missing]
            order = self._order
            for nid in new_nids:  # document order == scalar insert order
                order[int(nid)] = None
        existing = ~missing
        if existing.any():
            ls = slots[existing]
            v = st.values[existing]
            s = self._sum[ls]
            t = s + v
            self._comp[ls] += np.where(
                np.abs(s) >= np.abs(v), (s - t) + v, (v - t) + s
            )
            self._sum[ls] = t
            self._tot[ls] = t + self._comp[ls]
            self._num[ls] += 1
            u = self._uid[ls]
            backfill = u == self._pool.empty_id
            if backfill.any():
                u[backfill] = st.units_ids[existing][backfill]
                self._uid[ls] = u
        st.slots = slots
        return int(nids.size)

    # -- contribution extraction and comparison ----------------------------

    def _fresh_state(self, cols: ColumnarCluster, h: int, up: bool) -> _HostState:
        if not up:
            return _empty_host_state(False)
        r0 = int(cols.host_row_start[h])
        r1 = int(cols.host_row_start[h + 1])
        sel = np.flatnonzero(cols.valid[r0:r1]) + r0
        if sel.size == 0:
            return _empty_host_state(True)
        return _HostState(
            up=True,
            slots=_EMPTY_I64,  # resolved by _add_host
            values=cols.values[sel].copy(),
            name_ids=cols.name_ids[sel].copy(),
            type_ids=cols.type_ids[sel].copy(),
            units_ids=cols.units_ids[sel].copy(),
            slope_ids=cols.slope_ids[sel].copy(),
        )

    @staticmethod
    def _states_equal(a: _HostState, b: _HostState) -> bool:
        """Mirror of ``_contributions_equal`` (key sets, then tuples)."""
        if a.up != b.up:
            return False
        if a.count() != b.count():
            return False
        if np.array_equal(a.name_ids, b.name_ids):
            # common case: same metrics in the same order
            return (
                np.array_equal(a.values, b.values)  # NaN -> not equal
                and np.array_equal(a.type_ids, b.type_ids)
                and np.array_equal(a.units_ids, b.units_ids)
                and np.array_equal(a.slope_ids, b.slope_ids)
            )
        # permuted order: the scalar comparison is key-SET based
        index = {int(n): i for i, n in enumerate(a.name_ids)}
        for j, nid in enumerate(b.name_ids):
            i = index.pop(int(nid), None)
            if i is None:
                return False
            if (
                a.values[i] != b.values[j]  # NaN compares unequal: changed
                or a.type_ids[i] != b.type_ids[j]
                or a.units_ids[i] != b.units_ids[j]
                or a.slope_ids[i] != b.slope_ids[j]
            ):
                return False
        return not index

    # -- the public update -------------------------------------------------

    def update(self, cols: ColumnarCluster) -> Tuple[SummaryInfo, int]:
        """Fold a fresh columnar poll into the running summary.

        Same contract as the scalar tracker: returns ``(summary, ops)``
        where ``ops`` counts only the samples of hosts that actually
        changed (the CPU charge), and the summary is an independent
        clone.
        """
        self._sync_pool(cols.pool)
        up = cols.up_mask(self.heartbeat_window)
        ops = 0
        had = bool(self._hosts)

        prev = self._prev
        if (
            prev is not None
            and cols.same_layout(prev)
            and self._prev_up is not None
            and np.array_equal(up, self._prev_up)
        ):
            # fast path: identical structure and liveness -- changed
            # hosts fall out of one vectorized value comparison
            mask = cols.valid & up[cols.row_host]
            diff = mask & (cols.values != prev.values)  # NaN: changed
            if diff.any():
                changed = np.unique(cols.row_host[diff])
                for h in changed:  # ascending == document order
                    name = cols.host_names[h]
                    st = self._hosts[name]
                    ops += self._subtract_host(st)
                    fresh = self._fresh_state(cols, int(h), True)
                    ops += self._add_host(fresh) + 1
                    self._hosts[name] = fresh
        else:
            # removed hosts: subtract their stale contributions
            index = cols.host_index
            for name in list(self._hosts):
                if name not in index:
                    ops += self._subtract_host(self._hosts.pop(name)) + 1
            # changed or new hosts, in document order
            for h, name in enumerate(cols.host_names):
                fresh = self._fresh_state(cols, h, bool(up[h]))
                previous = self._hosts.get(name)
                if previous is not None and self._states_equal(
                    previous, fresh
                ):
                    continue  # untouched host: zero summarization work
                if previous is not None:
                    ops += self._subtract_host(previous)
                ops += self._add_host(fresh) + 1
                self._hosts[name] = fresh

        if had and not self._hosts:
            # contribution count drained to zero: rebuild exactly
            self._reset_accumulators()
            self.rebuilds += 1

        self._prev = cols
        self._prev_up = up
        return self._snapshot(), ops

    def _snapshot(self) -> SummaryInfo:
        pool = self._pool
        info = SummaryInfo(
            hosts_up=self._hosts_up, hosts_down=self._hosts_down
        )
        if pool is None:
            return info
        strings = pool.strings
        metrics = info.metrics
        table = self._slot_of_nid
        for nid in self._order:
            slot = int(table[nid])
            metrics[strings[nid]] = MetricSummary(
                name=strings[nid],
                total=float(self._tot[slot]),
                num=int(self._num[slot]),
                mtype=pool.mtype_at(int(self._tid[slot])),
                units=strings[int(self._uid[slot])],
                slope=pool.slope_at(int(self._sid[slot])),
            )
        return info

    def _reset_accumulators(self) -> None:
        self._hosts_up = 0
        self._hosts_down = 0
        self._size = 0
        self._free.clear()
        self._order.clear()
        if len(self._slot_of_nid):
            self._slot_of_nid[:] = -1

    def reset(self) -> None:
        """Forget all state (source removed or re-pointed)."""
        self._hosts.clear()
        self._reset_accumulators()
        self._prev = None
        self._prev_up = None
