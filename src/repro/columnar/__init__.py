"""Columnar ingest fast path: structure-of-arrays cluster polls.

The tree ingest path re-materializes a Python object per XML element
every polling interval -- "incoming XML must be parsed" (§2.3.1) -- and
then walks those objects one host at a time to summarize and archive.
This package keeps one poll as a handful of contiguous numpy arrays
instead, so the per-metric work collapses into vectorized kernels:

- :mod:`repro.columnar.layout` -- the :class:`ColumnarCluster`
  structure-of-arrays and the :class:`InternPool` that maps the tiny
  closed vocabularies (metric names, units, TYPE/SLOPE enums) to dense
  integer ids;
- :mod:`repro.columnar.summarize` -- vectorized eager summarization and
  the columnar delta-summary tracker, both bit-identical to the scalar
  reference paths in :mod:`repro.core.summarize` /
  :mod:`repro.core.delta_summary`.

Everything is gated by ``GmetadConfig.columnar`` (default off) and the
on-wire output is byte-identical either way -- same discipline as the
incremental-ingest, resilience and observability layers before it.
"""

from repro.columnar.layout import (
    ColumnarCluster,
    ColumnarDocument,
    InternPool,
    columns_from_cluster,
)
from repro.columnar.summarize import ColumnarSummaryTracker, summarize_columns

__all__ = [
    "ColumnarCluster",
    "ColumnarDocument",
    "InternPool",
    "ColumnarSummaryTracker",
    "columns_from_cluster",
    "summarize_columns",
]
