"""Structure-of-arrays layout for one cluster poll.

A full-form gmond response is extremely regular: thousands of METRIC
elements whose NAME/TYPE/UNITS/SLOPE attributes are drawn from a tiny
closed vocabulary, nested under HOST elements that differ only in a few
scalar attributes.  :class:`ColumnarCluster` stores one poll as parallel
arrays over the metric rows (document order, deduplicated per host the
same way the tree builder's dict assignment deduplicates), plus per-host
arrays over the host axis.  The :class:`InternPool` maps the closed
vocabularies to dense integer ids so layout comparisons and summary
grouping are integer array ops instead of string work.

The DOM is not gone -- :meth:`ColumnarCluster.materialize_into` rebuilds
the exact :class:`~repro.wire.model.HostElement` tree the tree parser
would have produced, and is invoked lazily the first time a query needs
full-form detail (see ``SourceSnapshot.ensure_hosts``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.metrics.catalog import Slope
from repro.metrics.types import MetricType
from repro.wire.model import ClusterElement, HostElement, MetricElement

_MTYPE_BY_VALUE: Dict[str, MetricType] = {m.value: m for m in MetricType}
_SLOPE_BY_VALUE: Dict[str, Slope] = {s.value: s for s in Slope}


class InternPool:
    """String -> dense-id pool for the wire format's closed vocabularies.

    One pool lives per daemon and is shared across polls, so a metric
    name maps to the *same* id on every poll -- that stability is what
    lets the columnar delta tracker compare layouts with integer array
    equality.  TYPE and SLOPE ids double as validated enum handles:
    :meth:`mtype_id` / :meth:`slope_id` return ``None`` for strings
    outside the DTD vocabulary (the caller raises the same
    ``ParseError`` the tree builder would).
    """

    __slots__ = (
        "_ids",
        "strings",
        "_mtype_ids",
        "_slope_ids",
        "_mtype_by_id",
        "_slope_by_id",
        "_numeric_by_id",
        "empty_id",
        "both_slope_id",
    )

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self.strings: List[str] = []
        self._mtype_ids: Dict[str, int] = {}
        self._slope_ids: Dict[str, int] = {}
        self._mtype_by_id: Dict[int, MetricType] = {}
        self._slope_by_id: Dict[int, Slope] = {}
        self._numeric_by_id: Dict[int, bool] = {}
        self.empty_id = self.intern("")
        self.both_slope_id = self.slope_id(Slope.BOTH.value)

    def intern(self, s: str) -> int:
        """The id for ``s``, allocating one on first sight."""
        i = self._ids.get(s)
        if i is None:
            i = len(self.strings)
            self._ids[s] = i
            self.strings.append(s)
        return i

    def lookup(self, s: str) -> Optional[int]:
        """The id for ``s`` if already interned; never allocates.

        Serve-side probes (is this metric name known?) must not grow
        the pool: an attacker-controlled query path interning its junk
        would bloat every escaped-string cache built parallel to it.
        """
        return self._ids.get(s)

    def mtype_id(self, raw: str) -> Optional[int]:
        """Id of a TYPE attribute value, or None if not a metric type."""
        i = self._mtype_ids.get(raw)
        if i is None:
            mtype = _MTYPE_BY_VALUE.get(raw)
            if mtype is None:
                return None
            i = self.intern(raw)
            self._mtype_ids[raw] = i
            self._mtype_by_id[i] = mtype
            self._numeric_by_id[i] = mtype.is_numeric
        return i

    def slope_id(self, raw: str) -> Optional[int]:
        """Id of a SLOPE attribute value, or None if not a slope."""
        i = self._slope_ids.get(raw)
        if i is None:
            slope = _SLOPE_BY_VALUE.get(raw)
            if slope is None:
                return None
            i = self.intern(raw)
            self._slope_ids[raw] = i
            self._slope_by_id[i] = slope
        return i

    def id_for_mtype(self, mtype: MetricType) -> int:
        """Id for an already-validated enum member."""
        i = self.mtype_id(mtype.value)
        assert i is not None
        return i

    def id_for_slope(self, slope: Slope) -> int:
        i = self.slope_id(slope.value)
        assert i is not None
        return i

    def mtype_at(self, i: int) -> MetricType:
        return self._mtype_by_id[i]

    def slope_at(self, i: int) -> Slope:
        return self._slope_by_id[i]

    def is_numeric_id(self, i: int) -> bool:
        return self._numeric_by_id[i]

    @property
    def size(self) -> int:
        return len(self.strings)


@dataclass(slots=True)
class ColumnarCluster:
    """One full-form cluster poll as parallel arrays.

    Metric rows are in document order, deduplicated per host with
    last-value-wins at the first occurrence's position (exactly what the
    tree builder's ``dict[name] = metric`` produces).  Rows of one host
    are contiguous: host ``h`` owns rows
    ``host_row_start[h]:host_row_start[h+1]``.
    """

    # CLUSTER attributes (the shell the datastore serves summaries from)
    name: str
    owner: str
    localtime: float
    url: str
    # host axis (deduplication-free by construction; see parser fallback)
    host_names: List[str]
    host_ip: List[str]
    host_location: List[str]
    host_reported: np.ndarray  # float64 [H]
    host_tn: np.ndarray        # float64 [H]
    host_tmax: np.ndarray      # float64 [H]
    host_dmax: np.ndarray      # float64 [H]
    host_row_start: np.ndarray  # int64 [H+1]
    # metric-row axis
    row_host: np.ndarray   # int32 [N] -- owning host index per row
    name_ids: np.ndarray   # int32 [N] -- pool id of NAME
    type_ids: np.ndarray   # int32 [N] -- pool id of TYPE (validated)
    units_ids: np.ndarray  # int32 [N]
    slope_ids: np.ndarray  # int32 [N] (validated)
    source_ids: np.ndarray  # int32 [N]
    values: np.ndarray     # float64 [N]; NaN placeholder on ~valid rows
    numeric: np.ndarray    # bool [N] -- TYPE is numeric
    valid: np.ndarray      # bool [N] -- numeric and VAL parsed as float
    metric_tn: np.ndarray   # float64 [N]
    metric_tmax: np.ndarray  # float64 [N]
    metric_dmax: np.ndarray  # float64 [N]
    vals_raw: List[str]    # raw VAL strings, for exact materialization
    pool: InternPool
    _up_cache: Optional[tuple] = field(default=None, repr=False, compare=False)
    _host_index: Optional[Dict[str, int]] = field(
        default=None, repr=False, compare=False
    )

    # -- derived views -----------------------------------------------------

    @property
    def host_count(self) -> int:
        return len(self.host_names)

    @property
    def row_count(self) -> int:
        return len(self.name_ids)

    @property
    def element_count(self) -> int:
        """Hash-table inserts an equivalent tree ingest charges for.

        Mirrors ``document_element_count``: 1 for the cluster, 1 per
        host, 1 per (deduplicated) metric.
        """
        return 1 + self.host_count + self.row_count

    def up_mask(self, heartbeat_window: float) -> np.ndarray:
        """Per-host liveness (``tn <= heartbeat_window``), memoized."""
        cached = self._up_cache
        if cached is not None and cached[0] == heartbeat_window:
            return cached[1]
        mask = self.host_tn <= heartbeat_window
        self._up_cache = (heartbeat_window, mask)
        return mask

    @property
    def host_index(self) -> Dict[str, int]:
        """host name -> host axis position (built lazily)."""
        index = self._host_index
        if index is None:
            index = {name: i for i, name in enumerate(self.host_names)}
            self._host_index = index
        return index

    def same_layout(self, other: "ColumnarCluster") -> bool:
        """Whether the host/metric structure (not the values) matches.

        Covers everything the delta tracker's per-host equality compares
        except the values themselves and host liveness: host identity and
        order, metric identity and order, TYPE/UNITS/SLOPE metadata, and
        which rows carry a parseable numeric value.  SOURCE is excluded
        on purpose -- the scalar tracker ignores it too.
        """
        return (
            other.pool is self.pool
            and self.host_names == other.host_names
            and np.array_equal(self.host_row_start, other.host_row_start)
            and np.array_equal(self.name_ids, other.name_ids)
            and np.array_equal(self.type_ids, other.type_ids)
            and np.array_equal(self.units_ids, other.units_ids)
            and np.array_equal(self.slope_ids, other.slope_ids)
            and np.array_equal(self.valid, other.valid)
        )

    # -- DOM bridge --------------------------------------------------------

    def shell_cluster(self) -> ClusterElement:
        """A hostless ClusterElement carrying the CLUSTER attributes.

        The datastore installs this as the snapshot's element; summary
        serving works off it directly and full-form serving triggers
        :meth:`materialize_into` first.
        """
        return ClusterElement(
            name=self.name,
            owner=self.owner,
            localtime=self.localtime,
            url=self.url,
        )

    def materialize_host(self, h: int) -> HostElement:
        """Rebuild one host's exact element subtree by row-slice.

        Lets consumers that need only a few hosts (VO-filtered views,
        single-host tools) avoid materializing the whole cluster.
        """
        pool = self.pool
        strings = pool.strings
        starts = self.host_row_start
        name_ids = self.name_ids
        type_ids = self.type_ids
        units_ids = self.units_ids
        slope_ids = self.slope_ids
        source_ids = self.source_ids
        vals = self.vals_raw
        tn = self.metric_tn
        tmax = self.metric_tmax
        dmax = self.metric_dmax
        host = HostElement(
            name=self.host_names[h],
            ip=self.host_ip[h],
            reported=float(self.host_reported[h]),
            tn=float(self.host_tn[h]),
            tmax=float(self.host_tmax[h]),
            dmax=float(self.host_dmax[h]),
            location=self.host_location[h],
        )
        metrics = host.metrics
        for r in range(starts[h], starts[h + 1]):
            metric = MetricElement(
                name=strings[name_ids[r]],
                val=vals[r],
                mtype=pool.mtype_at(type_ids[r]),
                units=strings[units_ids[r]],
                tn=float(tn[r]),
                tmax=float(tmax[r]),
                dmax=float(dmax[r]),
                slope=pool.slope_at(slope_ids[r]),
                source=strings[source_ids[r]],
            )
            metrics[metric.name] = metric
        return host

    def materialize_into(self, cluster: ClusterElement) -> ClusterElement:
        """Rebuild the exact host tree the tree parser would have built."""
        for h, host_name in enumerate(self.host_names):
            cluster.hosts[host_name] = self.materialize_host(h)
        return cluster


@dataclass(slots=True)
class ColumnarDocument:
    """A parsed poll response in columnar form (cluster sources only)."""

    version: str
    source: str
    clusters: List[ColumnarCluster]
    #: METRIC elements that fell off the regex fast lane during the parse
    #: (attribute order drifted from the canonical writer order); the
    #: slow path still parsed them correctly, but a nonzero count means
    #: the canonical-order assumption the binary codec shares is broken
    fast_lane_misses: int = 0

    @property
    def element_count(self) -> int:
        return sum(c.element_count for c in self.clusters)


def columns_from_cluster(
    cluster: ClusterElement, pool: InternPool
) -> ColumnarCluster:
    """Convert an already-built full-form DOM cluster to columns.

    Used on the rare tree-parse paths (salvaged ingest, columnar
    fallback) so a columnar-mode daemon keeps a single summary-tracker
    and archive-plan state machine regardless of which parser ran.
    """
    if cluster.is_summary:
        raise ValueError(
            f"cannot build columns for summary-form cluster {cluster.name!r}"
        )
    host_names: List[str] = []
    host_ip: List[str] = []
    host_location: List[str] = []
    host_reported: List[float] = []
    host_tn: List[float] = []
    host_tmax: List[float] = []
    host_dmax: List[float] = []
    starts: List[int] = [0]
    row_host: List[int] = []
    name_ids: List[int] = []
    type_ids: List[int] = []
    units_ids: List[int] = []
    slope_ids: List[int] = []
    source_ids: List[int] = []
    values: List[float] = []
    numeric: List[bool] = []
    valid: List[bool] = []
    metric_tn: List[float] = []
    metric_tmax: List[float] = []
    metric_dmax: List[float] = []
    vals_raw: List[str] = []
    for h, (host_name, host) in enumerate(cluster.hosts.items()):
        host_names.append(host_name)
        host_ip.append(host.ip)
        host_location.append(host.location)
        host_reported.append(host.reported)
        host_tn.append(host.tn)
        host_tmax.append(host.tmax)
        host_dmax.append(host.dmax)
        for metric in host.metrics.values():
            row_host.append(h)
            name_ids.append(pool.intern(metric.name))
            type_ids.append(pool.id_for_mtype(metric.mtype))
            units_ids.append(pool.intern(metric.units))
            slope_ids.append(pool.id_for_slope(metric.slope))
            source_ids.append(pool.intern(metric.source))
            vals_raw.append(metric.val)
            metric_tn.append(metric.tn)
            metric_tmax.append(metric.tmax)
            metric_dmax.append(metric.dmax)
            is_numeric = metric.is_numeric
            numeric.append(is_numeric)
            if is_numeric:
                try:
                    value = float(metric.val)
                except ValueError:
                    values.append(np.nan)
                    valid.append(False)
                else:
                    values.append(value)
                    valid.append(True)
            else:
                values.append(np.nan)
                valid.append(False)
        starts.append(len(row_host))
    return ColumnarCluster(
        name=cluster.name,
        owner=cluster.owner,
        localtime=cluster.localtime,
        url=cluster.url,
        host_names=host_names,
        host_ip=host_ip,
        host_location=host_location,
        host_reported=np.asarray(host_reported, dtype=np.float64),
        host_tn=np.asarray(host_tn, dtype=np.float64),
        host_tmax=np.asarray(host_tmax, dtype=np.float64),
        host_dmax=np.asarray(host_dmax, dtype=np.float64),
        host_row_start=np.asarray(starts, dtype=np.int64),
        row_host=np.asarray(row_host, dtype=np.int32),
        name_ids=np.asarray(name_ids, dtype=np.int32),
        type_ids=np.asarray(type_ids, dtype=np.int32),
        units_ids=np.asarray(units_ids, dtype=np.int32),
        slope_ids=np.asarray(slope_ids, dtype=np.int32),
        source_ids=np.asarray(source_ids, dtype=np.int32),
        values=np.asarray(values, dtype=np.float64),
        numeric=np.asarray(numeric, dtype=bool),
        valid=np.asarray(valid, dtype=bool),
        metric_tn=np.asarray(metric_tn, dtype=np.float64),
        metric_tmax=np.asarray(metric_tmax, dtype=np.float64),
        metric_dmax=np.asarray(metric_dmax, dtype=np.float64),
        vals_raw=vals_raw,
        pool=pool,
    )
