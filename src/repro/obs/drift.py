"""Drift auditor: cross-check incremental summaries against eager folds.

The incremental pipeline's delta summarization is only trustworthy if it
stays *wire-identical* to an eager re-fold -- a property that silently
decayed once before (float residue serializing as ``"-0"``, the tier-1
`-0` drift).  This auditor is the observability substrate that would
have caught it in production: on a sampling cadence it re-folds each
cluster source eagerly, serializes both summaries, and records any
byte-level divergence to the registry (and a ``drift_audit`` span).

The audit is an *observer* diagnostic: the eager re-fold is not charged
to the daemon's CPU account, so enabling it never perturbs the numbers
it is checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from repro.core.delta_summary import eager_summary
from repro.obs.config import SELF_SOURCE
from repro.serve.views import has_live_columns, transient_full_cluster
from repro.wire.model import SummaryInfo
from repro.wire.writer import XmlWriter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.gmetad_base import GmetadBase


def summary_wire_form(summary: SummaryInfo) -> str:
    """The exact bytes a summary-form serve emits for this summary."""
    writer = XmlWriter()
    writer.summary_info(summary)
    return writer.result()


@dataclass
class DriftReport:
    """Result of one audit sweep."""

    checked: int = 0
    diverged: List[str] = field(default_factory=list)
    #: worst absolute SUM difference seen this sweep, per metric name
    max_abs_delta: float = 0.0
    details: Dict[str, str] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.diverged


def audit_gmetad(gmetad: "GmetadBase") -> DriftReport:
    """Compare every cluster source's installed summary to an eager fold.

    Works on any gmetad: with the incremental pipeline on, the installed
    summary came from a :class:`ClusterSummaryTracker` and this is the
    incremental-vs-eager equivalence check; with it off the comparison
    is trivially clean (same code produced both sides).
    """
    report = DriftReport()
    for name, snapshot in gmetad.datastore.sources.items():
        if name == SELF_SOURCE or snapshot.cluster is None:
            continue
        if has_live_columns(snapshot):
            # audit off a throwaway materialization: the snapshot's
            # lazy shell (and the serve path's zero-materialization
            # invariant) stays untouched, while the eager re-fold still
            # runs over an independently rebuilt element tree
            full_cluster = transient_full_cluster(snapshot.columns)
        else:
            snapshot.ensure_hosts()  # a columnar shell *has* a full form
            if snapshot.cluster.is_summary:
                continue  # no full form to re-fold
            full_cluster = snapshot.cluster
        report.checked += 1
        eager = eager_summary(
            full_cluster, gmetad.config.heartbeat_window
        )
        incremental = snapshot.summary
        incremental_wire = summary_wire_form(incremental)
        eager_wire = summary_wire_form(eager)
        for metric_name, ms in eager.metrics.items():
            ours = incremental.metrics.get(metric_name)
            if ours is not None:
                delta = abs(ours.total - ms.total)
                if delta > report.max_abs_delta:
                    report.max_abs_delta = delta
        if incremental_wire != eager_wire:
            report.diverged.append(name)
            report.details[name] = (
                f"incremental {len(incremental_wire)}B != "
                f"eager {len(eager_wire)}B"
            )
    return report


class DriftAuditor:
    """Periodic audit bound to one observed gmetad."""

    def __init__(self, gmetad: "GmetadBase") -> None:
        self.gmetad = gmetad
        self.sweeps = 0
        self.total_divergences = 0
        self.last_report: DriftReport = DriftReport()

    def sweep(self) -> DriftReport:
        """Run one audit and record the outcome in the registry."""
        obs = self.gmetad.obs
        start = self.gmetad.engine.now
        report = audit_gmetad(self.gmetad)
        self.sweeps += 1
        self.total_divergences += len(report.diverged)
        self.last_report = report
        if obs is not None:
            registry = obs.registry
            registry.counter("drift_sweeps").inc()
            registry.counter("drift_divergences").inc(len(report.diverged))
            registry.gauge("drift_sources_checked").set(report.checked)
            registry.gauge("drift_max_abs_delta").set(report.max_abs_delta)
            obs.record_span(
                "drift_audit",
                start,
                0.0,  # observer work: free on the simulated CPU
                checked=report.checked,
                diverged=len(report.diverged),
            )
        return report
