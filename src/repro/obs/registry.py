"""Runtime metrics registry: counters, gauges, histograms on the sim clock.

The monitor's own performance data, shaped so it can flow through the
paper's own machinery: :meth:`MetricsRegistry.as_metric_elements` turns
every instrument into ordinary ``METRIC`` elements, which is what lets
the ``__gmetad__`` synthetic cluster ride the unmodified query engine,
web frontend, and RRD archiver (see :mod:`repro.obs.selfcluster`).

Instruments are cheap dataclass-free objects created on first use and
looked up by name afterwards; none of them charge simulated CPU -- the
observer watches the daemon, it does not slow it down.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Tuple

from repro.metrics.catalog import Slope
from repro.metrics.types import MetricType
from repro.wire.model import MetricElement

#: SOURCE attribute stamped on exported self-metrics.
SELF_METRIC_SOURCE = "gmetad-self"


class Counter:
    """Monotone event count."""

    __slots__ = ("name", "units", "value")

    def __init__(self, name: str, units: str = "") -> None:
        self.name = name
        self.units = units
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """Last-written value (queue depths, breaker states, ratios)."""

    __slots__ = ("name", "units", "value")

    def __init__(self, name: str, units: str = "") -> None:
        self.name = name
        self.units = units
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming distribution: count/sum/min/max plus a bounded window.

    Full-history quantiles would grow without bound over a long soak, so
    the reservoir keeps only the most recent ``window`` samples (enough
    for the p95-style questions an operator asks of poll RTTs) while
    count/sum/min/max stay exact over the instrument's lifetime.
    """

    __slots__ = ("name", "units", "count", "total", "min", "max", "_window")

    def __init__(self, name: str, units: str = "", window: int = 128) -> None:
        self.name = name
        self.units = units
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._window: Deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._window.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def recent_quantile(self, q: float) -> float:
        """Quantile over the bounded recent window (0 when empty)."""
        if not self._window:
            return 0.0
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        ordered = sorted(self._window)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


class MetricsRegistry:
    """Named instruments for one daemon, exportable as METRIC elements."""

    def __init__(self, histogram_window: int = 128) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._histogram_window = histogram_window

    # -- instrument accessors (create on first use) -------------------------

    def counter(self, name: str, units: str = "") -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._counters[name] = Counter(name, units)
        return instrument

    def gauge(self, name: str, units: str = "") -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._gauges[name] = Gauge(name, units)
        return instrument

    def histogram(self, name: str, units: str = "") -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._histograms[name] = Histogram(
                name, units, window=self._histogram_window
            )
        return instrument

    def _check_free(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        ):
            raise ValueError(
                f"instrument name {name!r} already registered with another type"
            )

    # -- export -------------------------------------------------------------

    def samples(self) -> Iterator[Tuple[str, float, str]]:
        """Flat ``(name, value, units)`` samples, histograms expanded.

        A histogram ``h`` exports ``h_count``, ``h_mean`` and ``h_max``
        -- the additive-reduction-friendly projections -- so every
        exported sample is a plain number the summary machinery folds.
        """
        for counter in self._counters.values():
            yield counter.name, counter.value, counter.units
        for gauge in self._gauges.values():
            yield gauge.name, gauge.value, gauge.units
        for histogram in self._histograms.values():
            yield f"{histogram.name}_count", float(histogram.count), ""
            yield f"{histogram.name}_mean", histogram.mean, histogram.units
            yield (
                f"{histogram.name}_max",
                histogram.max if histogram.count else 0.0,
                histogram.units,
            )

    def as_metric_elements(self, tmax: float = 60.0) -> List[MetricElement]:
        """Every instrument as a wire-model METRIC element, name-sorted."""
        elements = [
            MetricElement(
                name=name,
                val=f"{value:.6f}".rstrip("0").rstrip("."),
                mtype=MetricType.DOUBLE,
                units=units,
                tn=0.0,
                tmax=tmax,
                slope=Slope.BOTH,
                source=SELF_METRIC_SOURCE,
            )
            for name, value, units in self.samples()
        ]
        elements.sort(key=lambda m: m.name)
        return elements

    def snapshot(self) -> Dict[str, float]:
        """Plain name -> value mapping (tests, CLI dumps)."""
        return {name: value for name, value, _ in self.samples()}
