"""The observability layer bound to one gmetad daemon.

One :class:`Observability` instance per instrumented daemon owns the
metrics registry, the bounded trace buffer, the drift auditor and the
periodic tasks that refresh the in-band ``__gmetad__`` cluster.  Every
hook in the daemons is guarded by ``if self.obs is not None`` and the
attribute is ``None`` unless ``GmetadConfig.observability`` is set, so
the default build carries zero instrumentation cost and stays
byte-identical to the uninstrumented daemon.

Charging policy: *observing* is free (registry updates, span records,
drift re-folds charge nothing), but *publishing* self-metrics in band is
real work -- the summarize/archive/install of the ``__gmetad__`` cluster
and every query served over it charge the daemon's CPU account exactly
like any other source.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.obs.config import SELF_SOURCE, ObservabilityConfig
from repro.obs.drift import DriftAuditor
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Span, TraceBuffer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.gmetad_base import GmetadBase
    from repro.sim.engine import PeriodicTask

#: numeric encoding of circuit-breaker states for gauge export
BREAKER_STATE_CODES = {"closed": 0.0, "half-open": 1.0, "open": 2.0}


def _serve_form(request: str) -> str:
    """Classify a serve request for per-form stage timings.

    "summary" and "full" are whole-tree dumps (with/without
    ``filter=summary``); anything with a non-root path is "path".
    """
    path, _, params = request.partition("?")
    if path.strip("/"):
        return "path"
    return "summary" if "filter=summary" in params else "full"


class Observability:
    """Registry + tracing + in-band self-metrics for one gmetad."""

    def __init__(
        self, gmetad: "GmetadBase", config: Optional[ObservabilityConfig] = None
    ) -> None:
        self.gmetad = gmetad
        self.config = config if config is not None else ObservabilityConfig()
        self.registry = MetricsRegistry(
            histogram_window=self.config.histogram_window
        )
        self.trace = TraceBuffer(self.config.trace_capacity)
        self.auditor = DriftAuditor(gmetad)
        self._tasks: List["PeriodicTask"] = []
        self.started = False
        #: per-codec {xml,binary} byte-counter variants exist only on
        #: binary-enabled daemons: a baseline daemon's self-cluster
        #: output must stay byte-identical to pre-codec builds
        self._codec_split = bool(getattr(gmetad.config, "binary_wire", False))
        #: arena instruments (fragment hit/miss/invalidation gauges,
        #: per-form serve timings) exist only on columnar-serve daemons
        #: -- a baseline daemon's self-cluster must stay byte-identical
        self._serve_split = bool(
            getattr(gmetad.config, "columnar_serve", False)
        )
        #: storage-tier instruments exist only when the tier is on, for
        #: the same reason; the tier also streams per-shard flush
        #: timings into this registry once attached
        store = getattr(getattr(gmetad, "archiver", None), "store", None)
        self._storage_tier = (
            store if getattr(store, "is_storage_tier", False) else None
        )
        if self._storage_tier is not None:
            self._storage_tier.attach_registry(self.registry)

    # -- lifecycle (driven by GmetadBase.start/stop) ------------------------

    def start(self) -> "Observability":
        if self.started:
            return self
        self.started = True
        engine = self.gmetad.engine
        if self.config.self_cluster_interval > 0:
            self._tasks.append(
                engine.every(
                    self.config.self_cluster_interval,
                    self.refresh_self_cluster,
                    initial_delay=self.config.self_cluster_interval,
                )
            )
        if self.config.drift_check_interval > 0:
            self._tasks.append(
                engine.every(
                    self.config.drift_check_interval, self.auditor.sweep
                )
            )
        return self

    def stop(self) -> None:
        for task in self._tasks:
            task.stop()
        self._tasks.clear()
        self.started = False

    # -- span recording ------------------------------------------------------

    def record_span(
        self, name: str, start: float, duration: float, **attrs
    ) -> None:
        self.trace.append(
            Span(
                name=name,
                daemon=self.gmetad.config.name,
                start=start,
                duration=duration,
                attrs=attrs,
            )
        )

    def spans_jsonl(self) -> str:
        """The buffered trace as JSON lines."""
        return self.trace.to_jsonl()

    # -- polling-side hooks --------------------------------------------------

    def record_poll(self, source: str, seconds: float, outcome: str) -> None:
        """One poll finished: outcome in data/not_modified/timeout/overloaded."""
        registry = self.registry
        registry.counter("polls_total").inc()
        registry.counter(f"polls_{outcome}").inc()
        registry.counter(f"poll_outcome.{source}.{outcome}").inc()
        if outcome != "timeout":
            registry.histogram(f"poll_rtt.{source}", units="s").observe(seconds)
        now = self.gmetad.engine.now
        self.record_span(
            "poll", now - seconds, seconds, source=source, outcome=outcome
        )

    def record_breaker_transition(
        self, source: str, old_state: str, new_state: str, now: float
    ) -> None:
        registry = self.registry
        registry.counter("breaker_transitions").inc()
        if new_state == "open":
            registry.counter("breaker_opens").inc()
            registry.counter(f"breaker_opens.{source}").inc()
        registry.gauge(f"breaker_state.{source}").set(
            BREAKER_STATE_CODES.get(new_state, -1.0)
        )

    def record_ingest(
        self,
        source: str,
        nbytes: int,
        start: float,
        parse_seconds: float,
        summarize_seconds: float,
        archive_seconds: float,
        outcome: str = "ok",
        path: str = "tree",
        codec: str = "xml",
    ) -> None:
        """One poll response went through parse -> summarize -> archive.

        ``path`` names the ingest pipeline that ran ("tree" or
        "columnar") so stage timings attribute to the right fast path.
        The default path adds nothing: self-metrics output stays
        byte-identical to pre-columnar builds unless columnar ran.
        ``codec`` names the wire encoding ("xml" or "binary"); per-codec
        byte counters appear only on binary-enabled daemons, so baseline
        self-metric output is untouched.
        """
        registry = self.registry
        registry.counter("ingest_bytes_in", units="bytes").inc(nbytes)
        if self._codec_split:
            registry.counter(f"ingest_bytes_in_{codec}", units="bytes").inc(
                nbytes
            )
        registry.counter(f"ingests_{outcome}").inc()
        if path != "tree":
            registry.counter(f"ingests_{path}").inc()
        registry.histogram("stage_parse", units="s").observe(parse_seconds)
        self.record_span(
            "parse", start, parse_seconds, source=source,
            bytes=nbytes, outcome=outcome, path=path,
        )
        if outcome == "ok" or summarize_seconds > 0:
            registry.histogram("stage_summarize", units="s").observe(
                summarize_seconds
            )
            self.record_span(
                "summarize", start + parse_seconds, summarize_seconds,
                source=source,
            )
            registry.histogram("stage_archive", units="s").observe(
                archive_seconds
            )
            self.record_span(
                "archive", start + parse_seconds + summarize_seconds,
                archive_seconds, source=source,
            )

    # -- serving-side hooks --------------------------------------------------

    def record_serve(
        self,
        request: str,
        seconds: float,
        nbytes: int,
        cached_bytes: int = 0,
        outcome: str = "ok",
        codec: str = "xml",
    ) -> None:
        registry = self.registry
        registry.counter("serves_total").inc()
        registry.counter(f"serves_{outcome}").inc()
        registry.counter("serve_bytes_out", units="bytes").inc(nbytes)
        if self._codec_split:
            registry.counter(f"serve_bytes_out_{codec}", units="bytes").inc(
                nbytes
            )
        registry.counter("serve_bytes_cached", units="bytes").inc(cached_bytes)
        registry.histogram("stage_serve", units="s").observe(seconds)
        if self._serve_split and outcome == "ok":
            registry.histogram(
                f"stage_serve_{_serve_form(request)}", units="s"
            ).observe(seconds)
        now = self.gmetad.engine.now
        self.record_span(
            "serve", now, seconds, request=request, bytes=nbytes,
            cached=cached_bytes, outcome=outcome,
        )

    def record_shed(self, count: int = 1) -> None:
        self.registry.counter("serves_shed").inc(count)

    def record_push(
        self, nbytes: int, seconds: float = 0.0, codec: str = "xml"
    ) -> None:
        registry = self.registry
        registry.counter("push_notifications").inc()
        registry.counter("push_bytes_out", units="bytes").inc(nbytes)
        if self._codec_split:
            registry.counter(f"push_bytes_out_{codec}", units="bytes").inc(
                nbytes
            )
        now = self.gmetad.engine.now
        self.record_span("push", now, seconds, bytes=nbytes)

    def record_negotiation(self, outcome: str) -> None:
        """One ``accept=`` handshake resolved: "accepted" or "fell_back"."""
        self.registry.counter(f"codec_negotiations_{outcome}").inc()

    # -- derived gauges + in-band mount --------------------------------------

    def sync_daemon_gauges(self) -> None:
        """Mirror the daemon's cumulative stats into registry gauges."""
        gmetad = self.gmetad
        registry = self.registry
        registry.gauge("daemon_polls_ingested").set(gmetad.polls_ingested)
        registry.gauge("daemon_polls_not_modified").set(
            gmetad.polls_not_modified
        )
        registry.gauge("daemon_parse_errors").set(gmetad.parse_errors)
        registry.gauge("daemon_polls_salvaged").set(gmetad.polls_salvaged)
        registry.gauge("daemon_polls_quarantined").set(
            gmetad.polls_quarantined
        )
        registry.gauge("daemon_queries_served").set(gmetad.queries_served)
        registry.gauge("daemon_queries_shed").set(gmetad.queries_shed)
        if self._codec_split:
            registry.gauge("daemon_frames_ingested").set(
                getattr(gmetad, "frames_ingested", 0)
            )
            registry.gauge("daemon_frame_errors").set(
                getattr(gmetad, "frame_errors", 0)
            )
        if self._serve_split:
            arenas = getattr(gmetad, "_serve_arenas", {})
            registry.gauge("serve_frag_hits").set(
                sum(a.frag_hits for a in arenas.values())
            )
            registry.gauge("serve_frag_misses").set(
                sum(a.frag_misses for a in arenas.values())
            )
            registry.gauge("serve_frag_invalidations").set(
                sum(a.frag_invalidations for a in arenas.values())
            )
            # the count the fast path exists to hold at zero
            registry.gauge("serve_materializations").set(
                getattr(gmetad.datastore, "materializations", 0)
            )
        conditional_total = gmetad.polls_ingested + gmetad.polls_not_modified
        registry.gauge("conditional_poll_hit_ratio").set(
            gmetad.polls_not_modified / conditional_total
            if conditional_total
            else 0.0
        )
        bytes_out = registry.counter("serve_bytes_out", units="bytes").value
        bytes_cached = registry.counter(
            "serve_bytes_cached", units="bytes"
        ).value
        registry.gauge("frag_cache_hit_ratio").set(
            bytes_cached / bytes_out if bytes_out else 0.0
        )
        if gmetad.serve_queue is not None:
            registry.gauge("serve_queue_depth").set(gmetad.serve_queue.depth)
            registry.gauge("serve_queue_peak_depth").set(
                gmetad.serve_queue.peak_depth
            )
        up = sum(
            1
            for name, s in gmetad.datastore.sources.items()
            if s.up and name != SELF_SOURCE
        )
        down = sum(
            1
            for name, s in gmetad.datastore.sources.items()
            if not s.up and name != SELF_SOURCE
        )
        registry.gauge("sources_up").set(up)
        registry.gauge("sources_down").set(down)
        registry.gauge("trace_spans_dropped").set(self.trace.dropped)
        registry.gauge("cpu_busy_seconds").set(
            gmetad.cpu.total_busy_seconds
        )
        tier = self._storage_tier
        if tier is not None:
            registry.gauge("storage_nodes_up").set(tier.nodes_up())
            registry.gauge("storage_nodes_down").set(
                len(tier.nodes) - tier.nodes_up()
            )
            registry.gauge("storage_under_replicated_shards").set(
                tier.under_replicated_shards()
            )
            registry.gauge("storage_failover_fetches").set(
                tier.failover_fetches
            )
            registry.gauge("storage_stale_fetches").set(tier.stale_fetches)
            registry.gauge("storage_fetch_failures").set(tier.fetch_failures)
            registry.gauge("storage_updates_lost").set(tier.updates_lost)
            registry.gauge("storage_repairs_completed").set(
                tier.repairs_completed
            )
            registry.gauge("storage_groups_migrated").set(
                tier.groups_migrated
            )

    def refresh_self_cluster(self) -> None:
        """Re-render and install the ``__gmetad__`` cluster in band."""
        from repro.obs.selfcluster import install_self_cluster

        self.sync_daemon_gauges()
        now = self.gmetad.engine.now
        install_self_cluster(self.gmetad, now)
        # in-band means *fully* in band: pub-sub subscribers see the
        # self-metrics move like any other source
        self.gmetad._publish(SELF_SOURCE, now)
