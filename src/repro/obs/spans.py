"""Lightweight trace spans over a bounded in-sim buffer.

A span is one unit of daemon work -- ``poll``, ``parse``, ``summarize``,
``archive``, ``serve``, ``push`` (plus ``drift_audit`` from the
auditor) -- stamped with the simulated clock and a duration in simulated
CPU-seconds.  The buffer is bounded: a long soak drops the *oldest*
spans and counts what it dropped, so tracing never becomes the memory
leak it was meant to find.

Serialization is JSON lines (one span per line), the format the
``repro-sim trace`` CLI dumps and :mod:`repro.analysis.tracestats`
summarizes.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

#: Span names the instrumented daemons emit.
PHASES = (
    "poll",
    "parse",
    "summarize",
    "archive",
    "serve",
    "push",
    "drift_audit",
)


@dataclass(frozen=True)
class Span:
    """One traced unit of work."""

    name: str                 # phase: poll/parse/summarize/...
    daemon: str               # gmetad name that did the work
    start: float              # simulated time the work began
    duration: float           # simulated seconds (CPU or RTT)
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_json(self) -> str:
        record = {
            "span": self.name,
            "daemon": self.daemon,
            "start": round(self.start, 9),
            "duration": round(self.duration, 9),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return json.dumps(record, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "Span":
        record = json.loads(line)
        return cls(
            name=record["span"],
            daemon=record.get("daemon", ""),
            start=float(record["start"]),
            duration=float(record["duration"]),
            attrs=record.get("attrs", {}),
        )


class TraceBuffer:
    """Bounded FIFO of spans; oldest evicted first, evictions counted."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.capacity = capacity
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self.recorded = 0
        self.dropped = 0

    def append(self, span: Span) -> None:
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Buffered spans, optionally filtered by phase name."""
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def clear(self) -> None:
        self._spans.clear()

    # -- serialization -------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line, oldest span first."""
        return "".join(span.to_json() + "\n" for span in self._spans)


def parse_jsonl(text: str) -> List[Span]:
    """Parse a JSONL span dump back into spans (blank lines skipped)."""
    return [
        Span.from_json(line)
        for line in text.splitlines()
        if line.strip()
    ]
