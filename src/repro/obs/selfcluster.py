"""Mount the daemon's own metrics as a synthetic in-band cluster.

The MDS2 performance study and R-GMA both argue a monitoring service
must publish its *own* performance data to be operable at scale.  Here
that principle costs no new machinery at all: the registry is rendered
as an ordinary full-form ``CLUSTER`` named ``__gmetad__`` with one
``HOST`` (the daemon's node), then installed in the daemon's datastore
exactly like a polled gmond source.  From that moment

- ``/{__gmetad__}`` and ``/{__gmetad__}/{host}/{metric}`` path queries
  resolve through the unmodified query engine,
- the web frontend renders it with the unmodified cluster/host views,
- the archiver keeps unmodified RRD histories of every self-metric, and
- summary-form reports to a parent gmetad carry the child's
  self-summary upstream like any other cluster.

The paper's own query machinery becomes the dashboard.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.datastore import SourceSnapshot
from repro.core.summarize import summarize_cluster
from repro.obs.config import SELF_SOURCE
from repro.obs.registry import MetricsRegistry
from repro.wire.model import ClusterElement, HostElement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.gmetad_base import GmetadBase


def build_self_cluster(
    registry: MetricsRegistry,
    host_name: str,
    now: float,
    refresh_interval: float = 15.0,
) -> ClusterElement:
    """Render the registry as a full-form cluster element.

    ``TMAX`` is four refresh intervals, mirroring gmetad's TN-vs-4*TMAX
    heartbeat rule: if the daemon stops refreshing its own metrics (it
    is wedged), its self-host goes stale in every view watching it --
    the monitor's own liveness rides the standard liveness machinery.
    """
    cluster = ClusterElement(name=SELF_SOURCE, localtime=now)
    host = HostElement(
        name=host_name,
        reported=now,
        tn=0.0,
        tmax=max(refresh_interval, 1.0) * 4.0,
    )
    for metric in registry.as_metric_elements(tmax=max(refresh_interval, 1.0) * 4.0):
        host.add_metric(metric)
    cluster.add_host(host)
    return cluster


def install_inband_cluster(
    gmetad: "GmetadBase", source: str, cluster: ClusterElement, now: float
) -> ClusterElement:
    """Summarize, archive and install a synthetic cluster in band.

    The exact pipeline a polled source goes through (minus download and
    parse -- the data was never serialized).  Summarize and archive
    charges are real: keeping histories of your own metrics costs the
    same simulated CPU as anyone else's.  Shared by the ``__gmetad__``
    self-cluster and the ``__analytics__`` signal cluster
    (:mod:`repro.analytics`).  Returns the installed cluster.
    """
    summary, samples = summarize_cluster(
        cluster, gmetad.config.heartbeat_window
    )
    cluster.summary = summary
    gmetad.charge(gmetad.costs.summarize_metric * samples, "summarize")
    if gmetad.config.archive_local_detail:
        gmetad.archiver.archive_cluster_detail(source, cluster, now)
    gmetad.archiver.archive_summary(source, cluster.name, summary, now)
    gmetad.datastore.install(
        SourceSnapshot(
            name=source,
            kind="cluster",
            summary=summary,
            cluster=cluster,
            authority=gmetad.config.authority_url,
        ),
        now,
    )
    return cluster


def install_self_cluster(gmetad: "GmetadBase", now: float) -> ClusterElement:
    """Summarize, archive and install the self-cluster into ``gmetad``."""
    obs = gmetad.obs
    assert obs is not None, "install_self_cluster requires observability"
    cluster = build_self_cluster(
        obs.registry,
        gmetad.config.host,
        now,
        refresh_interval=obs.config.self_cluster_interval or 15.0,
    )
    return install_inband_cluster(gmetad, SELF_SOURCE, cluster, now)
