"""repro.obs -- self-observability for the simulated gmetad federation.

The monitor monitors itself: a per-daemon metrics registry, trace spans
over a bounded buffer, an in-band ``__gmetad__`` synthetic cluster, and
a drift auditor cross-checking incremental summaries against eager
folds.  Everything is off by default (``GmetadConfig.observability is
None``) and, when off, the daemons are byte-identical to the
uninstrumented build.
"""

from repro.obs.config import SELF_SOURCE, ObservabilityConfig
from repro.obs.drift import DriftAuditor, DriftReport, audit_gmetad
from repro.obs.observability import BREAKER_STATE_CODES, Observability
from repro.obs.registry import (
    SELF_METRIC_SOURCE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.selfcluster import build_self_cluster, install_self_cluster
from repro.obs.spans import PHASES, Span, TraceBuffer, parse_jsonl

__all__ = [
    "BREAKER_STATE_CODES",
    "Counter",
    "DriftAuditor",
    "DriftReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "ObservabilityConfig",
    "PHASES",
    "SELF_METRIC_SOURCE",
    "SELF_SOURCE",
    "Span",
    "TraceBuffer",
    "audit_gmetad",
    "build_self_cluster",
    "install_self_cluster",
    "parse_jsonl",
]
