"""Observability knobs (one block per gmetad, default: fully off).

Attached via ``GmetadConfig(observability=ObservabilityConfig(...))``.
``None`` -- the default everywhere, including every paper-figure runner
-- compiles the whole layer out: served XML and every BENCH_* number
stay byte-identical to the uninstrumented daemon.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The synthetic data-source name self-metrics are mounted under.  The
#: double-underscore sandwich keeps it out of any real gmond namespace.
SELF_SOURCE = "__gmetad__"


@dataclass
class ObservabilityConfig:
    """Configuration for the self-observability layer (``repro.obs``)."""

    enabled: bool = True
    #: seconds between refreshes of the in-band ``__gmetad__`` cluster
    #: (0 disables the mount; the registry and trace still run)
    self_cluster_interval: float = 15.0
    #: bounded trace buffer capacity, in span records (oldest dropped)
    trace_capacity: int = 4096
    #: seconds between drift-auditor sweeps comparing incremental vs
    #: eager summaries (0 disables the auditor)
    drift_check_interval: float = 60.0
    #: per-histogram bounded sample reservoir (recent values)
    histogram_window: int = 128

    def __post_init__(self) -> None:
        if self.self_cluster_interval < 0:
            raise ValueError("self_cluster_interval must be non-negative")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        if self.drift_check_interval < 0:
            raise ValueError("drift_check_interval must be non-negative")
        if self.histogram_window < 1:
            raise ValueError("histogram_window must be >= 1")
