"""gmetric: publish user-defined metrics into a cluster.

The paper counts "user-defined key-value pairs" among the data gmond
gathers.  In real Ganglia the ``gmetric`` utility multicasts one metric
datagram that every agent incorporates; the value carries a ``dmax`` so
it evaporates from the soft state if the publisher stops refreshing it
-- the publisher's liveness is implicit in the data.

:class:`GmetricPublisher` is that utility:  one-shot :meth:`publish` or
a :meth:`publish_every` loop driven by a callable.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.gmond import xdr
from repro.metrics.types import MetricSample, MetricType
from repro.net.udp import MulticastChannel
from repro.sim.engine import Engine, PeriodicTask

Value = Union[int, float, str]


class GmetricPublisher:
    """Publishes user metrics from one host onto a cluster's channel."""

    def __init__(
        self,
        engine: Engine,
        channel: MulticastChannel,
        host: str,
        ip: str = "",
    ) -> None:
        self.engine = engine
        self.channel = channel
        self.host = host
        self.ip = ip or "10.99.0.1"
        self.published = 0
        self._tasks: list[PeriodicTask] = []

    def publish(
        self,
        name: str,
        value: Value,
        mtype: MetricType = MetricType.FLOAT,
        units: str = "",
        tmax: float = 60.0,
        dmax: float = 240.0,
    ) -> MetricSample:
        """Multicast one user metric value.

        ``dmax`` defaults to four refresh periods: stop publishing and
        the metric disappears from every agent's state (soft state).
        ``dmax=0`` would pin it forever -- rarely what a user wants.
        """
        if not name:
            raise ValueError("metric name must be non-empty")
        if mtype is not MetricType.STRING:
            float(value)  # raises early on junk
        sample = MetricSample(
            name=name,
            value=value,
            mtype=mtype,
            units=units,
            source="gmetric",
            tmax=tmax,
            dmax=dmax,
            reported_at=self.engine.now,
        )
        data = xdr.encode_metric(sample)
        self.channel.send(self.host, data, len(data))
        self.published += 1
        return sample

    def publish_every(
        self,
        interval: float,
        name: str,
        value_fn: Callable[[float], Value],
        mtype: MetricType = MetricType.FLOAT,
        units: str = "",
        dmax: Optional[float] = None,
    ) -> PeriodicTask:
        """Re-publish ``name`` every ``interval`` s with a fresh value."""
        effective_dmax = dmax if dmax is not None else 4 * interval

        def tick() -> None:
            self.publish(
                name,
                value_fn(self.engine.now),
                mtype=mtype,
                units=units,
                tmax=interval,
                dmax=effective_dmax,
            )

        task = self.engine.every(interval, tick, initial_delay=0.0)
        self._tasks.append(task)
        return task

    def stop(self) -> None:
        """Stop all periodic publications (their values will soon expire)."""
        for task in self._tasks:
            task.stop()
        self._tasks.clear()
