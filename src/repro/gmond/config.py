"""Gmond cluster configuration (the interesting subset of gmond.conf)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.metrics.catalog import MetricDef, builtin_catalog


@dataclass
class GmondConfig:
    """Per-cluster gmond settings.

    ``heartbeat_interval`` is the period of the liveness beacon every
    agent multicasts; a host whose heartbeat has not been heard for
    ``heartbeat_window`` seconds counts as *down* in summaries (gmetad's
    TN vs 4*TMAX rule).  ``host_dmax`` > 0 removes a silent host from the
    soft-state entirely (automatic departure); 0 keeps it forever, which
    preserves the "zero records during downtime" forensics the paper
    describes for RRD archives.
    """

    cluster_name: str
    owner: str = "unspecified"
    url: str = ""
    multicast_group: str = "239.2.11.71:8649"
    heartbeat_interval: float = 20.0
    heartbeat_window: float = 80.0
    cleanup_interval: float = 180.0
    host_dmax: float = 0.0
    #: de-synchronization jitter applied to periodic sends (fraction of period)
    send_jitter: float = 0.1
    #: answer conditional (ifgen) polls with NOT-MODIFIED and serve from
    #: a per-host fragment cache keyed by soft-state versions.  Off by
    #: default: cached reports freeze TN/LOCALTIME at render time, a
    #: staleness trade a live agent's own heartbeat makes moot anyway
    #: (the soft state moves every ~20 s, so matches are rare).
    incremental_serving: bool = False
    #: honour ``accept=bin1`` on TCP polls by answering a binary frame
    #: (:mod:`repro.wire.binfmt`) instead of XML.  On by default: a
    #: capable agent only speaks binary when the poller asks, so
    #: XML-only pollers are unaffected either way.
    binary_serving: bool = True
    metric_defs: Sequence[MetricDef] = field(default_factory=builtin_catalog)

    def __post_init__(self) -> None:
        if not self.cluster_name:
            raise ValueError("cluster_name must be non-empty")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_window < self.heartbeat_interval:
            raise ValueError(
                "heartbeat_window must be at least one heartbeat_interval"
            )
