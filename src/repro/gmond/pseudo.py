"""Pseudo-gmond: the paper's controlled workload emulator.

"All experiments employ gmon emulators called pseudo-gmond to generate
controlled Ganglia XML datasets for the monitoring tree.  These agents
behave identically to a cluster's gmon daemons, except their metric
values are chosen randomly.  Their XML output conforms to the Ganglia
DTD, and therefore requires the same processing effort by the gmeta
system under study." (§3)

The emulator keeps a full cluster element tree and re-randomizes the
volatile metric values every ``refresh_interval`` of simulated time
(matching a real cluster's churn between gmetad polls), re-serializing
lazily on the first request after a refresh boundary.  Service latency
is a small constant regardless of cluster size -- the paper notes "care
was taken to ensure the gmon cluster simulators had similar query
latencies for all sizes" so that gmond-side effects stay out of the
gmetad measurements.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set

from repro.metrics.catalog import STRING_DEFAULTS, MetricDef, builtin_catalog
from repro.metrics.types import MetricType, format_value
from repro.net.address import Address
from repro.net.fabric import Fabric
from repro.net.tcp import Response, TcpNetwork
from repro.sim.engine import Engine
from repro.wire.binfmt import (
    CODEC_BINARY,
    BinaryFrame,
    encode_cluster_document,
    split_accept,
)
from repro.wire.conditional import (
    NotModified,
    TaggedXml,
    next_epoch,
    split_generation,
)
from repro.wire.model import ClusterElement, HostElement, MetricElement
from repro.wire.writer import XmlWriter, _fmt_num


class PseudoGmond:
    """Serves DTD-conformant cluster XML with random values over TCP."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        tcp: TcpNetwork,
        name: str,
        num_hosts: int,
        rng: random.Random,
        refresh_interval: float = 15.0,
        metric_defs: Optional[Sequence[MetricDef]] = None,
        service_seconds: float = 0.002,
        server_host: Optional[str] = None,
        binary_capable: bool = True,
    ) -> None:
        if num_hosts <= 0:
            raise ValueError("num_hosts must be positive")
        self.engine = engine
        self.name = name
        self.num_hosts = num_hosts
        self.refresh_interval = refresh_interval
        self.service_seconds = service_seconds
        self._rng = rng
        self._defs: List[MetricDef] = (
            list(metric_defs) if metric_defs is not None else builtin_catalog()
        )
        self.server_host = server_host or f"pgmond-{name}"
        if not fabric.has_host(self.server_host):
            fabric.add_host(self.server_host, cluster=name)
        self._down: Set[int] = set()
        self._last_alive: Dict[int, float] = {}
        self._cluster = self._build_skeleton()
        self._volatile: List[tuple[HostElement, List[tuple[MetricElement, MetricDef]]]] = [
            (
                host,
                [
                    (host.metrics[d.name], d)
                    for d in self._defs
                    if not d.is_constant
                ],
            )
            for host in self._cluster.hosts.values()
        ]
        self._cached_xml: Optional[str] = None
        self._built_at = float("-inf")
        #: a gmond that predates the binary codec: ignores ``accept=``
        #: and always answers XML (the mixed-fleet test lever)
        self.binary_capable = binary_capable
        #: per-generation encoded binary frame + the instance-local
        #: intern pool feeding it (lazy: XML-only fleets never build one)
        self._pool = None
        self._cached_frame: Optional[bytes] = None
        self._frame_gen = -1
        self.binary_served = 0
        #: per-host serialized fragments; an entry is dropped whenever
        #: its host's values move, so a k-host mutation re-renders k
        #: fragments and memcpys the other H-k
        self._host_frags: Dict[str, str] = {}
        #: content generation: epoch scopes the counter to this emulator
        #: instance so a restarted emulator never falsely matches
        self._epoch = next_epoch(f"pgmond-{name}")
        self._gen = 0
        self.requests = 0
        self.refreshes = 0
        self.mutations = 0
        self.not_modified_served = 0
        tcp.listen(Address.gmond(self.server_host), self._serve)

    # -- construction --------------------------------------------------------

    def _draw(self, mdef: MetricDef) -> str:
        if mdef.mtype is MetricType.STRING:
            return STRING_DEFAULTS.get(mdef.name, f"str{self._rng.randrange(10)}")
        lo, hi = mdef.value_range
        value = self._rng.uniform(lo, hi)
        if mdef.mtype.is_integral:
            return str(int(value))
        return format_value(value, mdef.mtype)

    def _build_skeleton(self) -> ClusterElement:
        cluster = ClusterElement(name=self.name, owner="pseudo", localtime=0.0)
        for i in range(self.num_hosts):
            host = HostElement(
                name=f"{self.name}-0-{i}",
                ip=f"10.{abs(hash(self.name)) % 200}.{i // 250}.{i % 250 + 1}",
                reported=0.0,
                tn=0.0,
                tmax=20.0,
            )
            for mdef in self._defs:
                host.add_metric(
                    MetricElement(
                        name=mdef.name,
                        val=self._draw(mdef),
                        mtype=mdef.mtype,
                        units=mdef.units,
                        tn=0.0,
                        tmax=mdef.tmax,
                        dmax=mdef.dmax,
                        slope=mdef.slope,
                    )
                )
            cluster.add_host(host)
        return cluster

    # -- host up/down control (used by the fault injector) --------------------

    def set_host_down(self, index: int, down: bool = True) -> None:
        """Silence (or revive) the ``index``-th simulated host."""
        if not (0 <= index < self.num_hosts):
            raise IndexError(f"host index {index} out of range")
        if down:
            self._last_alive.setdefault(index, self.engine.now)
            self._down.add(index)
        else:
            self._down.discard(index)
            self._last_alive.pop(index, None)
        self._built_at = float("-inf")  # force re-serialize

    @property
    def down_hosts(self) -> Set[int]:
        return set(self._down)

    # -- serving -----------------------------------------------------------

    def _update_host(self, index: int, now: float) -> None:
        """Re-randomize (or age, if down) one host; drops its fragment."""
        host, volatiles = self._volatile[index]
        if index in self._down:
            # A dead host reports nothing: TN keeps growing.
            silent_since = self._last_alive.get(index, now)
            host.tn = max(0.0, now - silent_since)
            host.reported = silent_since
        else:
            host.tn = self._rng.uniform(0.0, 10.0)
            host.reported = now - host.tn
            for element, mdef in volatiles:
                element.val = self._draw(mdef)
                element.tn = self._rng.uniform(0.0, mdef.collect_every)
        self._host_frags.pop(host.name, None)

    def _assemble(self) -> str:
        """Serialize the cluster document, splicing memoized host fragments.

        Byte-identical to ``write_document`` on an equivalent document
        (the memoization test pins this); only hosts whose fragment was
        invalidated are re-rendered.
        """
        w = XmlWriter()
        w.raw('<?xml version="1.0" encoding="ISO-8859-1" standalone="yes"?>\n')
        w.open_tag("GANGLIA_XML", [("VERSION", "2.5.4"), ("SOURCE", "gmond")])
        c = self._cluster
        attrs = [("NAME", c.name)]
        if c.owner:
            attrs.append(("OWNER", c.owner))
        attrs.append(("LOCALTIME", _fmt_num(c.localtime)))
        if c.url:
            attrs.append(("URL", c.url))
        w.open_tag("CLUSTER", attrs)
        for name in sorted(c.hosts):
            frag = self._host_frags.get(name)
            if frag is None:
                sub = XmlWriter()
                sub.host(c.hosts[name])
                frag = sub.result()
                self._host_frags[name] = frag
            w.raw(frag)
        w.close_tag("CLUSTER")
        w.close_tag("GANGLIA_XML")
        return w.result()

    def _refresh(self, now: float) -> None:
        self.refreshes += 1
        self._cluster.localtime = now
        for i in range(self.num_hosts):
            self._update_host(i, now)
        self._cached_xml = self._assemble()
        self._built_at = now
        self._gen += 1  # every host re-drew: content changed

    def mutate(
        self,
        fraction: Optional[float] = None,
        hosts: Optional[Sequence[int]] = None,
        now: Optional[float] = None,
    ) -> int:
        """Re-randomize a subset of hosts (the churn driver's knob).

        Pass either ``fraction`` (0..1 of the cluster, sampled with the
        emulator's own RNG) or an explicit list of host indices.  A
        mutation of zero hosts changes nothing -- the cached XML and the
        content generation stay put, so conditional pollers keep getting
        NOT-MODIFIED.  Returns the number of hosts touched.
        """
        at = self.engine.now if now is None else now
        if hosts is None:
            if fraction is None:
                raise ValueError("pass fraction or hosts")
            k = int(round(fraction * self.num_hosts))
            indices = sorted(self._rng.sample(range(self.num_hosts), k)) if k else []
        else:
            indices = sorted(set(hosts))
        if not indices:
            return 0
        # make sure the skeleton is built before partial invalidation
        self.current_xml(at)
        for i in indices:
            if not (0 <= i < self.num_hosts):
                raise IndexError(f"host index {i} out of range")
            self._update_host(i, at)
        self._cluster.localtime = at
        self._cached_xml = self._assemble()
        self._gen += 1
        self.mutations += 1
        return len(indices)

    def set_metric_values(
        self,
        updates: Dict[int, Dict[str, float]],
        now: Optional[float] = None,
    ) -> int:
        """Pin named metric values on selected hosts (the scripted driver).

        ``updates`` maps host index -> {metric name: value}.  Unlike
        :meth:`mutate`, touched values are *chosen*, not drawn -- the
        lever fault-replay schedules use to script ramps and step
        changes while everything else about the wire document (format,
        generation tokens, fragment memoization) behaves exactly like
        organic churn.  Touched hosts report fresh (``TN=0``); untouched
        hosts keep their memoized fragments.  Returns hosts touched.
        """
        at = self.engine.now if now is None else now
        if not updates:
            return 0
        # make sure the skeleton is built before partial invalidation
        self.current_xml(at)
        for index, metrics in sorted(updates.items()):
            if not (0 <= index < self.num_hosts):
                raise IndexError(f"host index {index} out of range")
            host, volatiles = self._volatile[index]
            named = {element.name: (element, mdef) for element, mdef in volatiles}
            host.tn = 0.0
            host.reported = at
            for metric_name, value in metrics.items():
                if metric_name not in named:
                    raise KeyError(
                        f"{metric_name!r} is not a volatile metric of {self.name}"
                    )
                element, mdef = named[metric_name]
                if mdef.mtype.is_integral:
                    element.val = str(int(value))
                else:
                    element.val = format_value(float(value), mdef.mtype)
                element.tn = 0.0
            self._host_frags.pop(host.name, None)
        self._cluster.localtime = at
        self._cached_xml = self._assemble()
        self._gen += 1
        self.mutations += 1
        return len(updates)

    @property
    def generation(self) -> str:
        """The opaque content-generation token served right now."""
        return f"{self._epoch}:{self._gen}"

    def current_xml(self, now: Optional[float] = None) -> str:
        """The XML the emulator would serve right now (refreshing if due)."""
        at = self.engine.now if now is None else now
        if at - self._built_at >= self.refresh_interval or self._cached_xml is None:
            self._refresh(at)
        return self._cached_xml

    def current_frame(self, now: Optional[float] = None) -> bytes:
        """The binary frame the emulator would serve right now.

        Encoded once per content generation from the same cluster tree
        the XML serializer reads, so a binary poller and an XML poller
        asking at the same instant install identical state.
        """
        self.current_xml(now)  # refresh on the same schedule as XML
        if self._cached_frame is None or self._frame_gen != self._gen:
            from repro.columnar.layout import (
                ColumnarDocument,
                InternPool,
                columns_from_cluster,
            )

            if self._pool is None:
                self._pool = InternPool()
            doc = ColumnarDocument(
                version="2.5.4",
                source="gmond",
                clusters=[columns_from_cluster(self._cluster, self._pool)],
            )
            self._cached_frame = encode_cluster_document(doc)
            self._frame_gen = self._gen
        return self._cached_frame

    def _serve(self, client: str, request: object) -> Response:
        self.requests += 1
        base, presented = split_generation(str(request))
        base, accept = split_accept(base)
        xml = self.current_xml()  # refresh BEFORE comparing generations
        wants_binary = self.binary_capable and accept == CODEC_BINARY
        if presented is not None:
            current = self.generation
            if presented == current:
                self.not_modified_served += 1
                return Response(
                    NotModified(
                        generation=current,
                        localtime=self._cluster.localtime,
                    ),
                    service_seconds=self.service_seconds,
                )
            if wants_binary:
                self.binary_served += 1
                return Response(
                    BinaryFrame(self.current_frame(), generation=current),
                    service_seconds=self.service_seconds,
                )
            return Response(
                TaggedXml(xml, current), service_seconds=self.service_seconds
            )
        if wants_binary:
            self.binary_served += 1
            return Response(
                BinaryFrame(self.current_frame()),
                service_seconds=self.service_seconds,
            )
        return Response(xml, service_seconds=self.service_seconds)

    @property
    def address(self) -> Address:
        return Address.gmond(self.server_host)

    def listen_mirror(
        self,
        fabric: Fabric,
        tcp: TcpNetwork,
        server_host: Optional[str] = None,
    ) -> Address:
        """Serve the same cluster from a second fabric host.

        A real deployment lists several cluster nodes in gmetad.conf,
        each able to answer with the full multicast-shared state (the
        Fig. 1 fail-over list).  The mirror binds this emulator's
        handler to another host so resilience experiments have a
        genuinely redundant endpoint -- same data, same generation
        tokens, different failure domain.
        """
        host = server_host or f"{self.server_host}-m"
        if not fabric.has_host(host):
            fabric.add_host(host, cluster=self.name)
        address = Address.gmond(host)
        tcp.listen(address, self._serve)
        return address
