"""Pseudo-gmond: the paper's controlled workload emulator.

"All experiments employ gmon emulators called pseudo-gmond to generate
controlled Ganglia XML datasets for the monitoring tree.  These agents
behave identically to a cluster's gmon daemons, except their metric
values are chosen randomly.  Their XML output conforms to the Ganglia
DTD, and therefore requires the same processing effort by the gmeta
system under study." (§3)

The emulator keeps a full cluster element tree and re-randomizes the
volatile metric values every ``refresh_interval`` of simulated time
(matching a real cluster's churn between gmetad polls), re-serializing
lazily on the first request after a refresh boundary.  Service latency
is a small constant regardless of cluster size -- the paper notes "care
was taken to ensure the gmon cluster simulators had similar query
latencies for all sizes" so that gmond-side effects stay out of the
gmetad measurements.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set

from repro.metrics.catalog import STRING_DEFAULTS, MetricDef, builtin_catalog
from repro.metrics.types import MetricType, format_value
from repro.net.address import Address
from repro.net.fabric import Fabric
from repro.net.tcp import Response, TcpNetwork
from repro.sim.engine import Engine
from repro.wire.model import ClusterElement, GangliaDocument, HostElement, MetricElement
from repro.wire.writer import write_document


class PseudoGmond:
    """Serves DTD-conformant cluster XML with random values over TCP."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        tcp: TcpNetwork,
        name: str,
        num_hosts: int,
        rng: random.Random,
        refresh_interval: float = 15.0,
        metric_defs: Optional[Sequence[MetricDef]] = None,
        service_seconds: float = 0.002,
        server_host: Optional[str] = None,
    ) -> None:
        if num_hosts <= 0:
            raise ValueError("num_hosts must be positive")
        self.engine = engine
        self.name = name
        self.num_hosts = num_hosts
        self.refresh_interval = refresh_interval
        self.service_seconds = service_seconds
        self._rng = rng
        self._defs: List[MetricDef] = (
            list(metric_defs) if metric_defs is not None else builtin_catalog()
        )
        self.server_host = server_host or f"pgmond-{name}"
        if not fabric.has_host(self.server_host):
            fabric.add_host(self.server_host, cluster=name)
        self._down: Set[int] = set()
        self._last_alive: Dict[int, float] = {}
        self._cluster = self._build_skeleton()
        self._volatile: List[tuple[HostElement, List[tuple[MetricElement, MetricDef]]]] = [
            (
                host,
                [
                    (host.metrics[d.name], d)
                    for d in self._defs
                    if not d.is_constant
                ],
            )
            for host in self._cluster.hosts.values()
        ]
        self._cached_xml: Optional[str] = None
        self._built_at = float("-inf")
        self.requests = 0
        self.refreshes = 0
        tcp.listen(Address.gmond(self.server_host), self._serve)

    # -- construction --------------------------------------------------------

    def _draw(self, mdef: MetricDef) -> str:
        if mdef.mtype is MetricType.STRING:
            return STRING_DEFAULTS.get(mdef.name, f"str{self._rng.randrange(10)}")
        lo, hi = mdef.value_range
        value = self._rng.uniform(lo, hi)
        if mdef.mtype.is_integral:
            return str(int(value))
        return format_value(value, mdef.mtype)

    def _build_skeleton(self) -> ClusterElement:
        cluster = ClusterElement(name=self.name, owner="pseudo", localtime=0.0)
        for i in range(self.num_hosts):
            host = HostElement(
                name=f"{self.name}-0-{i}",
                ip=f"10.{abs(hash(self.name)) % 200}.{i // 250}.{i % 250 + 1}",
                reported=0.0,
                tn=0.0,
                tmax=20.0,
            )
            for mdef in self._defs:
                host.add_metric(
                    MetricElement(
                        name=mdef.name,
                        val=self._draw(mdef),
                        mtype=mdef.mtype,
                        units=mdef.units,
                        tn=0.0,
                        tmax=mdef.tmax,
                        dmax=mdef.dmax,
                        slope=mdef.slope,
                    )
                )
            cluster.add_host(host)
        return cluster

    # -- host up/down control (used by the fault injector) --------------------

    def set_host_down(self, index: int, down: bool = True) -> None:
        """Silence (or revive) the ``index``-th simulated host."""
        if not (0 <= index < self.num_hosts):
            raise IndexError(f"host index {index} out of range")
        if down:
            self._last_alive.setdefault(index, self.engine.now)
            self._down.add(index)
        else:
            self._down.discard(index)
            self._last_alive.pop(index, None)
        self._built_at = float("-inf")  # force re-serialize

    @property
    def down_hosts(self) -> Set[int]:
        return set(self._down)

    # -- serving -----------------------------------------------------------

    def _refresh(self, now: float) -> None:
        self.refreshes += 1
        self._cluster.localtime = now
        hosts = list(self._cluster.hosts.values())
        for i, (host, volatiles) in enumerate(self._volatile):
            if i in self._down:
                # A dead host reports nothing: TN keeps growing.
                silent_since = self._last_alive.get(i, now)
                host.tn = max(0.0, now - silent_since)
                host.reported = silent_since
                continue
            host.tn = self._rng.uniform(0.0, 10.0)
            host.reported = now - host.tn
            for element, mdef in volatiles:
                element.val = self._draw(mdef)
                element.tn = self._rng.uniform(0.0, mdef.collect_every)
        assert len(hosts) == len(self._volatile)
        doc = GangliaDocument(version="2.5.4", source="gmond")
        doc.add_cluster(self._cluster)
        self._cached_xml = write_document(doc)
        self._built_at = now

    def current_xml(self, now: Optional[float] = None) -> str:
        """The XML the emulator would serve right now (refreshing if due)."""
        at = self.engine.now if now is None else now
        if at - self._built_at >= self.refresh_interval or self._cached_xml is None:
            self._refresh(at)
        return self._cached_xml

    def _serve(self, client: str, request: object) -> Response:
        self.requests += 1
        return Response(self.current_xml(), service_seconds=self.service_seconds)

    @property
    def address(self) -> Address:
        return Address.gmond(self.server_host)
