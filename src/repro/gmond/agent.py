"""One gmond agent: collect local metrics, multicast them, listen to peers.

The agent implements gmond's send discipline: each metric has a
collection period, a value threshold (send early when the value moved)
and a ``tmax`` (send anyway when stale).  Every agent also answers TCP
requests with the *entire* cluster state it has assembled from the
multicast channel -- the redundancy gmetad fail-over relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.gmond import xdr
from repro.gmond.config import GmondConfig
from repro.gmond.state import ClusterState
from repro.metrics.generators import MetricSource
from repro.metrics.types import MetricSample, MetricType
from repro.net.address import Address
from repro.net.tcp import Response, TcpNetwork
from repro.net.udp import MulticastChannel
from repro.sim.engine import Engine, PeriodicTask
from repro.wire.binfmt import (
    CODEC_BINARY,
    BinaryFrame,
    encode_cluster_document,
    split_accept,
)
from repro.wire.conditional import (
    NotModified,
    TaggedXml,
    next_epoch,
    split_generation,
)
from repro.wire.model import GangliaDocument
from repro.wire.writer import XmlWriter, _fmt_num, write_document


@dataclass
class MetricMessage:
    """One metric report in logical form.

    The wire carries XDR bytes (see :mod:`repro.gmond.xdr`); this class
    is the decoded view plus the sender identity the receiving socket
    supplies.  ``size_bytes`` is the actual encoded length.
    """

    host: str
    ip: str
    sample: MetricSample

    def to_bytes(self) -> bytes:
        return xdr.encode_metric(self.sample)

    @classmethod
    def from_bytes(
        cls, data: bytes, src_host: str, src_ip: str, received_at: float
    ) -> "MetricMessage":
        sample = xdr.decode_metric(data, received_at=received_at)
        return cls(host=src_host, ip=src_ip, sample=sample)

    @property
    def size_bytes(self) -> int:
        return len(self.to_bytes())


class GmondAgent:
    """Gmond daemon on one simulated cluster host."""

    def __init__(
        self,
        engine: Engine,
        channel: MulticastChannel,
        tcp: TcpNetwork,
        config: GmondConfig,
        source: MetricSource,
        ip: str = "",
        rng: Optional[random.Random] = None,
    ) -> None:
        self.engine = engine
        self.channel = channel
        self.tcp = tcp
        self.config = config
        self.source = source
        self.host = source.host
        self.ip = ip or f"10.0.0.{abs(hash(self.host)) % 250 + 1}"
        fabric_host = channel.fabric.host(self.host)
        if not fabric_host.ip:
            fabric_host.ip = self.ip
        self.state = ClusterState(config)
        self.decode_errors = 0
        self._rng = rng or random.Random(0)
        self._last_sent: Dict[str, tuple[float, object]] = {}  # name -> (time, value)
        self._tasks: List[PeriodicTask] = []
        self._started = False
        self.reports_sent = 0
        self.not_modified_served = 0
        self.binary_served = 0
        self._binfmt_pool = None  # lazy: XML-only pollers never build one
        # incremental serving state (only used when the config flag is on)
        self._serve_epoch = next_epoch(f"gmond-{self.host}")
        self._xml_cache: Optional[tuple[int, str]] = None
        self._host_frags: Dict[str, tuple[int, str]] = {}
        # The agent's own TCP endpoint serving the full cluster report.
        self._server = tcp.listen(Address.gmond(self.host), self._serve_xml)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Join the channel, arm collection timers, send initial reports."""
        if self._started:
            raise RuntimeError(f"gmond on {self.host} already started")
        self._started = True
        self.channel.join(self.host, self._on_datagram)
        jitter = self.config.send_jitter

        def jitter_fn(period: float):
            return lambda: self._rng.uniform(-jitter * period, jitter * period)

        # Group metrics by collection period: one timer per period class.
        by_period: Dict[float, List[str]] = {}
        for mdef in self.config.metric_defs:
            by_period.setdefault(mdef.collect_every, []).append(mdef.name)
        for period, names in by_period.items():
            task = self.engine.every(
                period,
                lambda ns=names: self._collect(ns),
                initial_delay=self._rng.uniform(0.0, period),
                jitter_fn=jitter_fn(period),
            )
            self._tasks.append(task)
        hb = self.config.heartbeat_interval
        self._tasks.append(
            self.engine.every(
                hb,
                self._heartbeat,
                initial_delay=self._rng.uniform(0.0, hb),
                jitter_fn=jitter_fn(hb),
            )
        )
        self._tasks.append(
            self.engine.every(
                self.config.cleanup_interval,
                lambda: self.state.expire(self.engine.now),
            )
        )
        # Announce everything shortly after startup so peers learn us
        # quickly.  The announce is deferred (not inline) so that a batch
        # of agents started in the same event all join the channel before
        # any of them bursts -- real daemons come up seconds apart and
        # rely on tmax retransmits, which also works here but takes
        # minutes for the slow constant metrics.
        self.engine.call_later(
            self._rng.uniform(0.1, 2.0),
            lambda: self._collect(
                [d.name for d in self.config.metric_defs], force=True
            ),
        )

    def stop(self) -> None:
        """Stop all timers and leave the channel (simulates daemon death)."""
        for task in self._tasks:
            task.stop()
        self._tasks.clear()
        self.channel.leave(self.host)
        self.tcp.close(Address.gmond(self.host))
        self._started = False

    # -- sending -----------------------------------------------------------

    def _should_send(self, sample: MetricSample, now: float) -> bool:
        mdef = self.source.definition(sample.name)
        last = self._last_sent.get(sample.name)
        if last is None:
            return True
        last_time, last_value = last
        if now - last_time >= mdef.tmax:
            return True
        if sample.mtype is MetricType.STRING:
            return sample.value != last_value
        try:
            return abs(float(sample.value) - float(last_value)) >= mdef.value_threshold
        except (TypeError, ValueError):
            return True

    def _collect(self, names: List[str], force: bool = False) -> None:
        now = self.engine.now
        for name in names:
            sample = self.source.sample(name, now)
            if force or self._should_send(sample, now):
                self._send(sample, now)

    def _heartbeat(self) -> None:
        now = self.engine.now
        sample = MetricSample(
            name="heartbeat",
            value=int(now),
            mtype=MetricType.UINT32,
            tmax=self.config.heartbeat_interval,
            reported_at=now,
        )
        self._send(sample, now)

    def _send(self, sample: MetricSample, now: float) -> None:
        self._last_sent[sample.name] = (now, sample.value)
        data = xdr.encode_metric(sample)
        self.channel.send(self.host, data, len(data))
        self.reports_sent += 1

    # -- receiving -----------------------------------------------------------

    def _on_datagram(self, src: str, payload: object, size: int) -> None:
        if not isinstance(payload, (bytes, bytearray)):
            self.decode_errors += 1
            return  # foreign datagram on the channel; gmond ignores junk
        try:
            sample = xdr.decode_metric(bytes(payload), received_at=self.engine.now)
        except xdr.XdrError:
            self.decode_errors += 1
            return
        src_ip = self.channel.fabric.host(src).ip if self.channel.fabric.has_host(src) else ""
        self.state.on_metric(src, sample, self.engine.now, ip=src_ip)

    # -- serving ---------------------------------------------------------------

    def _serve_xml(self, client: str, request: object) -> Response:
        """Serve the complete cluster report.

        Plain gmond ignores the request entirely.  With
        ``incremental_serving`` on, an ``ifgen`` query parameter is
        honoured: an unchanged soft-state table answers NOT-MODIFIED,
        and full answers are assembled from per-host fragments keyed by
        each record's version.  The cached report freezes TN/LOCALTIME
        at render time -- the documented staleness trade; with the flag
        off (the default) every serve renders fresh, exactly as before.
        """
        now = self.engine.now
        base, accept = split_accept(str(request))
        wants_binary = (
            self.config.binary_serving and accept == CODEC_BINARY
        )
        if not self.config.incremental_serving:
            if wants_binary:
                return Response(self._render_frame(now))
            doc = GangliaDocument(version="2.5.4", source="gmond")
            doc.add_cluster(self.state.to_cluster_element(now))
            return Response(write_document(doc))
        _, presented = split_generation(base)
        current = f"{self._serve_epoch}:{self.state.version}"
        if presented is not None and presented == current:
            self.not_modified_served += 1
            return Response(NotModified(generation=current, localtime=now))
        if wants_binary:
            # binary always renders fresh (plain-mode semantics): the
            # fragment cache's TN/LOCALTIME freeze is an XML-layer trade
            # the codec does not mirror
            frame = self._render_frame(now)
            if presented is not None:
                return Response(BinaryFrame(frame.data, generation=current))
            return Response(frame)
        xml = self._render_cached(now)
        if presented is not None:
            return Response(TaggedXml(xml, current))
        return Response(xml)

    def _render_frame(self, now: float) -> BinaryFrame:
        """Encode the live cluster report as one binary frame."""
        from repro.columnar.layout import (
            ColumnarDocument,
            InternPool,
            columns_from_cluster,
        )

        if self._binfmt_pool is None:
            self._binfmt_pool = InternPool()
        doc = ColumnarDocument(
            version="2.5.4",
            source="gmond",
            clusters=[
                columns_from_cluster(
                    self.state.to_cluster_element(now), self._binfmt_pool
                )
            ],
        )
        self.binary_served += 1
        return BinaryFrame(encode_cluster_document(doc))

    def _render_cached(self, now: float) -> str:
        """Assemble the report from memoized per-host fragments."""
        version = self.state.version
        if self._xml_cache is not None and self._xml_cache[0] == version:
            return self._xml_cache[1]
        w = XmlWriter()
        w.raw('<?xml version="1.0" encoding="ISO-8859-1" standalone="yes"?>\n')
        w.open_tag("GANGLIA_XML", [("VERSION", "2.5.4"), ("SOURCE", "gmond")])
        attrs = [("NAME", self.config.cluster_name)]
        if self.config.owner:
            attrs.append(("OWNER", self.config.owner))
        attrs.append(("LOCALTIME", _fmt_num(now)))
        if self.config.url:
            attrs.append(("URL", self.config.url))
        w.open_tag("CLUSTER", attrs)
        live = set()
        for name in sorted(self.state.hosts):
            record = self.state.hosts[name]
            live.add(name)
            cached = self._host_frags.get(name)
            if cached is not None and cached[0] == record.version:
                w.raw(cached[1])
                continue
            sub = XmlWriter()
            sub.host(self.state.to_host_element(record, now))
            frag = sub.result()
            self._host_frags[name] = (record.version, frag)
            w.raw(frag)
        for name in list(self._host_frags):
            if name not in live:  # departed host: drop its fragment
                del self._host_frags[name]
        w.close_tag("CLUSTER")
        w.close_tag("GANGLIA_XML")
        xml = w.result()
        self._xml_cache = (version, xml)
        return xml
