"""Soft-state cluster view held (redundantly) by every gmond agent.

"All Gmon agents have redundant global knowledge of the cluster, so that
any node can supply a complete report containing the state of itself and
all its neighbors" (§1).  The state is *soft*: it is refreshed by
multicast traffic and decays via TN/TMAX/DMAX timers, so newly arrived
and departed nodes are incorporated automatically with no registration
step (the paper's contrast with Supermon).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.gmond.config import GmondConfig
from repro.metrics.types import MetricSample
from repro.wire.model import ClusterElement, HostElement, MetricElement


@dataclass
class HostRecord:
    """What one agent knows about one cluster host."""

    name: str
    ip: str = ""
    first_heard: float = 0.0
    last_heard: float = 0.0
    metrics: Dict[str, MetricSample] = field(default_factory=dict)
    #: bumped on every change; keys the agent's serve-side fragment cache
    version: int = 0

    def tn(self, now: float) -> float:
        """Seconds since this host was last heard from."""
        return max(0.0, now - self.last_heard)


class ClusterState:
    """The per-agent soft-state table: host -> metrics."""

    def __init__(self, config: GmondConfig) -> None:
        self.config = config
        self.hosts: Dict[str, HostRecord] = {}
        self.metrics_received = 0
        self.hosts_expired = 0
        #: bumped on every table change; the serve-side content generation
        self.version = 0

    # -- updates -----------------------------------------------------------

    def on_metric(
        self, host: str, sample: MetricSample, now: float, ip: str = ""
    ) -> HostRecord:
        """Incorporate a multicast metric report from ``host``."""
        record = self.hosts.get(host)
        if record is None:
            record = HostRecord(name=host, ip=ip, first_heard=now, last_heard=now)
            self.hosts[host] = record
        record.last_heard = now
        if ip:
            record.ip = ip
        stored = sample.copy()
        stored.reported_at = now
        record.metrics[sample.name] = stored
        self.metrics_received += 1
        record.version += 1
        self.version += 1
        return record

    def expire(self, now: float) -> int:
        """Apply soft-state decay; returns the number of hosts removed.

        Metrics past their DMAX vanish (user metrics whose publisher went
        away); hosts silent longer than ``host_dmax`` are dropped from
        the table entirely.
        """
        removed = 0
        changed = False
        dead_hosts = []
        for host, record in self.hosts.items():
            stale = [
                name
                for name, sample in record.metrics.items()
                if sample.expired(now)
            ]
            for name in stale:
                del record.metrics[name]
            if stale:
                record.version += 1
                changed = True
            if (
                self.config.host_dmax > 0
                and record.tn(now) > self.config.host_dmax
            ):
                dead_hosts.append(host)
        for host in dead_hosts:
            del self.hosts[host]
            removed += 1
            changed = True
        if changed:
            self.version += 1
        self.hosts_expired += removed
        return removed

    # -- queries -----------------------------------------------------------

    def host_count(self) -> int:
        """Number of hosts currently in the soft state."""
        return len(self.hosts)

    def up_down_counts(self, now: float) -> tuple[int, int]:
        """(up, down) by the heartbeat-window liveness rule."""
        up = sum(
            1
            for r in self.hosts.values()
            if r.tn(now) <= self.config.heartbeat_window
        )
        return up, len(self.hosts) - up

    def host(self, name: str) -> Optional[HostRecord]:
        """The record for one host, or None."""
        return self.hosts.get(name)

    def to_host_element(self, record: HostRecord, now: float) -> HostElement:
        """Render one host's HOST element as of time ``now``."""
        host = HostElement(
            name=record.name,
            ip=record.ip,
            reported=record.last_heard,
            tn=record.tn(now),
            tmax=self.config.heartbeat_interval,
            dmax=self.config.host_dmax,
        )
        for sample in record.metrics.values():
            host.add_metric(
                MetricElement(
                    name=sample.name,
                    val=sample.wire_value(),
                    mtype=sample.mtype,
                    units=sample.units,
                    tn=sample.tn(now),
                    tmax=sample.tmax,
                    dmax=sample.dmax,
                    source=sample.source,
                )
            )
        return host

    def to_cluster_element(self, now: float) -> ClusterElement:
        """Render the full-resolution CLUSTER element gmond serves."""
        cluster = ClusterElement(
            name=self.config.cluster_name,
            owner=self.config.owner,
            localtime=now,
            url=self.config.url,
        )
        for record in self.hosts.values():
            cluster.add_host(self.to_host_element(record, now))
        return cluster
