"""Convenience builder: a whole cluster of gmond agents.

Wires H hosts onto one multicast channel with one agent each, so tests
and examples can say::

    cluster = SimulatedCluster.build(engine, fabric, tcp, rngs,
                                     name="meteor", num_hosts=8)
    cluster.start()

and then point a gmetad data source at ``cluster.gmond_addresses()``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.gmond.agent import GmondAgent
from repro.gmond.config import GmondConfig
from repro.metrics.generators import MetricSource, RealisticHostModel
from repro.net.address import Address
from repro.net.fabric import Fabric
from repro.net.tcp import TcpNetwork
from repro.net.udp import MulticastChannel
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


class SimulatedCluster:
    """A named cluster: hosts + multicast channel + gmond agents."""

    def __init__(
        self,
        name: str,
        engine: Engine,
        channel: MulticastChannel,
        agents: List[GmondAgent],
    ) -> None:
        self.name = name
        self.engine = engine
        self.channel = channel
        self.agents = agents
        self._started = False

    @classmethod
    def build(
        cls,
        engine: Engine,
        fabric: Fabric,
        tcp: TcpNetwork,
        rngs: RngRegistry,
        name: str,
        num_hosts: int,
        config: Optional[GmondConfig] = None,
        source_factory: Optional[Callable[[str, "RngRegistry"], MetricSource]] = None,
        loss_rate: float = 0.0,
    ) -> "SimulatedCluster":
        """Create hosts ``<name>-0-0 .. <name>-0-{H-1}`` with agents."""
        if num_hosts <= 0:
            raise ValueError("num_hosts must be positive")
        config = config or GmondConfig(cluster_name=name)
        channel = MulticastChannel(
            engine,
            fabric,
            group=f"{config.multicast_group}/{name}",
            loss_rate=loss_rate,
            rng=rngs.stream(f"mcast:{name}"),
        )
        agents: List[GmondAgent] = []
        for i in range(num_hosts):
            hostname = f"{name}-0-{i}"
            fabric.add_host(hostname, cluster=name)
            if source_factory is not None:
                source = source_factory(hostname, rngs)
            else:
                source = RealisticHostModel(hostname, rngs.stream(f"model:{hostname}"))
            agent = GmondAgent(
                engine,
                channel,
                tcp,
                config,
                source,
                ip=f"10.{abs(hash(name)) % 200}.0.{i + 1}",
                rng=rngs.stream(f"gmond:{hostname}"),
            )
            agents.append(agent)
        return cls(name, engine, channel, agents)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start every agent (joins channels, arms timers)."""
        for agent in self.agents:
            agent.start()
        self._started = True

    def stop(self) -> None:
        """Stop every agent."""
        for agent in self.agents:
            agent.stop()
        self._started = False

    # -- accessors ---------------------------------------------------------

    @property
    def host_names(self) -> List[str]:
        """Names of the cluster's hosts, in index order."""
        return [a.host for a in self.agents]

    def gmond_addresses(self, count: Optional[int] = None) -> List[Address]:
        """TCP endpoints a gmetad can poll, in fail-over order.

        ``count`` limits how many redundant endpoints are handed out
        (real deployments list 2-3 of the cluster's nodes).
        """
        addresses = [Address.gmond(h) for h in self.host_names]
        return addresses if count is None else addresses[:count]

    def agent(self, host: str) -> GmondAgent:
        """The agent running on a given host."""
        for a in self.agents:
            if a.host == host:
                return a
        raise KeyError(f"no agent on host {host!r}")
