"""XDR encoding of gmond metric datagrams.

Real gmond multicasts metrics as XDR (RFC 4506) messages; the sender's
identity comes from the datagram's source address, not the payload.
This module implements the XDR primitives (big-endian u32, padded
counted strings, IEEE floats) and the metric message layout -- the
user-defined/gmetric form of Ganglia 2.5, used here uniformly for all
metrics::

    u32     magic        0x67616E67 ("gang")
    string  type         ("float", "uint32", "string", ...)
    string  name
    string  value        (string-rendered, as gmetric sends it)
    string  units
    u32     slope        (zero=0, positive=1, negative=2, both=3)
    u32     tmax
    u32     dmax
    string  source       ("gmond" | "gmetric")

With this module the simulated channel carries *actual bytes*: datagram
sizes in the traffic benchmark are measured, not estimated, and a
corrupted datagram is detected exactly where the real daemon would
detect it (decode time).
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.metrics.catalog import Slope
from repro.metrics.types import MetricSample, MetricType, coerce_value

MAGIC = 0x67616E67  # "gang": long form (user-defined / gmetric)
SHORT_MAGIC = 0x67616E73  # "gans": short form (builtin metric by id)

_SLOPE_CODE = {
    Slope.ZERO: 0,
    Slope.POSITIVE: 1,
    Slope.NEGATIVE: 2,
    Slope.BOTH: 3,
}
_SLOPE_FROM_CODE = {v: k for k, v in _SLOPE_CODE.items()}


class XdrError(ValueError):
    """Malformed XDR data."""


class XdrEncoder:
    """Accumulates XDR-encoded fields."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def pack_uint(self, value: int) -> "XdrEncoder":
        """Append a big-endian 32-bit unsigned integer."""
        if not (0 <= value < 2**32):
            raise XdrError(f"u32 out of range: {value}")
        self._parts.append(struct.pack(">I", value))
        return self

    def pack_string(self, text: str) -> "XdrEncoder":
        """Append an XDR counted string (padded to 4 bytes)."""
        data = text.encode("utf-8")
        self.pack_uint(len(data))
        padding = (4 - len(data) % 4) % 4
        self._parts.append(data + b"\x00" * padding)
        return self

    def result(self) -> bytes:
        """The encoded bytes."""
        return b"".join(self._parts)


class XdrDecoder:
    """Consumes XDR-encoded fields."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def _take(self, count: int) -> bytes:
        if self._offset + count > len(self._data):
            raise XdrError(
                f"truncated XDR data at offset {self._offset} "
                f"(need {count} bytes of {len(self._data)})"
            )
        chunk = self._data[self._offset : self._offset + count]
        self._offset += count
        return chunk

    def unpack_uint(self) -> int:
        """Consume a big-endian 32-bit unsigned integer."""
        return struct.unpack(">I", self._take(4))[0]

    def unpack_string(self) -> str:
        """Consume an XDR counted string."""
        length = self.unpack_uint()
        if length > len(self._data):
            raise XdrError(f"implausible string length {length}")
        data = self._take(length)
        padding = (4 - length % 4) % 4
        self._take(padding)
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise XdrError(f"bad UTF-8 in string: {exc}") from None

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset


# -- short form: builtin metrics by id ------------------------------------
#
# Real gmond sends each builtin metric as (message id, binary value):
# the name, type, units, slope, tmax and dmax are compiled into every
# agent, so ~30 metrics cost ~12-16 bytes each instead of ~100.  This is
# what keeps a 128-node cluster under the 56 Kbps envelope.

from repro.metrics.catalog import BUILTIN_METRICS, MetricDef  # noqa: E402

_BUILTIN_BY_INDEX: Tuple[MetricDef, ...] = tuple(BUILTIN_METRICS)
_INDEX_BY_NAME = {m.name: i for i, m in enumerate(_BUILTIN_BY_INDEX)}


def _pack_typed_value(encoder: XdrEncoder, value, mtype: MetricType) -> None:
    if mtype is MetricType.STRING:
        encoder.pack_string(str(value))
    elif mtype is MetricType.FLOAT:
        encoder._parts.append(struct.pack(">f", float(value)))
    elif mtype is MetricType.DOUBLE:
        encoder._parts.append(struct.pack(">d", float(value)))
    else:  # integral types travel as signed 64-bit for range safety
        encoder._parts.append(struct.pack(">q", int(value)))


def _unpack_typed_value(decoder: XdrDecoder, mtype: MetricType):
    if mtype is MetricType.STRING:
        return decoder.unpack_string()
    if mtype is MetricType.FLOAT:
        return struct.unpack(">f", decoder._take(4))[0]
    if mtype is MetricType.DOUBLE:
        return struct.unpack(">d", decoder._take(8))[0]
    return struct.unpack(">q", decoder._take(8))[0]


def encode_metric(sample: MetricSample) -> bytes:
    """Serialize one sample: short form for builtins, long for the rest.

    A sample only qualifies for the short form when its metadata matches
    the compiled-in definition -- a builtin *name* republished with
    different units or lifetime (e.g. via gmetric) must travel long-form
    so receivers see the sender's metadata.
    """
    index = _INDEX_BY_NAME.get(sample.name)
    if index is not None and sample.source == "gmond":
        mdef = _BUILTIN_BY_INDEX[index]
        if mdef.mtype is sample.mtype:
            encoder = XdrEncoder()
            encoder.pack_uint(SHORT_MAGIC)
            encoder.pack_uint(index)
            _pack_typed_value(encoder, sample.value, sample.mtype)
            return encoder.result()
    return _encode_metric_long(sample)


def _decode_metric_short(decoder: XdrDecoder, received_at: float) -> MetricSample:
    index = decoder.unpack_uint()
    if index >= len(_BUILTIN_BY_INDEX):
        raise XdrError(f"unknown builtin metric id {index}")
    mdef = _BUILTIN_BY_INDEX[index]
    value = _unpack_typed_value(decoder, mdef.mtype)
    sample = MetricSample(
        name=mdef.name,
        value=value,
        mtype=mdef.mtype,
        units=mdef.units,
        source="gmond",
        tmax=mdef.tmax,
        dmax=mdef.dmax,
        reported_at=received_at,
    )
    sample.extra["slope"] = mdef.slope
    return sample


def _encode_metric_long(sample: MetricSample) -> bytes:
    encoder = XdrEncoder()
    encoder.pack_uint(MAGIC)
    encoder.pack_string(sample.mtype.value)
    encoder.pack_string(sample.name)
    encoder.pack_string(sample.wire_value())
    encoder.pack_string(sample.units)
    encoder.pack_uint(_SLOPE_CODE.get(sample.extra.get("slope", Slope.BOTH), 3))
    encoder.pack_uint(int(sample.tmax))
    encoder.pack_uint(int(sample.dmax))
    encoder.pack_string(sample.source)
    return encoder.result()


def decode_metric(data: bytes, received_at: float = 0.0) -> MetricSample:
    """Parse datagram bytes back into a sample.  Raises XdrError on junk."""
    decoder = XdrDecoder(data)
    magic = decoder.unpack_uint()
    if magic == SHORT_MAGIC:
        return _decode_metric_short(decoder, received_at)
    if magic != MAGIC:
        raise XdrError(f"bad magic 0x{magic:08x}")
    type_text = decoder.unpack_string()
    try:
        mtype = MetricType.parse(type_text)
    except ValueError as exc:
        raise XdrError(str(exc)) from None
    name = decoder.unpack_string()
    if not name:
        raise XdrError("empty metric name")
    raw_value = decoder.unpack_string()
    units = decoder.unpack_string()
    slope_code = decoder.unpack_uint()
    tmax = decoder.unpack_uint()
    dmax = decoder.unpack_uint()
    source = decoder.unpack_string()
    try:
        value = coerce_value(raw_value, mtype)
    except ValueError as exc:
        raise XdrError(str(exc)) from None
    sample = MetricSample(
        name=name,
        value=value,
        mtype=mtype,
        units=units,
        source=source,
        tmax=float(tmax),
        dmax=float(dmax),
        reported_at=received_at,
    )
    sample.extra["slope"] = _SLOPE_FROM_CODE.get(slope_code, Slope.BOTH)
    return sample


def roundtrip_size(sample: MetricSample) -> int:
    """Datagram size in bytes for one sample (for traffic accounting)."""
    return len(encode_metric(sample))
