"""Gmond: Ganglia's local-area cluster monitor.

Gmond agents run on every cluster node and exchange metrics over a UDP
multicast channel, forming "a redundant, leaderless network where nodes
listen to their neighbors rather than polling them".  Every agent holds
soft-state for the whole cluster, so *any* node can serve a complete
cluster report over TCP -- the property gmetad exploits for fail-over
(paper Fig. 1).

:class:`~repro.gmond.pseudo.PseudoGmond` is the paper's experiment
workload generator: it "behaves identically to a cluster's gmon daemons,
except their metric values are chosen randomly", serving DTD-conformant
XML without simulating per-node multicast (which is what makes 500-host
sweeps tractable, for the paper and for us).
"""

from repro.gmond.agent import GmondAgent
from repro.gmond.cluster import SimulatedCluster
from repro.gmond.config import GmondConfig
from repro.gmond.pseudo import PseudoGmond
from repro.gmond.state import ClusterState, HostRecord

__all__ = [
    "GmondConfig",
    "ClusterState",
    "HostRecord",
    "GmondAgent",
    "SimulatedCluster",
    "PseudoGmond",
]
