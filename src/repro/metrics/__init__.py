"""Metric definitions, typed values and host workload generators.

Gmond gathers "heartbeats, hardware/operating system parameters, and
user-defined key-value pairs from every node" -- about 30 metrics per
host.  This package provides the built-in metric catalog (mirroring the
real gmond 2.5 defaults), the typed sample representation that travels in
the XML, and two value sources:

- :class:`~repro.metrics.generators.RandomMetricSource` -- the
  pseudo-gmond behaviour from the paper's evaluation ("their metric
  values are chosen randomly").
- :class:`~repro.metrics.generators.RealisticHostModel` -- mean-reverting
  load walks and monotone counters, used by the examples.
"""

from repro.metrics.catalog import (
    BUILTIN_METRICS,
    CONSTANT_METRICS,
    VOLATILE_METRICS,
    MetricDef,
    Slope,
    builtin_catalog,
    metric_def,
)
from repro.metrics.generators import RandomMetricSource, RealisticHostModel
from repro.metrics.types import MetricSample, MetricType, coerce_value

__all__ = [
    "MetricDef",
    "MetricSample",
    "MetricType",
    "Slope",
    "BUILTIN_METRICS",
    "CONSTANT_METRICS",
    "VOLATILE_METRICS",
    "builtin_catalog",
    "metric_def",
    "coerce_value",
    "RandomMetricSource",
    "RealisticHostModel",
]
