"""Metric value sources: random (pseudo-gmond) and realistic host models.

The paper's experiments use pseudo-gmond agents whose "metric values are
chosen randomly" -- randomness makes the XML payload shape (and therefore
the gmetad processing effort) identical to a real cluster while removing
gmond-side variance.  :class:`RandomMetricSource` implements exactly
that.  :class:`RealisticHostModel` adds mean-reverting load walks and
monotone counters for the example applications, where watching plausible
time series matters.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.metrics.catalog import STRING_DEFAULTS, MetricDef, builtin_catalog
from repro.metrics.types import MetricSample, MetricType


class MetricSource:
    """Interface: produce the current value of each metric for one host."""

    def __init__(self, host: str, defs: Optional[Sequence[MetricDef]] = None) -> None:
        self.host = host
        self.defs: List[MetricDef] = list(defs) if defs is not None else builtin_catalog()
        self._by_name = {d.name: d for d in self.defs}

    def metric_names(self) -> List[str]:
        """Names of all metrics this source produces."""
        return [d.name for d in self.defs]

    def definition(self, name: str) -> MetricDef:
        """The MetricDef for one metric name."""
        return self._by_name[name]

    def sample(self, name: str, now: float) -> MetricSample:
        raise NotImplementedError

    def sample_all(self, now: float) -> List[MetricSample]:
        """Current samples for every metric in the catalog."""
        return [self.sample(d.name, now) for d in self.defs]


class RandomMetricSource(MetricSource):
    """Pseudo-gmond values: uniform draws within each metric's range.

    Constant metrics (cpu_num, os_name, ...) are drawn once at
    construction and held fixed -- a host does not change its CPU count
    mid-experiment, and gmetad summarizes cpu_num sums, so stability
    matters for the summary-invariant tests.
    """

    def __init__(
        self,
        host: str,
        rng: random.Random,
        defs: Optional[Sequence[MetricDef]] = None,
    ) -> None:
        super().__init__(host, defs)
        self._rng = rng
        self._constants: Dict[str, object] = {}
        for d in self.defs:
            if d.is_constant:
                self._constants[d.name] = self._draw(d)

    def _draw(self, d: MetricDef) -> object:
        if d.mtype is MetricType.STRING:
            return STRING_DEFAULTS.get(d.name, f"str-{self._rng.randrange(10)}")
        lo, hi = d.value_range
        value = self._rng.uniform(lo, hi)
        return int(value) if d.mtype.is_integral else value

    def sample(self, name: str, now: float) -> MetricSample:
        d = self._by_name[name]
        value = self._constants[name] if d.is_constant else self._draw(d)
        return MetricSample(
            name=d.name,
            value=value,
            mtype=d.mtype,
            units=d.units,
            source="gmond",
            tmax=d.tmax,
            dmax=d.dmax,
            reported_at=now,
        )


class RealisticHostModel(MetricSource):
    """Plausible host behaviour for the example applications.

    - load_* follow a mean-reverting (Ornstein--Uhlenbeck style) walk
      around a configurable baseline; load_five/fifteen are smoothed
      versions of load_one.
    - cpu_* percentages are derived from the instantaneous load.
    - network byte/packet rates are bursty positives.
    - memory values wander slowly within range.
    """

    def __init__(
        self,
        host: str,
        rng: random.Random,
        defs: Optional[Sequence[MetricDef]] = None,
        baseline_load: float = 0.8,
        burstiness: float = 0.3,
    ) -> None:
        super().__init__(host, defs)
        self._rng = rng
        self.baseline_load = baseline_load
        self.burstiness = burstiness
        self._load1 = max(0.0, rng.gauss(baseline_load, 0.2))
        self._load5 = self._load1
        self._load15 = self._load1
        self._mem_free = rng.uniform(*self._range("mem_free"))
        self._constants: Dict[str, object] = {}
        for d in self.defs:
            if d.is_constant:
                if d.mtype is MetricType.STRING:
                    self._constants[d.name] = STRING_DEFAULTS.get(d.name, "const")
                else:
                    lo, hi = d.value_range
                    v = rng.uniform(lo, hi)
                    self._constants[d.name] = int(v) if d.mtype.is_integral else v
        self._last_step = 0.0

    def _range(self, name: str):
        return self._by_name[name].value_range

    def step(self, now: float) -> None:
        """Advance the internal walks to time ``now``."""
        dt = max(0.0, now - self._last_step)
        self._last_step = now
        if dt == 0.0:
            return
        # mean-reverting load walk; theta controls pull toward baseline
        theta, sigma = 0.05, self.burstiness
        pull = theta * (self.baseline_load - self._load1) * dt
        noise = sigma * (dt**0.5) * self._rng.gauss(0.0, 0.15)
        self._load1 = max(0.0, self._load1 + pull + noise)
        # exponential smoothing approximates the longer load averages
        a5 = min(1.0, dt / 300.0)
        a15 = min(1.0, dt / 900.0)
        self._load5 += a5 * (self._load1 - self._load5)
        self._load15 += a15 * (self._load1 - self._load15)
        lo, hi = self._range("mem_free")
        self._mem_free = min(
            hi, max(lo, self._mem_free + self._rng.gauss(0.0, (hi - lo) * 0.002 * dt))
        )

    def sample(self, name: str, now: float) -> MetricSample:
        self.step(now)
        d = self._by_name[name]
        value: object
        if d.is_constant:
            value = self._constants[name]
        elif name == "load_one":
            value = self._load1
        elif name == "load_five":
            value = self._load5
        elif name == "load_fifteen":
            value = self._load15
        elif name.startswith("cpu_"):
            ncpu = float(self._constants.get("cpu_num", 2)) or 1.0
            busy = min(100.0, 100.0 * self._load1 / ncpu)
            if name == "cpu_idle":
                value = max(0.0, 100.0 - busy)
            elif name == "cpu_aidle":
                value = max(0.0, 100.0 - busy) * 0.9
            elif name == "cpu_user":
                value = busy * 0.7
            elif name == "cpu_system":
                value = busy * 0.2
            elif name == "cpu_wio":
                value = busy * 0.05
            else:  # cpu_nice
                value = busy * 0.05
        elif name == "mem_free":
            value = int(self._mem_free)
        elif name in ("bytes_in", "bytes_out", "pkts_in", "pkts_out"):
            lo, hi = d.value_range
            burst = self._rng.random() ** 3  # occasional spikes
            value = lo + (hi - lo) * 0.01 * (1.0 + 50.0 * burst * self._load1)
            value = min(value, hi)
        elif name == "heartbeat":
            value = int(now)
        else:
            lo, hi = d.value_range
            value = self._rng.uniform(lo, min(hi, lo + (hi - lo) * 0.5))
        if d.mtype.is_integral and not isinstance(value, int):
            value = int(value)
        return MetricSample(
            name=d.name,
            value=value,
            mtype=d.mtype,
            units=d.units,
            source="gmond",
            tmax=d.tmax,
            dmax=d.dmax,
            reported_at=now,
        )
