"""The built-in gmond metric catalog.

"Each node in the cluster has about 30 monitoring metrics, which can also
be user-defined" (Fig. 3 caption).  The definitions below mirror the
gmond 2.5 defaults: identity/constant metrics reported rarely (large
``tmax``) and volatile metrics reported every few seconds with a
value-change threshold.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.metrics.types import MetricType


class Slope(enum.Enum):
    """How a metric's value evolves; stored in RRD metadata."""

    ZERO = "zero"          # constant (cpu_num, os_name)
    POSITIVE = "positive"  # monotone counters (bytes_in)
    NEGATIVE = "negative"
    BOTH = "both"          # free-moving gauges (load_one)


@dataclass(frozen=True)
class MetricDef:
    """Static definition of one metric.

    ``collect_every`` is the local collection period; ``tmax`` the
    maximum interval between multicast reports (a report is forced when
    exceeded even if the value is unchanged); ``value_threshold`` the
    relative change that triggers an early report.
    """

    name: str
    mtype: MetricType
    units: str = ""
    slope: Slope = Slope.BOTH
    collect_every: float = 15.0
    tmax: float = 90.0
    dmax: float = 0.0
    value_threshold: float = 1.0
    value_range: Tuple[float, float] = (0.0, 100.0)

    @property
    def is_numeric(self) -> bool:
        return self.mtype.is_numeric

    @property
    def is_constant(self) -> bool:
        return self.slope is Slope.ZERO


def _d(name, mtype, units="", slope=Slope.BOTH, collect=15.0, tmax=90.0,
       thresh=1.0, vrange=(0.0, 100.0)) -> MetricDef:
    return MetricDef(
        name=name, mtype=mtype, units=units, slope=slope,
        collect_every=collect, tmax=tmax, value_threshold=thresh,
        value_range=vrange,
    )


F, D, S = MetricType.FLOAT, MetricType.DOUBLE, MetricType.STRING
U16, U32 = MetricType.UINT16, MetricType.UINT32

#: gmond 2.5 default metric set (33 metrics).
BUILTIN_METRICS: List[MetricDef] = [
    # -- identity / constant (reported rarely) ---------------------------
    _d("cpu_num", U16, "CPUs", Slope.ZERO, collect=1200, tmax=1200, vrange=(1, 8)),
    _d("cpu_speed", U32, "MHz", Slope.ZERO, collect=1200, tmax=1200, vrange=(1000, 3000)),
    _d("mem_total", U32, "KB", Slope.ZERO, collect=1200, tmax=1200, vrange=(2**19, 2**21)),
    _d("swap_total", U32, "KB", Slope.ZERO, collect=1200, tmax=1200, vrange=(2**19, 2**21)),
    _d("boottime", U32, "s", Slope.ZERO, collect=1200, tmax=1200, vrange=(1e9, 1.1e9)),
    _d("machine_type", S, "", Slope.ZERO, collect=1200, tmax=1200),
    _d("os_name", S, "", Slope.ZERO, collect=1200, tmax=1200),
    _d("os_release", S, "", Slope.ZERO, collect=1200, tmax=1200),
    _d("gexec", S, "", Slope.ZERO, collect=300, tmax=300),
    # -- cpu (volatile) ---------------------------------------------------
    _d("cpu_user", F, "%", collect=20, tmax=90, vrange=(0, 100)),
    _d("cpu_nice", F, "%", collect=20, tmax=90, vrange=(0, 100)),
    _d("cpu_system", F, "%", collect=20, tmax=90, vrange=(0, 100)),
    _d("cpu_idle", F, "%", collect=20, tmax=90, vrange=(0, 100)),
    _d("cpu_wio", F, "%", collect=20, tmax=90, vrange=(0, 100)),
    _d("cpu_aidle", F, "%", collect=20, tmax=90, vrange=(0, 100)),
    # -- load -------------------------------------------------------------
    _d("load_one", F, "", collect=15, tmax=70, thresh=0.05, vrange=(0, 16)),
    _d("load_five", F, "", collect=30, tmax=325, thresh=0.05, vrange=(0, 16)),
    _d("load_fifteen", F, "", collect=60, tmax=950, thresh=0.05, vrange=(0, 16)),
    # -- processes ----------------------------------------------------------
    _d("proc_run", U32, "", collect=60, tmax=950, vrange=(0, 32)),
    _d("proc_total", U32, "", collect=60, tmax=950, vrange=(50, 400)),
    # -- memory -----------------------------------------------------------
    _d("mem_free", U32, "KB", collect=30, tmax=180, vrange=(2**16, 2**20)),
    _d("mem_shared", U32, "KB", collect=30, tmax=180, vrange=(0, 2**18)),
    _d("mem_buffers", U32, "KB", collect=30, tmax=180, vrange=(0, 2**18)),
    _d("mem_cached", U32, "KB", collect=30, tmax=180, vrange=(0, 2**19)),
    _d("swap_free", U32, "KB", collect=30, tmax=180, vrange=(0, 2**20)),
    # -- network (monotone counters reported as rates) ----------------------
    _d("bytes_in", F, "bytes/s", Slope.POSITIVE, collect=40, tmax=300, vrange=(0, 1e8)),
    _d("bytes_out", F, "bytes/s", Slope.POSITIVE, collect=40, tmax=300, vrange=(0, 1e8)),
    _d("pkts_in", F, "pkts/s", Slope.POSITIVE, collect=40, tmax=300, vrange=(0, 1e5)),
    _d("pkts_out", F, "pkts/s", Slope.POSITIVE, collect=40, tmax=300, vrange=(0, 1e5)),
    # -- disk ---------------------------------------------------------------
    _d("disk_total", D, "GB", Slope.ZERO, collect=1200, tmax=1200, vrange=(10, 500)),
    _d("disk_free", D, "GB", collect=180, tmax=930, vrange=(1, 500)),
    _d("part_max_used", F, "%", collect=180, tmax=930, vrange=(0, 100)),
    # -- heartbeat (gmond liveness; tn resets on every multicast) ----------
    _d("heartbeat", U32, "", collect=20, tmax=20, vrange=(0, 2**32 - 1)),
]

_BY_NAME: Dict[str, MetricDef] = {m.name: m for m in BUILTIN_METRICS}

#: Names of metrics with Slope.ZERO (never summarized into rate archives).
CONSTANT_METRICS: List[str] = [m.name for m in BUILTIN_METRICS if m.is_constant]
#: Names of the frequently-changing metrics.
VOLATILE_METRICS: List[str] = [m.name for m in BUILTIN_METRICS if not m.is_constant]

#: Default string values for the constant string metrics.
STRING_DEFAULTS: Dict[str, str] = {
    "machine_type": "x86",
    "os_name": "Linux",
    "os_release": "2.4.18-27.7.xsmp",
    "gexec": "OFF",
}


def builtin_catalog() -> List[MetricDef]:
    """A fresh list of the built-in metric definitions."""
    return list(BUILTIN_METRICS)


def metric_def(name: str) -> MetricDef:
    """Look up a built-in metric definition by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown builtin metric {name!r}") from None


def user_metric(
    name: str,
    mtype: MetricType = MetricType.FLOAT,
    units: str = "",
    collect_every: float = 30.0,
    tmax: float = 120.0,
    dmax: float = 0.0,
    value_range: Tuple[float, float] = (0.0, 1.0),
) -> MetricDef:
    """Create a user-defined metric (the paper's key--value pairs).

    User metrics carry ``dmax`` by default so they disappear when the
    publishing application stops refreshing them, per gmetric semantics.
    """
    if name in _BY_NAME:
        raise ValueError(f"{name!r} collides with a builtin metric")
    return MetricDef(
        name=name,
        mtype=mtype,
        units=units,
        slope=Slope.BOTH,
        collect_every=collect_every,
        tmax=tmax,
        dmax=dmax if dmax else 4 * tmax,
        value_range=value_range,
    )
