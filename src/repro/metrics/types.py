"""Typed metric values as they appear in the Ganglia XML.

The wire format carries every value as a string plus a ``TYPE``
attribute; this module defines the type vocabulary and the conversions
both endpoints use.  Only numeric types can be summarized -- "a drawback
of both designs is that only numeric metrics can be reliably summarized"
(§2.2) -- so :meth:`MetricType.is_numeric` is load-bearing for the
summarizer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union

Value = Union[int, float, str]


class MetricType(enum.Enum):
    """Ganglia metric value types (gmond 2.5 vocabulary)."""

    STRING = "string"
    INT8 = "int8"
    UINT8 = "uint8"
    INT16 = "int16"
    UINT16 = "uint16"
    INT32 = "int32"
    UINT32 = "uint32"
    FLOAT = "float"
    DOUBLE = "double"
    #: plain TYPE="int" appears in the paper's XML example; accept it.
    INT = "int"

    @property
    def is_numeric(self) -> bool:
        return self is not MetricType.STRING

    @property
    def is_integral(self) -> bool:
        return self.is_numeric and self not in (MetricType.FLOAT, MetricType.DOUBLE)

    @classmethod
    def parse(cls, text: str) -> "MetricType":
        """Parse a TYPE attribute value into a MetricType."""
        try:
            return cls(text)
        except ValueError:
            raise ValueError(f"unknown metric TYPE {text!r}") from None


_INT_BOUNDS = {
    MetricType.INT8: (-(2**7), 2**7 - 1),
    MetricType.UINT8: (0, 2**8 - 1),
    MetricType.INT16: (-(2**15), 2**15 - 1),
    MetricType.UINT16: (0, 2**16 - 1),
    MetricType.INT32: (-(2**31), 2**31 - 1),
    MetricType.UINT32: (0, 2**32 - 1),
    MetricType.INT: (-(2**31), 2**31 - 1),
}


def coerce_value(raw: str, mtype: MetricType) -> Value:
    """Convert a wire string to a Python value, clamping integral ranges.

    Real gmond clamps rather than errors on out-of-range counters (they
    wrap in C); clamping keeps the simulated pipeline total -- a parse
    never fails because a counter grew large.
    """
    if mtype is MetricType.STRING:
        return raw
    if mtype.is_integral:
        try:
            value = int(float(raw))
        except ValueError:
            raise ValueError(f"bad integral value {raw!r} for {mtype.value}") from None
        lo, hi = _INT_BOUNDS[mtype]
        return min(max(value, lo), hi)
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"bad float value {raw!r} for {mtype.value}") from None


def format_value(value: Value, mtype: MetricType) -> str:
    """Render a Python value the way gmond prints it into XML."""
    if mtype is MetricType.STRING:
        return str(value)
    if mtype.is_integral:
        return str(int(value))
    # Gmond prints floats with %.2f-ish precision; we keep more digits so
    # summaries round-trip, but strip trailing zeros for compactness.
    text = f"{float(value):.4f}"
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text or "0"


@dataclass(slots=True)
class MetricSample:
    """One metric observation as held in monitor state.

    ``tn`` is seconds since the value was last reported; ``tmax`` the
    maximum expected reporting interval; ``dmax`` the soft-state lifetime
    (0 = never expire).  These mirror gmond's TN/TMAX/DMAX attributes and
    drive the soft-state expiry in :mod:`repro.gmond.state`.
    """

    name: str
    value: Value
    mtype: MetricType
    units: str = ""
    source: str = "gmond"
    tmax: float = 60.0
    dmax: float = 0.0
    reported_at: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def is_numeric(self) -> bool:
        return self.mtype.is_numeric

    def numeric(self) -> float:
        """The value as float; TypeError for string metrics."""
        if not self.is_numeric:
            raise TypeError(f"metric {self.name!r} is a string metric")
        return float(self.value)

    def tn(self, now: float) -> float:
        """Seconds since this sample was (re)reported."""
        return max(0.0, now - self.reported_at)

    def expired(self, now: float) -> bool:
        """Soft-state expiry: dmax seconds without a refresh."""
        return self.dmax > 0 and self.tn(now) > self.dmax

    def wire_value(self) -> str:
        """The value rendered the way it travels in XML."""
        return format_value(self.value, self.mtype)

    def copy(self) -> "MetricSample":
        """Deep-enough copy (extra dict duplicated)."""
        return MetricSample(
            name=self.name,
            value=self.value,
            mtype=self.mtype,
            units=self.units,
            source=self.source,
            tmax=self.tmax,
            dmax=self.dmax,
            reported_at=self.reported_at,
            extra=dict(self.extra),
        )
