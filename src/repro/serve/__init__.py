"""Columnar serve fast path: query replies straight from the columns.

The ingest side went columnar in PR 5 and the wire went binary in PR 7,
but serving still rebuilt a DOM (``SourceSnapshot.ensure_hosts``) for
any detail or ``/source/host`` query.  This package renders Ganglia XML
directly from :class:`~repro.columnar.layout.ColumnarCluster` arrays --
no :class:`~repro.wire.model.HostElement` tree is ever built -- and
keeps a per-source :class:`~repro.serve.arena.FragmentArena` of
pre-rendered per-host byte fragments that is invalidated per host on
delta updates, so a detail reply is a join of mostly-reused strings.

Gated by ``GmetadConfig.columnar_serve``; off means byte-identical
behaviour, on means byte-identical *replies* served without
materialization.
"""

from repro.serve.arena import FragmentArena
from repro.serve.fragments import (
    columnar_detail_frame,
    memoized_source_fragment,
    summary_cluster_element,
)
from repro.serve.render import render_cluster, render_host, render_metric_row

__all__ = [
    "FragmentArena",
    "columnar_detail_frame",
    "memoized_source_fragment",
    "summary_cluster_element",
    "render_cluster",
    "render_host",
    "render_metric_row",
]
