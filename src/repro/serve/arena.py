"""Per-source arena of pre-rendered per-host XML fragments.

One :class:`FragmentArena` lives per cluster data source on a
columnar-serve daemon.  At install time it renders (or incrementally
re-renders) one byte fragment per host straight from the SoA columns;
at serve time a detail reply is the CLUSTER open tag plus a join of the
per-host strings -- no DOM, no re-serialization of unchanged hosts.

Invalidation reuses the columnar delta machinery: when the incoming
poll has the same layout as the previous one
(:meth:`ColumnarCluster.same_layout` -- host identity/order, metric
identity/order, TYPE/UNITS/SLOPE, validity), only hosts whose rendered
bytes could have moved are re-rendered.  ``same_layout`` deliberately
excludes exactly the per-row attributes that *do* reach the wire --
VAL, TN/TMAX/DMAX, SOURCE -- plus the per-host scalars, so the diff
here compares those and reduces per-row changes onto the host axis with
one ``bincount``.  NaN compares unequal to itself, so NaN-carrying rows
re-render every install: over-invalidation is allowed, staleness is not
(``test_serve_churn`` pins this).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.serve.render import (
    EscapedPool,
    NumFormatter,
    cluster_open_tag,
    render_host,
    render_metric_row,
)


class FragmentArena:
    """Pre-rendered per-host fragments for one source's current columns."""

    __slots__ = (
        "cols",
        "_frags",
        "_order",
        "_open_tag",
        "_fmt",
        "_esc",
        "_order_cache",
        "_fresh_bytes",
        "_fresh_hosts",
        "_total_bytes",
        "frag_hits",
        "frag_misses",
        "frag_invalidations",
    )

    def __init__(self) -> None:
        self.cols = None
        self._frags: List[str] = []
        self._order: List[int] = []
        self._open_tag = ""
        self._fmt = NumFormatter()
        self._esc: Optional[EscapedPool] = None
        self._order_cache: dict = {}
        self._fresh_bytes = 0
        self._fresh_hosts = 0
        self._total_bytes = 0
        #: fragments spliced into replies without re-rendering
        self.frag_hits = 0
        #: fragments rendered (initial builds and re-renders)
        self.frag_misses = 0
        #: fragments invalidated by a per-host delta diff
        self.frag_invalidations = 0

    # -- install-time maintenance -----------------------------------------

    def install(self, cols) -> None:
        """Adopt one poll's columns, re-rendering only what changed."""
        prev = self.cols
        if self._esc is None or self._esc._pool is not cols.pool:
            self._esc = EscapedPool(cols.pool)
        if prev is not None and cols.same_layout(prev):
            changed = self._changed_hosts(prev, cols)
            frags = self._frags
            for h in np.nonzero(changed)[0]:
                h = int(h)
                fragment = render_host(
                    cols, h, self._fmt, self._esc, self._order_cache
                )
                self._fresh_bytes += len(fragment)
                frags[h] = fragment
            count = int(changed.sum())
            self._fresh_hosts += count
            self.frag_invalidations += count
            self.frag_misses += count
            # host order is keyed by names, which same_layout guarantees
        else:
            names = cols.host_names
            self._frags = [
                render_host(cols, h, self._fmt, self._esc, self._order_cache)
                for h in range(len(names))
            ]
            self._order = sorted(range(len(names)), key=names.__getitem__)
            self.frag_misses += len(names)
            self._fresh_bytes += sum(map(len, self._frags))
            self._fresh_hosts += len(names)
        self._open_tag = cluster_open_tag(cols)
        self._total_bytes = sum(map(len, self._frags))
        self.cols = cols

    @staticmethod
    def _changed_hosts(prev, cols) -> np.ndarray:
        """Per-host mask of fragments whose serialized bytes may differ."""
        host_count = cols.host_count
        row_changed = (
            (cols.metric_tn != prev.metric_tn)
            | (cols.metric_tmax != prev.metric_tmax)
            | (cols.metric_dmax != prev.metric_dmax)
            | (cols.source_ids != prev.source_ids)
        )
        # NaN placeholders make `values` useless for equality; the raw
        # VAL strings are what reach the wire anyway
        row_changed |= np.fromiter(
            (a != b for a, b in zip(cols.vals_raw, prev.vals_raw)),
            dtype=bool,
            count=len(cols.vals_raw),
        )
        host_changed = (
            np.bincount(
                cols.row_host[row_changed], minlength=host_count
            ).astype(bool)
        )
        host_changed |= cols.host_reported != prev.host_reported
        host_changed |= cols.host_tn != prev.host_tn
        host_changed |= cols.host_tmax != prev.host_tmax
        host_changed |= cols.host_dmax != prev.host_dmax
        if cols.host_ip != prev.host_ip:
            host_changed |= np.fromiter(
                (a != b for a, b in zip(cols.host_ip, prev.host_ip)),
                dtype=bool,
                count=host_count,
            )
        # host_location never serializes, so it cannot move the bytes
        return host_changed

    # -- serve-time reads ---------------------------------------------------

    @property
    def open_tag(self) -> str:
        """The CLUSTER opening tag for the current columns."""
        return self._open_tag

    def detail_fragment(self) -> Tuple[str, int]:
        """(full CLUSTER fragment, bytes spliced from reused fragments).

        The reused-byte count feeds ``QueryStats.bytes_from_cache`` so
        the host daemon charges unchanged hosts at the memcpy rate
        (``serve_byte_cached``) -- the in-simulation face of the fast
        path.  Fragments rendered since the last read count as fresh
        exactly once.
        """
        frags = self._frags
        parts = [self._open_tag]
        parts.extend(frags[h] for h in self._order)
        parts.append("</CLUSTER>\n")
        fresh_bytes = min(self._fresh_bytes, self._total_bytes)
        fresh_hosts = min(self._fresh_hosts, len(frags))
        self._fresh_bytes = 0
        self._fresh_hosts = 0
        self.frag_hits += len(frags) - fresh_hosts
        return "".join(parts), self._total_bytes - fresh_bytes

    def host_fragment(self, host_name: str) -> Optional[str]:
        """The pre-rendered HOST fragment, or None if unknown."""
        cols = self.cols
        if cols is None:
            return None
        h = cols.host_index.get(host_name)
        if h is None:
            return None
        self.frag_hits += 1
        return self._frags[h]

    def metric_line(self, host_name: str, metric_name: str) -> Optional[str]:
        """One METRIC element rendered by row-slice, or None if unknown."""
        cols = self.cols
        if cols is None:
            return None
        h = cols.host_index.get(host_name)
        if h is None:
            return None
        name_id = cols.pool.lookup(metric_name)
        if name_id is None:
            return None
        start = int(cols.host_row_start[h])
        end = int(cols.host_row_start[h + 1])
        rows = np.nonzero(cols.name_ids[start:end] == name_id)[0]
        if len(rows) == 0:
            return None
        return render_metric_row(
            cols, start + int(rows[0]), self._fmt, self._esc
        )
