"""Shared per-source fragment logic for the serving paths.

Two pieces of serve-side logic had drifted into near-duplicate copies:

- the *hostless-shell synthesis* for a cluster snapshot installed
  without an attached rollup (``QueryEngine._source_fragment`` and
  ``Gmetad.serve_binary`` each built their own shell element);
- the *stamp/frag-cache splice* deciding whether a source's serialized
  fragment can be reused (``QueryEngine._write_tree`` and
  ``ReplicationFeed._fragment`` each compared stamps and probed
  ``frag_cache`` themselves).

Both live here now; the callers keep their own CPU-charging and stats
accounting, which is the part that legitimately differs per caller.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.wire.model import ClusterElement


def summary_cluster_element(snapshot) -> ClusterElement:
    """The element a cluster source's summary form serializes from.

    Normally the installed cluster element itself (it carries the
    rollup).  A snapshot installed without an attached rollup --
    shouldn't happen via ``Gmetad.ingest``, but the engines stay total
    -- gets a synthesized hostless shell carrying the snapshot-level
    summary; the shell deliberately omits OWNER/URL, matching what the
    serializers always emitted for this case.
    """
    cluster = snapshot.cluster
    if cluster.summary is None:
        return ClusterElement(
            name=cluster.name,
            localtime=cluster.localtime,
            summary=snapshot.summary,
        )
    return cluster


def memoized_source_fragment(
    query_engine, snapshot, form: str, stats=None
) -> Tuple[str, bool]:
    """Splice one source's fragment from its cache, or serialize it.

    ``form`` is ``"full"`` or ``"summary"``.  Returns
    ``(fragment, from_cache)``: the cache hits when the stored stamp
    still matches the snapshot's serialization stamp for that form
    (:class:`~repro.core.datastore.Datastore` bumps stamps on every
    content change).  On a miss the freshly serialized fragment is
    stored back under the current stamp.
    """
    summary = form == "summary"
    stamp = snapshot.summary_stamp if summary else snapshot.detail_stamp
    cached: Optional[Tuple[int, str]] = snapshot.frag_cache.get(form)
    if cached is not None and cached[0] == stamp:
        return cached[1], True
    fragment = query_engine._source_fragment(snapshot, summary, stats)
    snapshot.frag_cache[form] = (stamp, fragment)
    return fragment, False


def columnar_detail_frame(snapshot, version: str) -> Optional[bytes]:
    """A GBF1 CLUSTER_DOC frame for one cluster source's held columns.

    The no-XML serving path shared by the ingest daemon and the read
    replicas: a ``bin1``-capable viewer asking for ``/source`` gets the
    columns re-framed, never serialized to text.  Returns None (caller
    falls back to the XML engine) for sources without columns or when
    the encoder declines.
    """
    if (
        snapshot is None
        or snapshot.kind != "cluster"
        or snapshot.columns is None
    ):
        return None
    from repro.columnar.layout import ColumnarDocument
    from repro.wire.binfmt import FrameError, encode_cluster_document

    cdoc = ColumnarDocument(
        version=version, source="gmetad", clusters=[snapshot.columns]
    )
    try:
        return encode_cluster_document(cdoc)
    except FrameError:
        return None
