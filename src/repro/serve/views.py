"""Columnar read views: ``ensure_hosts``-free accessors for consumers.

Several read-side consumers (the static frontend, the ``gstat`` tools,
the VO directory, the drift auditor) used to force a whole-cluster DOM
materialization just to look at a handful of per-host values.  On a
columnar daemon those reads can be answered by row-slice:

- :func:`has_live_columns` is the dispatch test -- columns held, DOM
  not yet built, at least one host (empty clusters keep the DOM path,
  mirroring the serve engine's empty-cluster fallback);
- :func:`host_statuses` extracts the (name, up, load_one, cpu_num)
  tuples the cluster views and status lines consume, vectorized over
  the host axis;
- :func:`host_metric_items` yields one host's (metric name, raw VAL)
  pairs in row order -- the same order the DOM's insertion-ordered
  metric dict iterates;
- :func:`busiest_from_columns` is the columnar twin of
  :func:`repro.analysis.loadstats.busiest_hosts` (same liveness gate,
  same stable-sort tie-breaking by host order);
- :func:`transient_full_cluster` builds a throwaway full-form element
  tree for consumers that genuinely need one (the drift auditor's
  eager re-fold) *without* mutating the snapshot -- the serve path's
  zero-materialization invariant stays intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np


@dataclass(slots=True)
class HostStatus:
    """One host's liveness and headline metrics, however obtained."""

    name: str
    up: bool
    load_one: Optional[float]
    cpu_num: Optional[int]


def has_live_columns(snapshot) -> bool:
    """Whether reads on this snapshot should slice columns, not the DOM."""
    cols = getattr(snapshot, "columns", None)
    cluster = getattr(snapshot, "cluster", None)
    return (
        cols is not None
        and cluster is not None
        and not cluster.hosts
        and cols.host_count > 0
    )


def _per_host_numeric(cols, metric_name: str) -> List[Optional[float]]:
    """One metric's numeric value per host (None where absent/non-numeric)."""
    out: List[Optional[float]] = [None] * cols.host_count
    name_id = cols.pool.lookup(metric_name)
    if name_id is None:
        return out
    rows = np.nonzero((cols.name_ids == name_id) & cols.numeric)[0]
    row_host = cols.row_host
    values = cols.values
    for r in rows:
        out[int(row_host[r])] = float(values[r])
    return out


def host_statuses(cols, heartbeat_window: float) -> List[HostStatus]:
    """Per-host status rows in column (parse) order."""
    up = cols.host_tn <= heartbeat_window
    load = _per_host_numeric(cols, "load_one")
    cpus = _per_host_numeric(cols, "cpu_num")
    return [
        HostStatus(
            name=cols.host_names[h],
            up=bool(up[h]),
            load_one=load[h],
            cpu_num=None if cpus[h] is None else int(cpus[h]),
        )
        for h in range(cols.host_count)
    ]


def host_metric_items(cols, h: int) -> Iterator[Tuple[str, str]]:
    """One host's (metric name, raw VAL) pairs in row order."""
    strings = cols.pool.strings
    start = int(cols.host_row_start[h])
    end = int(cols.host_row_start[h + 1])
    for r in range(start, end):
        yield strings[cols.name_ids[r]], cols.vals_raw[r]


def host_is_up(cols, h: int, heartbeat_window: float) -> bool:
    """The DOM's ``HostElement.is_up`` liveness rule, by row-slice."""
    return float(cols.host_tn[h]) <= heartbeat_window


def busiest_from_columns(
    cols,
    metric: str = "load_one",
    count: int = 5,
    heartbeat_window: float = 80.0,
) -> List[Tuple[str, float]]:
    """Top-N live hosts by a numeric metric, straight from the columns.

    Mirrors :func:`repro.analysis.loadstats.busiest_hosts` exactly:
    only live hosts compete, non-numeric carriers are skipped, and ties
    keep host (insertion) order via the stable sort.
    """
    values = _per_host_numeric(cols, metric)
    up = cols.host_tn <= heartbeat_window
    loads = [
        (cols.host_names[h], values[h])
        for h in range(cols.host_count)
        if up[h] and values[h] is not None
    ]
    loads.sort(key=lambda pair: -pair[1])
    return loads[:count]


def transient_full_cluster(cols):
    """A throwaway full-form ClusterElement materialized off-snapshot.

    For consumers that need the complete element tree (e.g. the drift
    auditor's independent eager re-fold) without flipping the
    snapshot's lazy shell -- ``Datastore.materializations`` does not
    move, so the serve path's zero-materialization invariant holds.
    """
    return cols.materialize_into(cols.shell_cluster())
