"""Render Ganglia XML fragments straight from ColumnarCluster arrays.

Every function here must produce the *exact* bytes
:class:`~repro.wire.writer.XmlWriter` would for the materialized tree --
payload lengths drive the simulation's transfer times and CPU charges,
and the columnar-serve equivalence suite diffs replies byte-for-byte.
The formatting choke points are therefore shared, not reimplemented:
numeric attributes go through :func:`~repro.wire.writer._fmt_num`
(including its ``-0`` normalization and its ValueError on NaN) and
string attributes through :func:`~repro.wire.escape.escape_attr`.

What makes this faster than materialize-then-serialize is memoization
keyed on the columnar layout: numeric attribute texts are cached per
float value (TN/TMAX/DMAX draw from tiny value sets), escaped strings
are cached per intern-pool id, and per-host metric sort orders are
cached per name-id segment (hosts of one cluster share a layout).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.wire.escape import escape_attr
from repro.wire.writer import _fmt_num

#: memo bound: numeric texts per formatter (REPORTED/LOCALTIME move every
#: poll, so an unbounded cache would grow for the life of the daemon)
_FMT_CACHE_LIMIT = 1 << 16
#: memo bound: distinct per-host metric layouts
_ORDER_CACHE_LIMIT = 4096


class NumFormatter:
    """Memoized :func:`_fmt_num`.

    NaN never caches (it is unequal to itself, so the dict probe always
    misses) and raises the same ValueError the writer's formatter does.
    """

    __slots__ = ("_cache",)

    def __init__(self) -> None:
        self._cache: Dict[float, str] = {}

    def __call__(self, value: float) -> str:
        cache = self._cache
        try:
            return cache[value]
        except KeyError:
            text = _fmt_num(value)
            if len(cache) >= _FMT_CACHE_LIMIT:
                cache.clear()
            cache[value] = text
            return text


class EscapedPool:
    """``escape_attr(pool.strings[i])`` memoized parallel to the pool.

    Pool strings are append-only, so the escaped list extends lazily and
    never invalidates.
    """

    __slots__ = ("_pool", "_escaped")

    def __init__(self, pool) -> None:
        self._pool = pool
        self._escaped: List[str] = []

    def __getitem__(self, i: int) -> str:
        escaped = self._escaped
        if i >= len(escaped):
            strings = self._pool.strings
            escaped.extend(escape_attr(s) for s in strings[len(escaped):])
        return escaped[i]


def metric_order(cols, start: int, end: int, cache: Optional[dict] = None) -> List[int]:
    """Relative row order serializing host rows sorted by metric name.

    Mirrors the writer's ``sorted(host.metrics)`` over the dict the tree
    builder keys by name (rows are deduplicated per host, so names are
    unique within a segment).
    """
    seg = cols.name_ids[start:end]
    key = seg.tobytes() if cache is not None else None
    if cache is not None:
        order = cache.get(key)
        if order is not None:
            return order
    strings = cols.pool.strings
    order = sorted(range(end - start), key=lambda j: strings[seg[j]])
    if cache is not None:
        if len(cache) >= _ORDER_CACHE_LIMIT:
            cache.clear()
        cache[key] = order
    return order


def render_metric_row(
    cols, r: int, fmt: NumFormatter, esc: EscapedPool
) -> str:
    """One METRIC element, byte-identical to :meth:`XmlWriter.metric`.

    TYPE and SLOPE are written as raw pool strings: their ids were
    validated against the DTD vocabulary at intern time, so the pool
    text *is* the enum value the writer emits (unescaped by both).
    """
    pool = cols.pool
    units_id = cols.units_ids[r]
    units = "" if units_id == pool.empty_id else f' UNITS="{esc[units_id]}"'
    return (
        f'<METRIC NAME="{esc[cols.name_ids[r]]}" VAL="{escape_attr(cols.vals_raw[r])}"'
        f' TYPE="{pool.strings[cols.type_ids[r]]}"{units}'
        f' TN="{fmt(cols.metric_tn[r])}" TMAX="{fmt(cols.metric_tmax[r])}"'
        f' DMAX="{fmt(cols.metric_dmax[r])}" SLOPE="{pool.strings[cols.slope_ids[r]]}"'
        f' SOURCE="{esc[cols.source_ids[r]]}"/>\n'
    )


def render_host(
    cols,
    h: int,
    fmt: NumFormatter,
    esc: EscapedPool,
    order_cache: Optional[dict] = None,
) -> str:
    """One HOST element with its METRIC children, as the writer emits it.

    LOCATION is carried in the columns but never serialized -- same as
    :meth:`XmlWriter.host`.
    """
    starts = cols.host_row_start
    start = int(starts[h])
    end = int(starts[h + 1])
    ip = cols.host_ip[h]
    ip_part = f' IP="{escape_attr(ip)}"' if ip else ""
    head = (
        f'<HOST NAME="{escape_attr(cols.host_names[h])}"{ip_part}'
        f' REPORTED="{fmt(cols.host_reported[h])}" TN="{fmt(cols.host_tn[h])}"'
        f' TMAX="{fmt(cols.host_tmax[h])}" DMAX="{fmt(cols.host_dmax[h])}"'
    )
    if start == end:
        return head + "/>\n"
    parts = [head + ">\n"]
    append = parts.append
    for j in metric_order(cols, start, end, order_cache):
        append(render_metric_row(cols, start + j, fmt, esc))
    append("</HOST>\n")
    return "".join(parts)


def cluster_open_tag(cols) -> str:
    """The CLUSTER opening tag for one poll's columns."""
    parts = [f'<CLUSTER NAME="{escape_attr(cols.name)}"']
    if cols.owner:
        parts.append(f' OWNER="{escape_attr(cols.owner)}"')
    parts.append(f' LOCALTIME="{_fmt_num(cols.localtime)}"')
    if cols.url:
        parts.append(f' URL="{escape_attr(cols.url)}"')
    parts.append(">\n")
    return "".join(parts)


def render_cluster(
    cols,
    fmt: Optional[NumFormatter] = None,
    esc: Optional[EscapedPool] = None,
    order_cache: Optional[dict] = None,
) -> str:
    """A full CLUSTER fragment (hosts sorted by name) from the columns.

    One-shot entry point for consumers without an arena (e.g. rendering
    a decoded binary frame to XML without materializing a DOM).
    """
    fmt = fmt or NumFormatter()
    esc = esc or EscapedPool(cols.pool)
    if order_cache is None:
        order_cache = {}
    names = cols.host_names
    parts = [cluster_open_tag(cols)]
    append = parts.append
    for h in sorted(range(len(names)), key=names.__getitem__):
        append(render_host(cols, h, fmt, esc, order_cache))
    append("</CLUSTER>\n")
    return "".join(parts)
