"""Summarize trace-span dumps from the self-observability layer.

The ``repro-sim trace`` CLI (and the ``--trace`` benchmark artifact)
emit JSON-lines span dumps -- one :class:`repro.obs.spans.Span` per
line.  This module folds a dump into per-phase (and per-daemon)
aggregates: counts, total/mean/max duration in simulated seconds.  It
answers the operator's first question about a monitoring daemon --
*where does the time go* -- from nothing but the trace artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.spans import Span, parse_jsonl


@dataclass
class PhaseStats:
    """Aggregate over every span of one phase (optionally one daemon)."""

    name: str
    count: int = 0
    total_duration: float = 0.0
    max_duration: float = 0.0
    first_start: float = float("inf")
    last_end: float = 0.0

    def fold(self, span: Span) -> None:
        self.count += 1
        self.total_duration += span.duration
        if span.duration > self.max_duration:
            self.max_duration = span.duration
        if span.start < self.first_start:
            self.first_start = span.start
        if span.end > self.last_end:
            self.last_end = span.end

    @property
    def mean_duration(self) -> float:
        return self.total_duration / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Per-phase and per-daemon aggregates over one span dump."""

    spans: int = 0
    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    daemons: Dict[str, Dict[str, PhaseStats]] = field(default_factory=dict)

    @property
    def phase_names(self) -> List[str]:
        return sorted(self.phases)

    @property
    def daemon_names(self) -> List[str]:
        return sorted(self.daemons)

    def report(self) -> str:
        """Human-readable table, one row per phase (durations in sim-s)."""
        lines = [
            f"trace summary: {self.spans} spans, "
            f"{len(self.daemons)} daemons, {len(self.phases)} phases",
            "",
            f"{'phase':<12s} {'count':>7s} {'total_s':>10s} "
            f"{'mean_s':>10s} {'max_s':>10s}",
        ]
        for name in self.phase_names:
            stats = self.phases[name]
            lines.append(
                f"{name:<12s} {stats.count:>7d} "
                f"{stats.total_duration:>10.6f} "
                f"{stats.mean_duration:>10.6f} "
                f"{stats.max_duration:>10.6f}"
            )
        for daemon in self.daemon_names:
            lines.append("")
            lines.append(f"daemon {daemon}:")
            per_phase = self.daemons[daemon]
            for name in sorted(per_phase):
                stats = per_phase[name]
                lines.append(
                    f"  {name:<10s} {stats.count:>7d} "
                    f"{stats.total_duration:>10.6f} "
                    f"{stats.mean_duration:>10.6f} "
                    f"{stats.max_duration:>10.6f}"
                )
        return "\n".join(lines)


def summarize_spans(spans: Iterable[Span]) -> TraceSummary:
    """Fold spans into a :class:`TraceSummary`."""
    summary = TraceSummary()
    for span in spans:
        summary.spans += 1
        phase = summary.phases.get(span.name)
        if phase is None:
            phase = summary.phases[span.name] = PhaseStats(span.name)
        phase.fold(span)
        per_daemon = summary.daemons.setdefault(span.daemon, {})
        daemon_phase = per_daemon.get(span.name)
        if daemon_phase is None:
            daemon_phase = per_daemon[span.name] = PhaseStats(span.name)
        daemon_phase.fold(span)
    return summary


def summarize_jsonl(text: str) -> TraceSummary:
    """Parse a JSONL span dump and summarize it."""
    return summarize_spans(parse_jsonl(text))


def load_trace(path: str) -> TraceSummary:
    """Read a JSONL span dump from ``path`` and summarize it."""
    with open(path) as handle:
        return summarize_jsonl(handle.read())


def phase_coverage(
    summary: TraceSummary, required: Optional[Iterable[str]] = None
) -> List[str]:
    """Phases from ``required`` missing in the summary (empty = covered).

    Defaults to the pipeline phases every live federation must emit:
    poll, parse, summarize, archive, serve.
    """
    if required is None:
        required = ("poll", "parse", "summarize", "archive", "serve")
    return [name for name in required if name not in summary.phases]
