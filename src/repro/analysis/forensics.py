"""Time-of-death forensics over round-robin archives.

"If a monitored node has failed, it keeps a 'zero' record during the
downtime, aiding time-of-death forensic analysis." (§2.1)

A dead host's archives show a run of exact zeros (gmetad stops
refreshing the series and the gap fill writes zeros).  These functions
recover outage intervals and death estimates from that signal.  The
zero convention is ambiguous for metrics that are legitimately zero;
callers should run forensics on a liveness-correlated metric
(``load_one``, ``cpu_user``, or the summary ``.num`` series, which
counts reporting hosts and is never zero while anything lives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.rrd.database import RrdDatabase


@dataclass(frozen=True)
class Outage:
    """One contiguous run of zero records."""

    start: float        # time of the first zero row
    end: float          # time of the last zero row
    ongoing: bool       # True if the run extends to the newest row

    @property
    def duration(self) -> float:
        return self.end - self.start


def find_outages(
    database: RrdDatabase,
    start: float,
    end: float,
    min_rows: int = 2,
) -> List[Outage]:
    """All zero-runs of at least ``min_rows`` rows in ``(start, end]``.

    Unknown (NaN) rows break runs: a gap with no data at all is *not*
    evidence of a host death, only missing evidence.
    """
    times, values, _ = database.fetch(start, end)
    if len(values) == 0:
        return []
    outages: List[Outage] = []
    run_start: Optional[int] = None
    for i, value in enumerate(values):
        is_zero = not np.isnan(value) and value == 0.0
        if is_zero and run_start is None:
            run_start = i
        elif not is_zero and run_start is not None:
            if i - run_start >= min_rows:
                outages.append(
                    Outage(times[run_start], times[i - 1], ongoing=False)
                )
            run_start = None
    if run_start is not None and len(values) - run_start >= min_rows:
        outages.append(Outage(times[run_start], times[-1], ongoing=True))
    return outages


def estimate_death_time(
    database: RrdDatabase,
    start: float,
    end: float,
) -> Optional[float]:
    """When did the host die?  The start of the final ongoing zero-run.

    Returns None if the series does not end in an outage.  The estimate
    is biased late by up to (heartbeat window + poll interval): the
    monitor keeps archiving the last-known values until the soft state
    times the host out, which is when zeros begin.
    """
    outages = find_outages(database, start, end)
    if outages and outages[-1].ongoing:
        return outages[-1].start
    return None
