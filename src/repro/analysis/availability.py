"""Uptime accounting from archived histories.

Availability of a host over a window = fraction of known archive rows
that are non-zero on a liveness-correlated metric.  Cluster availability
aggregates hosts; the report renders the auditing table the paper's
introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.rrd.store import MetricKey, RrdStore

#: Default liveness-correlated metric for availability accounting.
LIVENESS_METRIC = "load_one"


def host_availability(
    store: RrdStore,
    source: str,
    cluster: str,
    host: str,
    start: float,
    end: float,
    metric: str = LIVENESS_METRIC,
) -> Optional[float]:
    """Fraction of the window the host was reporting, or None if no data."""
    database = store.database(MetricKey(source, cluster, host, metric))
    if database is None:
        return None
    _, values, _ = database.fetch(start, end)
    known = values[~np.isnan(values)]
    if len(known) == 0:
        return None
    return float((known != 0.0).sum() / len(known))


@dataclass
class AvailabilityReport:
    """Per-host availability over one window."""

    source: str
    cluster: str
    start: float
    end: float
    per_host: Dict[str, float] = field(default_factory=dict)

    @property
    def cluster_availability(self) -> float:
        if not self.per_host:
            return 0.0
        return sum(self.per_host.values()) / len(self.per_host)

    def worst_hosts(self, count: int = 5) -> List[tuple]:
        """The lowest-availability hosts, worst first."""
        return sorted(self.per_host.items(), key=lambda kv: kv[1])[:count]

    def render(self) -> str:
        """The report as printable text."""
        lines = [
            f"Availability report: {self.source}/{self.cluster} "
            f"({self.start:.0f}s..{self.end:.0f}s)",
            f"  cluster availability: {self.cluster_availability:.1%}",
        ]
        for host, availability in sorted(self.per_host.items()):
            flag = "  <-- degraded" if availability < 0.99 else ""
            lines.append(f"  {host:24s} {availability:8.1%}{flag}")
        return "\n".join(lines)


def cluster_availability(
    store: RrdStore,
    source: str,
    cluster: str,
    start: float,
    end: float,
    metric: str = LIVENESS_METRIC,
) -> AvailabilityReport:
    """Availability of every archived host of one cluster."""
    report = AvailabilityReport(source, cluster, start, end)
    hosts = sorted(
        {
            key.host
            for key in store.keys()
            if key.source == source
            and key.cluster == cluster
            and key.metric == metric
            and not key.host.startswith("__")
        }
    )
    for host in hosts:
        availability = host_availability(
            store, source, cluster, host, start, end, metric
        )
        if availability is not None:
            report.per_host[host] = availability
    return report
