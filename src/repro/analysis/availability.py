"""Uptime accounting: archived histories and live federation probing.

Availability of a host over a window = fraction of known archive rows
that are non-zero on a liveness-correlated metric.  Cluster availability
aggregates hosts; the report renders the auditing table the paper's
introduction motivates.

:class:`FederationProbe` measures from the *consumer's* seat instead:
it periodically samples every gmetad's datastore and asks, for each
(gmetad, source) pair, "is this source serving fresh data right now?"
-- which is what a viewer hitting the web frontend actually experiences
during a chaos run.  The aggregate :class:`SoakReport` carries the three
headline numbers of the resilience benchmark: availability (fraction of
fresh samples), staleness (how old the served data was), and MTTR (how
long outages took to repair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.rrd.store import MetricKey, RrdStore
from repro.sim.engine import Engine, PeriodicTask

#: Default liveness-correlated metric for availability accounting.
LIVENESS_METRIC = "load_one"


def host_availability(
    store: RrdStore,
    source: str,
    cluster: str,
    host: str,
    start: float,
    end: float,
    metric: str = LIVENESS_METRIC,
) -> Optional[float]:
    """Fraction of the window the host was reporting, or None if no data."""
    database = store.database(MetricKey(source, cluster, host, metric))
    if database is None:
        return None
    _, values, _ = database.fetch(start, end)
    known = values[~np.isnan(values)]
    if len(known) == 0:
        return None
    return float((known != 0.0).sum() / len(known))


@dataclass
class AvailabilityReport:
    """Per-host availability over one window."""

    source: str
    cluster: str
    start: float
    end: float
    per_host: Dict[str, float] = field(default_factory=dict)

    @property
    def cluster_availability(self) -> float:
        if not self.per_host:
            return 0.0
        return sum(self.per_host.values()) / len(self.per_host)

    def worst_hosts(self, count: int = 5) -> List[tuple]:
        """The lowest-availability hosts, worst first."""
        return sorted(self.per_host.items(), key=lambda kv: kv[1])[:count]

    def render(self) -> str:
        """The report as printable text."""
        lines = [
            f"Availability report: {self.source}/{self.cluster} "
            f"({self.start:.0f}s..{self.end:.0f}s)",
            f"  cluster availability: {self.cluster_availability:.1%}",
        ]
        for host, availability in sorted(self.per_host.items()):
            flag = "  <-- degraded" if availability < 0.99 else ""
            lines.append(f"  {host:24s} {availability:8.1%}{flag}")
        return "\n".join(lines)


def cluster_availability(
    store: RrdStore,
    source: str,
    cluster: str,
    start: float,
    end: float,
    metric: str = LIVENESS_METRIC,
) -> AvailabilityReport:
    """Availability of every archived host of one cluster."""
    report = AvailabilityReport(source, cluster, start, end)
    hosts = sorted(
        {
            key.host
            for key in store.keys()
            if key.source == source
            and key.cluster == cluster
            and key.metric == metric
            and not key.host.startswith("__")
        }
    )
    for host in hosts:
        availability = host_availability(
            store, source, cluster, host, start, end, metric
        )
        if availability is not None:
            report.per_host[host] = availability
    return report


# -- live federation probing (the consumer's view) --------------------------


@dataclass
class SourceTrack:
    """Freshness accounting for one (gmetad, source) pair."""

    samples: int = 0
    fresh_samples: int = 0
    staleness_sum: float = 0.0
    staleness_max: float = 0.0
    down_since: Optional[float] = None
    repair_times: List[float] = field(default_factory=list)

    @property
    def availability(self) -> float:
        if self.samples == 0:
            return 0.0
        return self.fresh_samples / self.samples


@dataclass
class SoakReport:
    """Aggregate freshness numbers over a chaos soak window."""

    samples: int
    availability: float
    mean_staleness: float
    max_staleness: float
    #: mean seconds from "went stale" to "fresh again" (repaired outages)
    mttr: Optional[float]
    repaired_outages: int
    unrepaired_outages: int
    per_source: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "samples": self.samples,
            "availability": round(self.availability, 5),
            "mean_staleness_seconds": round(self.mean_staleness, 3),
            "max_staleness_seconds": round(self.max_staleness, 3),
            "mttr_seconds": (
                round(self.mttr, 3) if self.mttr is not None else None
            ),
            "repaired_outages": self.repaired_outages,
            "unrepaired_outages": self.unrepaired_outages,
            "per_source_availability": {
                name: round(value, 5)
                for name, value in sorted(self.per_source.items())
            },
        }


class FederationProbe:
    """Samples every gmetad's served state on a fixed cadence.

    A (gmetad, source) sample is *fresh* when the source is marked up
    and its last successful (or salvaged) poll happened within
    ``fresh_factor`` poll intervals -- the served data is what a viewer
    would consider current.  Quarantined-but-serving sources therefore
    count as available (the resilience layer's whole claim), while a
    source stuck behind failed polls goes stale even if a last-good
    snapshot still answers queries.
    """

    def __init__(
        self,
        engine: Engine,
        targets: Dict[str, object],
        interval: float = 5.0,
        fresh_factor: float = 2.5,
    ) -> None:
        if interval <= 0:
            raise ValueError("probe interval must be positive")
        self.engine = engine
        self.targets = dict(targets)
        self.interval = interval
        self.fresh_factor = fresh_factor
        self.tracks: Dict[str, SourceTrack] = {}
        self._task: Optional[PeriodicTask] = None

    def start(self, initial_delay: Optional[float] = None) -> "FederationProbe":
        if self._task is not None:
            raise RuntimeError("probe already started")
        self._task = self.engine.every(
            self.interval,
            self.sample,
            initial_delay=(
                initial_delay if initial_delay is not None else self.interval
            ),
        )
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def sample(self) -> None:
        """Take one freshness sample of every (gmetad, source) pair."""
        now = self.engine.now
        for gname, gmetad in self.targets.items():
            for source, snapshot in gmetad.datastore.sources.items():
                poller = gmetad.pollers.get(source)
                poll_interval = (
                    poller.config.poll_interval
                    if poller is not None
                    else 15.0
                )
                track = self.tracks.setdefault(
                    f"{gname}/{source}", SourceTrack()
                )
                track.samples += 1
                staleness = max(0.0, now - snapshot.last_success)
                track.staleness_sum += staleness
                track.staleness_max = max(track.staleness_max, staleness)
                fresh = (
                    snapshot.up
                    and staleness <= self.fresh_factor * poll_interval
                )
                if fresh:
                    if track.down_since is not None:
                        track.repair_times.append(now - track.down_since)
                        track.down_since = None
                    track.fresh_samples += 1
                elif track.down_since is None:
                    track.down_since = now

    def report(self) -> SoakReport:
        """Fold every track into the aggregate soak report."""
        samples = sum(t.samples for t in self.tracks.values())
        fresh = sum(t.fresh_samples for t in self.tracks.values())
        staleness_sum = sum(t.staleness_sum for t in self.tracks.values())
        repairs = [r for t in self.tracks.values() for r in t.repair_times]
        return SoakReport(
            samples=samples,
            availability=(fresh / samples) if samples else 0.0,
            mean_staleness=(staleness_sum / samples) if samples else 0.0,
            max_staleness=max(
                (t.staleness_max for t in self.tracks.values()), default=0.0
            ),
            mttr=(sum(repairs) / len(repairs)) if repairs else None,
            repaired_outages=len(repairs),
            unrepaired_outages=sum(
                1 for t in self.tracks.values() if t.down_since is not None
            ),
            per_source={
                name: track.availability
                for name, track in self.tracks.items()
            },
        )
