"""Load and utilization statistics: performance assessment.

Works at both resolutions the system offers, mirroring the paper's
multiple-resolution view:

- **summary archives** (sum + num series) give cluster-level means over
  time without per-host data -- what a capacity planner at the root of
  the tree can compute;
- **live snapshots** give instantaneous per-host detail -- what someone
  at the authority gmetad uses to find the hot machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.rrd.store import SUMMARY_HOST, MetricKey, RrdStore
from repro.wire.model import ClusterElement


def cluster_mean_series(
    store: RrdStore,
    source: str,
    cluster: str,
    metric: str,
    start: float,
    end: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """(times, mean values) for one cluster metric from summary archives.

    Divides the archived SUM series by the archived NUM series row by
    row -- exactly the mean the paper says a summary can reconstruct.
    Rows where either side is unknown or the set size is zero are
    dropped.
    """
    sum_db = store.database(MetricKey(source, cluster, SUMMARY_HOST, metric))
    num_db = store.database(
        MetricKey(source, cluster, SUMMARY_HOST, f"{metric}.num")
    )
    if sum_db is None or num_db is None:
        return np.empty(0), np.empty(0)
    sum_times, sums, _ = sum_db.fetch(start, end)
    num_times, nums, _ = num_db.fetch(start, end)
    by_time = {t: v for t, v in zip(num_times, nums)}
    times: List[float] = []
    means: List[float] = []
    for t, total in zip(sum_times, sums):
        count = by_time.get(t)
        if count is None or np.isnan(total) or np.isnan(count) or count <= 0:
            continue
        times.append(t)
        means.append(total / count)
    return np.asarray(times), np.asarray(means)


@dataclass(frozen=True)
class SeriesStatistics:
    """Descriptive statistics of one time series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p95: float

    def render(self) -> str:
        """The statistics as one printable line."""
        return (
            f"n={self.count} mean={self.mean:.3f} min={self.minimum:.3f} "
            f"max={self.maximum:.3f} p95={self.p95:.3f}"
        )


def series_statistics(values: np.ndarray) -> SeriesStatistics:
    """Stats over the known entries of a fetched series."""
    known = np.asarray(values, dtype=float)
    known = known[~np.isnan(known)]
    if len(known) == 0:
        return SeriesStatistics(0, 0.0, 0.0, 0.0, 0.0)
    return SeriesStatistics(
        count=int(len(known)),
        mean=float(known.mean()),
        minimum=float(known.min()),
        maximum=float(known.max()),
        p95=float(np.percentile(known, 95)),
    )


def busiest_hosts(
    cluster: ClusterElement,
    metric: str = "load_one",
    count: int = 5,
    heartbeat_window: float = 80.0,
) -> List[Tuple[str, float]]:
    """Top-N live hosts by a numeric metric, from a full-form snapshot."""
    if cluster.is_summary:
        raise ValueError(
            f"cluster {cluster.name!r} is summary-form; busiest_hosts needs "
            "full resolution (query the authority gmetad)"
        )
    loads: List[Tuple[str, float]] = []
    for host in cluster.hosts.values():
        if not host.is_up(heartbeat_window):
            continue
        element = host.metrics.get(metric)
        if element is None or not element.is_numeric:
            continue
        try:
            loads.append((host.name, element.numeric()))
        except ValueError:
            continue
    loads.sort(key=lambda pair: -pair[1])
    return loads[:count]
