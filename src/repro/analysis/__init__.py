"""Analysis over monitoring data: the paper's motivating use cases.

"Like other production-class resources, we desire to monitor clusters
for auditing, accounting, performance assessment, and design feedback
purposes." (§1)  This package turns the raw archives and datastore
snapshots into those deliverables:

- :mod:`repro.analysis.forensics` -- outage detection and time-of-death
  estimation from the zero records gmetad keeps during downtime;
- :mod:`repro.analysis.availability` -- per-host and per-cluster uptime
  accounting over a window;
- :mod:`repro.analysis.loadstats` -- load/utilization statistics from
  summary archives and live snapshots;
- :mod:`repro.analysis.tracestats` -- per-phase aggregates over the
  self-observability layer's trace-span dumps.
"""

from repro.analysis.availability import (
    AvailabilityReport,
    cluster_availability,
    host_availability,
)
from repro.analysis.forensics import Outage, estimate_death_time, find_outages
from repro.analysis.loadstats import (
    busiest_hosts,
    cluster_mean_series,
    series_statistics,
)
from repro.analysis.tracestats import (
    PhaseStats,
    TraceSummary,
    load_trace,
    phase_coverage,
    summarize_jsonl,
    summarize_spans,
)

__all__ = [
    "PhaseStats",
    "TraceSummary",
    "load_trace",
    "phase_coverage",
    "summarize_jsonl",
    "summarize_spans",
    "Outage",
    "find_outages",
    "estimate_death_time",
    "host_availability",
    "cluster_availability",
    "AvailabilityReport",
    "cluster_mean_series",
    "series_statistics",
    "busiest_hosts",
]
