"""The pub-sub wire protocol: compact JSON control and data messages.

Everything the broker and its subscribers exchange travels over the
simulated TCP fabric as an encoded string, so ``len(encoded)`` is the
honest bytes-on-wire figure the push-vs-poll benchmark compares against
XML download sizes.  Messages are flat JSON objects with single-letter
field names; the ``t`` field carries the type:

========  =======================================================
``sub``   subscribe: id, path, lease, notify host/port
``renew`` refresh a lease before it expires (gmond-style soft state)
``unsub`` drop a subscription
``sync``  request a full-sync snapshot for one subscription
``delta`` pushed notification: seq, prev-seq, list of ops
``full``  full-sync payload: seq plus the whole scoped state map
``ok``    acknowledgement (optionally carrying the broker seq)
``err``   refusal, e.g. renewing an expired/unknown subscription
========  =======================================================

Delta operations are 2/3-element lists: ``["s", path, value]`` sets a
path, ``["d", path]`` deletes one.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.pubsub.delta import DeltaOp


class MessageError(ValueError):
    """Malformed or unexpected pub-sub message."""


def encode(message: dict) -> str:
    """Serialize a message dict to its compact wire form."""
    return json.dumps(message, separators=(",", ":"), sort_keys=True)


def encode_for(message: dict, codec: str = "xml") -> object:
    """Serialize for one subscriber's negotiated codec.

    Only the data-plane messages (``delta``/``full``) have a binary
    form; control messages stay JSON under every codec because both
    ends must read them before any negotiation has happened.
    """
    if codec == "bin1" and message.get("t") in ("delta", "full"):
        from repro.wire import binfmt

        return binfmt.encode_message(message)
    return encode(message)


def wire_size(encoded: object) -> int:
    """Bytes on the wire for one encoded message (str or frame)."""
    if isinstance(encoded, (str, bytes, bytearray)):
        return len(encoded)
    if isinstance(encoded, dict):  # loopback convenience: never encoded
        return len(encode(encoded))
    return len(str(encoded))


def decode(payload: object) -> dict:
    """Parse a wire string (or binary frame) back into a message dict."""
    if isinstance(payload, dict):  # already decoded (loopback convenience)
        return payload
    if isinstance(payload, (bytes, bytearray)):
        from repro.wire import binfmt

        try:
            kind, body = binfmt.open_frame(bytes(payload))
            if kind != binfmt.PUBSUB_MSG:
                raise binfmt.FrameError(f"unexpected frame kind {kind}")
            return binfmt.decode_message(body)
        except binfmt.FrameError as exc:
            raise MessageError(f"bad binary message: {exc}") from None
    if not isinstance(payload, str):
        raise MessageError(f"expected str payload, got {type(payload).__name__}")
    try:
        message = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise MessageError(f"bad message: {exc}") from None
    if not isinstance(message, dict) or "t" not in message:
        raise MessageError("message must be an object with a 't' field")
    return message


# -- constructors ----------------------------------------------------------


def subscribe(
    sub_id: str,
    path: str,
    lease: float,
    notify_host: str,
    notify_port: int,
    accept: Optional[str] = None,
) -> dict:
    message = {
        "t": "sub",
        "id": sub_id,
        "path": path,
        "lease": lease,
        "nh": notify_host,
        "np": notify_port,
    }
    if accept:
        # codec offer, mirroring the poll path's ``accept=`` token; a
        # broker that predates the codec simply ignores the field
        message["acc"] = accept
    return message


def renew(sub_id: str, lease: float) -> dict:
    return {"t": "renew", "id": sub_id, "lease": lease}


def unsubscribe(sub_id: str) -> dict:
    return {"t": "unsub", "id": sub_id}


def sync_request(sub_id: str) -> dict:
    return {"t": "sync", "id": sub_id}


def delta(sub_id: str, seq: int, prev_seq: int, ops: Sequence[DeltaOp]) -> dict:
    return {
        "t": "delta",
        "id": sub_id,
        "seq": seq,
        "prev": prev_seq,
        "ops": [op.wire() for op in ops],
    }


def full_sync(sub_id: str, seq: int, state: Dict[str, str]) -> dict:
    return {"t": "full", "id": sub_id, "seq": seq, "state": state}


def ok(seq: Optional[int] = None) -> dict:
    message = {"t": "ok"}
    if seq is not None:
        message["seq"] = seq
    return message


def error(reason: str) -> dict:
    return {"t": "err", "reason": reason}


# -- accessors -------------------------------------------------------------


def ops_of(message: dict) -> List[DeltaOp]:
    """Decode the op list of a ``delta`` message."""
    ops = []
    for raw in message.get("ops", ()):
        if not isinstance(raw, (list, tuple)) or not raw:
            raise MessageError(f"bad delta op {raw!r}")
        if raw[0] == "s" and len(raw) == 3:
            ops.append(DeltaOp("set", raw[1], raw[2]))
        elif raw[0] == "d" and len(raw) == 2:
            ops.append(DeltaOp("del", raw[1]))
        else:
            raise MessageError(f"bad delta op {raw!r}")
    return ops
