"""The per-gmetad pub-sub broker.

One broker rides on one gmetad.  After every background parse the
gmetad's publish hook fires; the broker diffs the datastore through its
:class:`~repro.pubsub.delta.DeltaEngine` and pushes scoped deltas to
every matching subscriber.  All CPU the broker burns -- diffing,
serializing, connection setup -- is charged to the *gmetad's*
:class:`~repro.sim.resources.CpuAccount`, so the push-vs-poll
benchmarks measure both designs with the paper's accounting.

Delivery and backpressure
    Each subscriber has a bounded in-order queue.  Notifications are
    pushed one at a time (the next goes out when the previous is
    acked); a delivery timeout leaves the message queued and retries
    later.  When the queue overflows -- a slow or partitioned
    subscriber -- the queued deltas are *dropped* and the subscriber is
    degraded to a full sync: cheaper than unbounded buffering, and the
    subscriber provably converges because the sync carries the whole
    scoped state with the current sequence number.

Hierarchical folding
    A broker configured with ``upstreams`` (data-source name -> child
    broker address) folds its local subscriptions into covering paths
    (:mod:`repro.pubsub.folding`) and holds ONE upstream subscription
    per covering path.  Child deltas arrive once per change, are
    translated into the parent namespace, and fan out locally -- the
    notification tree follows the monitoring tree.  While a relay link
    is live, the parent's own summary-resolution keys for that source
    are excluded from its published state (the child's full-resolution
    feed is canonical), which the delta diff turns into clean
    delete+set transitions for subscribers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.core.gmetad_base import GmetadBase
from repro.net.address import Address
from repro.net.tcp import Response, TcpTimeout
from repro.pubsub import messages
from repro.pubsub.client import DeltaStream
from repro.pubsub.delta import DeltaEngine, DeltaOp, diff_states
from repro.pubsub.folding import child_scope, covering_paths, prefix_state
from repro.pubsub.registry import (
    DEFAULT_LEASE,
    Subscription,
    SubscriptionError,
    SubscriptionRegistry,
)
from repro.sim.engine import PeriodicTask


class SubscriberChannel:
    """Broker-side delivery state for one subscriber."""

    def __init__(
        self, broker: "PubSubBroker", subscription: Subscription, max_queue: int
    ) -> None:
        self.broker = broker
        self.subscription = subscription
        self.max_queue = max_queue
        self.queue: Deque[dict] = deque()
        #: set when the broker retires this channel; pump() retry
        #: closures scheduled before the drop check it and die quietly
        self.dropped = False
        self.in_flight = False
        self.need_full_sync = False
        self._sync_in_flight = False
        self.last_seq_sent = -1
        # stats
        self.deltas_sent = 0
        self.full_syncs_sent = 0
        self.deltas_dropped = 0
        self.send_timeouts = 0
        self.last_timeout: Optional[TcpTimeout] = None

    def enqueue_delta(self, seq: int, ops: List[DeltaOp]) -> None:
        """Queue one scoped delta batch for delivery."""
        if self._sync_in_flight:
            # changes landed after the in-flight sync's snapshot was
            # taken: schedule another sync instead of a gapped delta
            self.need_full_sync = True
            return
        if self.need_full_sync:
            return  # the sync is built at send time; it covers these ops
        if len(self.queue) >= self.max_queue:
            # backpressure: drop everything, degrade to full sync
            self.deltas_dropped += len(self.queue) + 1
            self.queue.clear()
            self.need_full_sync = True
        else:
            self.queue.append(
                messages.delta(
                    self.subscription.sub_id, seq, self.last_seq_sent, ops
                )
            )
            self.last_seq_sent = seq
        self.pump()

    def mark_full_sync(self) -> None:
        """Force the next delivery to be a full sync (checkpointing)."""
        self.queue.clear()
        self.need_full_sync = True
        self.pump()

    def pump(self) -> None:
        """Deliver the next pending message, if any and none in flight."""
        if self.dropped or self.in_flight:
            return
        if self.need_full_sync:
            message = self.broker.full_sync_message(self.subscription)
            self.need_full_sync = False
            self._sync_in_flight = True
        elif self.queue:
            message = self.queue[0]
        else:
            return
        was_sync = self._sync_in_flight
        encoded = messages.encode_for(
            message, self.broker.codec_for(self.subscription.sub_id)
        )
        self.broker.charge_push(encoded)
        self.in_flight = True

        def on_response(payload: object, rtt: float) -> None:
            self.in_flight = False
            if was_sync:
                self._sync_in_flight = False
                self.last_seq_sent = message["seq"]
                self.full_syncs_sent += 1
            else:
                if self.queue and self.queue[0] is message:
                    self.queue.popleft()
                self.deltas_sent += 1
            self.pump()

        def on_timeout(error: TcpTimeout) -> None:
            self.in_flight = False
            self.send_timeouts += 1
            self.last_timeout = error  # diagnostic: which endpoint died
            if was_sync:
                self._sync_in_flight = False
                self.need_full_sync = True  # retry the sync later
            self.broker.engine.call_later(self.broker.retry_interval, self.pump)

        self.broker.tcp.request(
            self.broker.host,
            self.subscription.notify,
            encoded,
            on_response=on_response,
            timeout=self.broker.notify_timeout,
            on_timeout=on_timeout,
            request_size=messages.wire_size(encoded),
        )


class UpstreamLink:
    """One folded subscription held against a child broker."""

    def __init__(
        self,
        broker: "PubSubBroker",
        source: str,
        path: str,
        address: Address,
    ) -> None:
        self.broker = broker
        self.source = source
        self.path = path
        self.address = address
        self.sub_id = f"relay:{broker.gmetad.config.name}:{source}:{path}"
        self.stream = DeltaStream()
        self.connected = False
        self._renew_task: Optional[PeriodicTask] = None
        self._subscribe_in_flight = False
        self._sync_in_flight = False
        self._stopped = False
        self.timeouts = 0
        self.last_timeout: Optional[TcpTimeout] = None

    @property
    def synced(self) -> bool:
        return self.stream.synced

    @property
    def mirror(self) -> Dict[str, str]:
        return self.stream.mirror

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "UpstreamLink":
        self._subscribe()
        self._renew_task = self.broker.engine.every(
            self.broker.lease / 3.0, self._renew_tick
        )
        return self

    def stop(self) -> None:
        self._stopped = True
        if self._renew_task is not None:
            self._renew_task.stop()
            self._renew_task = None
        if self.connected:
            self._send(messages.unsubscribe(self.sub_id), lambda m: None)

    # -- child-facing control plane ----------------------------------------

    def _send(self, message: dict, on_reply, *, on_fail=None) -> None:
        encoded = messages.encode(message)
        self.broker.charge_control(encoded)

        def on_response(payload: object, rtt: float) -> None:
            on_reply(messages.decode(payload))

        def on_timeout(error: TcpTimeout) -> None:
            self.timeouts += 1
            self.last_timeout = error
            self.connected = False
            if on_fail is not None:
                on_fail(error)

        self.broker.tcp.request(
            self.broker.host,
            self.address,
            encoded,
            on_response=on_response,
            timeout=self.broker.notify_timeout,
            on_timeout=on_timeout,
            request_size=len(encoded),
        )

    def _subscribe(self) -> None:
        # a reply racing the link's removal must not resubscribe
        if self._stopped or self._subscribe_in_flight:
            return
        self._subscribe_in_flight = True

        def on_reply(message: dict) -> None:
            self._subscribe_in_flight = False
            if message.get("t") == "full":
                self.connected = True
                self._ingest(message)

        self._send(
            messages.subscribe(
                self.sub_id,
                self.path,
                self.broker.lease,
                self.broker.address.host,
                self.broker.address.port,
                # advertise binary on the relay plane when this broker's
                # daemon speaks it; an XML-only child ignores the field
                accept=(
                    "bin1"
                    if getattr(self.broker.gmetad.config, "binary_wire", False)
                    else None
                ),
            ),
            on_reply,
            on_fail=lambda e: setattr(self, "_subscribe_in_flight", False),
        )

    def _renew_tick(self) -> None:
        if self._stopped:
            return
        if not self.connected:
            self._subscribe()
            return

        def on_reply(message: dict) -> None:
            if message.get("t") != "ok":
                self.connected = False
                self._subscribe()

        self._send(messages.renew(self.sub_id, self.broker.lease), on_reply)

    def request_sync(self) -> None:
        if self._stopped or self._sync_in_flight:
            return
        self._sync_in_flight = True

        def on_reply(message: dict) -> None:
            self._sync_in_flight = False
            if message.get("t") == "full":
                self._ingest(message)

        self._send(
            messages.sync_request(self.sub_id),
            on_reply,
            on_fail=lambda e: setattr(self, "_sync_in_flight", False),
        )

    # -- notification ingestion --------------------------------------------

    def _ingest(self, message: dict) -> str:
        """Apply a child data message; relay the state change downtree."""
        before = dict(self.stream.mirror)
        outcome = self.stream.apply_message(message)
        if outcome in ("gap", "unsynced"):
            self.request_sync()
            return outcome
        if outcome in ("applied", "synced"):
            translated = diff_states(
                prefix_state(before, self.source),
                prefix_state(self.stream.mirror, self.source),
            )
            self.broker.relay(translated)
        return outcome

    def on_notification(self, message: dict) -> dict:
        """Handle a pushed ``delta``/``full`` from the child broker."""
        self.connected = True
        self._ingest(message)
        return messages.ok(self.stream.last_seq)


class PubSubBroker:
    """Subscription service + delta publisher for one gmetad."""

    def __init__(
        self,
        gmetad: GmetadBase,
        lease: float = DEFAULT_LEASE,
        max_queue: int = 8,
        notify_timeout: float = 5.0,
        retry_interval: float = 5.0,
        sweep_interval: Optional[float] = None,
        checkpoint_interval: Optional[float] = 600.0,
        upstreams: Optional[Dict[str, Address]] = None,
    ) -> None:
        self.gmetad = gmetad
        self.engine = gmetad.engine
        self.tcp = gmetad.tcp
        self.host = gmetad.config.host
        self.lease = lease
        self.max_queue = max_queue
        self.notify_timeout = notify_timeout
        self.retry_interval = retry_interval
        self.sweep_interval = (
            sweep_interval if sweep_interval is not None else max(lease / 4.0, 1.0)
        )
        self.checkpoint_interval = checkpoint_interval
        self.address = Address.pubsub(gmetad.config.host)
        self.registry = SubscriptionRegistry(lease)
        self.delta_engine = DeltaEngine(
            gmetad.datastore, gmetad.config.heartbeat_window
        )
        #: replication feed for the read tier, attached only when the
        #: gmetad is configured with one -- baseline brokers publish
        #: byte-identical state with zero extra work
        self.feed = None
        if getattr(gmetad.config, "read_tier", None) is not None:
            from repro.readtier.feed import ReplicationFeed

            self.feed = ReplicationFeed(gmetad)
            self.delta_engine.augment = self.feed.state
        self.seq = 0
        self.channels: Dict[str, SubscriberChannel] = {}
        #: negotiated data-plane codec per subscription ("bin1" entries
        #: only; absence means JSON).  Binary is granted only when the
        #: daemon's ``binary_wire`` flag is on AND the subscriber asked.
        self.codecs: Dict[str, str] = {}
        self.upstreams: Dict[str, Address] = dict(upstreams or {})
        self._links: Dict[Tuple[str, str], UpstreamLink] = {}
        self._sweep_task: Optional[PeriodicTask] = None
        self._checkpoint_task: Optional[PeriodicTask] = None
        self._started = False
        # stats
        self.publishes = 0
        self.relays = 0
        self.subscribes = 0
        self.renews = 0
        self.syncs_served = 0
        self.checkpoints = 0
        self.bytes_pushed = 0
        self.bytes_control = 0
        # per-channel counters folded in when a channel is dropped or
        # replaced, so stats() stays cumulative across reconnects
        self._retired: Dict[str, float] = {
            "deltas_sent": 0,
            "full_syncs_sent": 0,
            "deltas_dropped": 0,
            "send_timeouts": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "PubSubBroker":
        """Listen, hook into the gmetad's publish path, arm the sweeps."""
        if self._started:
            raise RuntimeError(f"broker on {self.host} already started")
        self._started = True
        self.tcp.listen(self.address, self._handle)
        self.gmetad.publish_hooks.append(self._on_publish)
        self._sweep_task = self.engine.every(self.sweep_interval, self._sweep)
        if self.checkpoint_interval is not None:
            self._checkpoint_task = self.engine.every(
                self.checkpoint_interval, self._checkpoint
            )
        return self

    def stop(self) -> None:
        """Detach from the gmetad and drop all delivery state."""
        if self._sweep_task is not None:
            self._sweep_task.stop()
            self._sweep_task = None
        if self._checkpoint_task is not None:
            self._checkpoint_task.stop()
            self._checkpoint_task = None
        for link in list(self._links.values()):
            link.stop()
        self._links.clear()
        if self._on_publish in self.gmetad.publish_hooks:
            self.gmetad.publish_hooks.remove(self._on_publish)
        self.tcp.close(self.address)
        self._started = False

    # -- accounting ---------------------------------------------------------

    def codec_for(self, sub_id: str) -> str:
        """The negotiated data-plane codec for one subscription."""
        return self.codecs.get(sub_id, "xml")

    def charge_push(self, encoded: object) -> None:
        """Charge one outbound notification to the gmetad's CPU."""
        nbytes = messages.wire_size(encoded)
        self.bytes_pushed += nbytes
        seconds = self.gmetad.charge(self.gmetad.costs.tcp_connect, "network")
        seconds += self.gmetad.charge(
            self.gmetad.costs.serve_byte * nbytes, "serve"
        )
        if self.gmetad.obs is not None:
            self.gmetad.obs.record_push(
                nbytes,
                seconds,
                codec="binary" if isinstance(encoded, bytes) else "xml",
            )

    def charge_control(self, encoded: str) -> None:
        """Charge an upstream control request (subscribe/renew/sync)."""
        self.bytes_control += len(encoded)
        self.gmetad.charge(self.gmetad.costs.tcp_connect, "network")

    # -- publishing ----------------------------------------------------------

    def relayed_sources(self) -> Set[str]:
        """Sources whose feed currently comes from an upstream link."""
        return {
            link.source for link in self._links.values() if link.synced
        }

    def _on_publish(self, source: str, now: float) -> None:
        """The gmetad publish hook: diff the datastore, fan out."""
        self.publishes += 1
        before = self.delta_engine.keys_scanned
        ops = self.delta_engine.advance(exclude_sources=self.relayed_sources())
        self.gmetad.charge(
            self.gmetad.costs.hash_insert
            * (self.delta_engine.keys_scanned - before),
            "query",
        )
        self._dispatch(ops)

    def relay(self, ops: List[DeltaOp]) -> None:
        """Fan out ops relayed from an upstream link."""
        self.relays += 1
        self._dispatch(ops)

    def _sees(self, subscription: Subscription, key: str) -> bool:
        """Path match plus the hidden-namespace gate.

        ``__repl__`` keys go only to subscriptions explicitly rooted at
        ``/__repl__``; a ``/``-rooted viewer (whose empty segment tuple
        prefix-matches everything) never sees the replication feed.
        """
        if key.startswith("__repl__/") or key == "__repl__":
            segments = subscription.segments
            return segments is not None and segments[:1] == ("__repl__",)
        return subscription.matches_key(key)

    def _dispatch(self, ops: List[DeltaOp]) -> None:
        if not ops:
            return
        self.seq += 1
        for subscription in self.registry.subscriptions():
            scoped = [op for op in ops if self._sees(subscription, op.path)]
            if not scoped:
                continue
            channel = self.channels.get(subscription.sub_id)
            if channel is not None:
                channel.enqueue_delta(self.seq, scoped)

    # -- state views ---------------------------------------------------------

    def current_state(self) -> Dict[str, str]:
        """The full published view: own keys plus translated relays.

        Built from the *published* delta-engine state (not a fresh
        flatten), so a full sync at sequence ``seq`` is exactly the
        state a subscriber reaches by applying every delta up to
        ``seq`` -- the property the recovery tests assert.
        """
        state = dict(self.delta_engine.state)
        for link in self._links.values():
            if link.synced:
                state.update(prefix_state(link.mirror, link.source))
        return state

    def full_sync_message(self, subscription: Subscription) -> dict:
        """Build the scoped full-sync payload for one subscription."""
        scoped = {
            key: value
            for key, value in self.current_state().items()
            if self._sees(subscription, key)
        }
        return messages.full_sync(subscription.sub_id, self.seq, scoped)

    # -- request handling ----------------------------------------------------

    def _handle(self, client: str, payload: object) -> Response:
        seconds = self.gmetad.charge(self.gmetad.costs.tcp_connect, "network")
        try:
            message = messages.decode(payload)
        except messages.MessageError as exc:
            return Response(
                messages.encode(messages.error(str(exc))), service_seconds=seconds
            )
        kind = message.get("t")
        if kind == "sub":
            reply = self._handle_subscribe(message)
        elif kind == "renew":
            self.renews += 1
            renewed = self.registry.renew(
                message.get("id", ""), self.engine.now, message.get("lease")
            )
            reply = messages.ok(self.seq) if renewed else messages.error(
                "unknown-subscription"
            )
        elif kind == "unsub":
            sub_id = message.get("id", "")
            self.registry.unsubscribe(sub_id)
            self._drop_channel(sub_id)
            self.codecs.pop(sub_id, None)
            self._refresh_folding()
            reply = messages.ok()
        elif kind == "sync":
            reply = self._handle_sync(message)
        elif kind in ("delta", "full"):
            reply = self._handle_upstream_notification(message)
        else:
            reply = messages.error(f"unknown message type {kind!r}")
        # data-plane replies (the initial/requested full sync) honour the
        # subscriber's negotiated codec; control replies stay JSON
        codec = (
            self.codec_for(message.get("id", ""))
            if reply.get("t") in ("delta", "full")
            else "xml"
        )
        encoded = messages.encode_for(reply, codec)
        seconds += self.gmetad.charge(
            self.gmetad.costs.serve_byte * messages.wire_size(encoded), "serve"
        )
        return Response(encoded, service_seconds=seconds)

    def _handle_subscribe(self, message: dict) -> dict:
        try:
            subscription = self.registry.subscribe(
                message.get("id", ""),
                message.get("path", "/"),
                Address(message.get("nh", ""), int(message.get("np", 0))),
                self.engine.now,
                message.get("lease"),
            )
        except (SubscriptionError, ValueError) as exc:
            return messages.error(str(exc))
        self.subscribes += 1
        offered = message.get("acc")
        if offered == "bin1" and getattr(
            self.gmetad.config, "binary_wire", False
        ):
            self.codecs[subscription.sub_id] = "bin1"
            if self.gmetad.obs is not None:
                self.gmetad.obs.record_negotiation("accepted")
        else:
            self.codecs.pop(subscription.sub_id, None)
            if offered and self.gmetad.obs is not None:
                self.gmetad.obs.record_negotiation("fell_back")
        self._drop_channel(subscription.sub_id)  # replace, keep counters
        channel = SubscriberChannel(self, subscription, self.max_queue)
        # the subscribe response IS the initial full sync; the delta
        # chain continues from its sequence number
        channel.last_seq_sent = self.seq
        self.channels[subscription.sub_id] = channel
        self._refresh_folding()
        return self.full_sync_message(subscription)

    def _handle_sync(self, message: dict) -> dict:
        subscription = self.registry.get(message.get("id", ""))
        if subscription is None:
            return messages.error("unknown-subscription")
        self.syncs_served += 1
        channel = self.channels.get(subscription.sub_id)
        if channel is not None:
            # the served sync resets the subscriber to the current
            # sequence: queued (pre-sync) deltas are now stale
            channel.queue.clear()
            channel.need_full_sync = False
            channel.last_seq_sent = self.seq
        return self.full_sync_message(subscription)

    def _handle_upstream_notification(self, message: dict) -> dict:
        sub_id = message.get("id", "")
        for link in self._links.values():
            if link.sub_id == sub_id:
                return link.on_notification(message)
        return messages.error("unknown-relay")

    # -- soft-state maintenance ----------------------------------------------

    def _drop_channel(self, sub_id: str) -> None:
        """Remove a delivery channel, folding its counters into stats."""
        channel = self.channels.pop(sub_id, None)
        if channel is None:
            return
        # neutralize in-flight retry closures: a replaced channel's
        # pending pump() must not push a stale sync at the subscriber's
        # NEW channel mid-checkpoint (it would desync the fresh stream)
        channel.dropped = True
        self._retired["deltas_sent"] += channel.deltas_sent
        self._retired["full_syncs_sent"] += channel.full_syncs_sent
        self._retired["deltas_dropped"] += channel.deltas_dropped
        self._retired["send_timeouts"] += channel.send_timeouts

    def _sweep(self) -> None:
        expired = self.registry.expire(self.engine.now)
        for subscription in expired:
            self._drop_channel(subscription.sub_id)
            self.codecs.pop(subscription.sub_id, None)
        if expired:
            self._refresh_folding()

    def _checkpoint(self) -> None:
        """Periodic full-sync checkpoint to every subscriber."""
        self.checkpoints += 1
        for channel in self.channels.values():
            channel.mark_full_sync()

    # -- folding -------------------------------------------------------------

    def _refresh_folding(self) -> None:
        """Reconcile upstream links with the folded local interest set."""
        if not self.upstreams:
            return
        paths = [s.path for s in self.registry.subscriptions()]
        desired: Set[Tuple[str, str]] = set()
        for source in self.upstreams:
            scoped = [
                translated
                for translated in (child_scope(p, source) for p in paths)
                if translated is not None
            ]
            if not scoped:
                continue
            for cover in covering_paths(scoped):
                desired.add((source, cover))
        for key in [k for k in self._links if k not in desired]:
            self._links.pop(key).stop()
        for source, cover in sorted(desired - set(self._links)):
            link = UpstreamLink(self, source, cover, self.upstreams[source])
            self._links[(source, cover)] = link
            link.start()

    # -- introspection -------------------------------------------------------

    @property
    def upstream_links(self) -> List[UpstreamLink]:
        """Live upstream relay links (for tests and reports)."""
        return [self._links[k] for k in sorted(self._links)]

    def stats(self) -> Dict[str, float]:
        """Aggregate counters (live channels plus retired ones)."""
        channels = list(self.channels.values())
        retired = self._retired
        return {
            "subscriptions": len(self.registry),
            "publishes": self.publishes,
            "relays": self.relays,
            "seq": self.seq,
            "bytes_pushed": self.bytes_pushed,
            "deltas_sent": retired["deltas_sent"]
            + sum(c.deltas_sent for c in channels),
            "full_syncs_sent": retired["full_syncs_sent"]
            + sum(c.full_syncs_sent for c in channels),
            "deltas_dropped": retired["deltas_dropped"]
            + sum(c.deltas_dropped for c in channels),
            "send_timeouts": retired["send_timeouts"]
            + sum(c.send_timeouts for c in channels),
            "checkpoints": self.checkpoints,
            "expirations": self.registry.expirations,
        }
