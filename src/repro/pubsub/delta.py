"""Delta encoding of datastore changes.

The gmetad datastore (§2.3.2) is three levels of hash tables; this
module flattens it into a canonical ``{path: value}`` map and diffs
successive maps into compact *delta operations* -- the unit of pub-sub
notification.  Flat paths reuse the query engine's addressing:

========================================  ================================
``source``                                source liveness + kind
``source?summary``                        summary host counts (up|down)
``source?summary/metric``                 one additive reduction (sum|num)
``source/host``                           host membership + heartbeat state
``source/host/metric``                    one full-resolution metric value
``source/nested?summary[...]``            grid sources: nested summaries
========================================  ================================

Deliberately *excluded* are the pure-bookkeeping attributes that change
on every poll even when nothing happened (``TN``, ``REPORTED``,
``LOCALTIME``): a delta subscriber cares whether a value or membership
changed, and heartbeat freshness is already folded into the up/down
bit.  This is what makes the delta stream scale with the *change rate*
rather than the poll rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.core.datastore import Datastore, SourceSnapshot
from repro.wire.model import ClusterElement, GridElement, SummaryInfo

#: Suffix marking a summary-form path segment.
SUMMARY_MARK = "?summary"


@dataclass(frozen=True)
class DeltaOp:
    """One atomic change: set a flat path to a value, or delete it."""

    op: str  # "set" | "del"
    path: str
    value: str = ""

    def __post_init__(self) -> None:
        if self.op not in ("set", "del"):
            raise ValueError(f"bad delta op {self.op!r}")

    def wire(self) -> list:
        """The compact list form used on the wire."""
        if self.op == "set":
            return ["s", self.path, self.value]
        return ["d", self.path]


def key_segments(key: str) -> Tuple[str, ...]:
    """Logical path segments of a flat key (summary marks stripped).

    ``"sdsc/attic-c0?summary/load_one"`` -> ``("sdsc", "attic-c0",
    "load_one")`` -- the same segments the query grammar addresses, so
    subscription paths match both full and summary resolution keys.
    """
    return tuple(
        seg[: -len(SUMMARY_MARK)] if seg.endswith(SUMMARY_MARK) else seg
        for seg in key.split("/")
    )


# -- flattening ------------------------------------------------------------


def _summary_items(prefix: str, summary: SummaryInfo) -> Iterator[Tuple[str, str]]:
    yield (
        prefix + SUMMARY_MARK,
        f"hosts|{summary.hosts_up}|{summary.hosts_down}",
    )
    for name, metric in summary.metrics.items():
        yield (
            f"{prefix}{SUMMARY_MARK}/{name}",
            f"{metric.total:.10g}|{metric.num}",
        )


def _cluster_items(
    prefix: str, cluster: ClusterElement, heartbeat_window: float
) -> Iterator[Tuple[str, str]]:
    for host in cluster.hosts.values():
        state = "up" if host.is_up(heartbeat_window) else "down"
        yield f"{prefix}/{host.name}", f"host|{state}"
        for metric in host.metrics.values():
            yield f"{prefix}/{host.name}/{metric.name}", metric.val


def flatten_snapshot(
    snapshot: SourceSnapshot, heartbeat_window: float = 80.0
) -> Dict[str, str]:
    """Flatten one source snapshot into delta paths."""
    state: Dict[str, str] = {
        snapshot.name: f"src|{snapshot.kind}|{'up' if snapshot.up else 'down'}"
    }
    state.update(_summary_items(snapshot.name, snapshot.summary))
    if snapshot.kind == "cluster" and snapshot.cluster is not None:
        snapshot.ensure_hosts()  # columnar shells materialize on read
        state.update(
            _cluster_items(snapshot.name, snapshot.cluster, heartbeat_window)
        )
    elif snapshot.grid is not None:
        nested: Dict[str, object] = dict(snapshot.grid.clusters)
        nested.update(snapshot.grid.grids)
        for name, element in nested.items():
            summary = getattr(element, "summary", None)
            if summary is not None:
                state.update(_summary_items(f"{snapshot.name}/{name}", summary))
    return state


def flatten_datastore(
    datastore: Datastore,
    heartbeat_window: float = 80.0,
    exclude_sources: Iterable[str] = (),
) -> Dict[str, str]:
    """Flatten the whole datastore; ``exclude_sources`` are skipped.

    An interior broker excludes sources covered by an upstream relay
    link: for those the child's (higher-resolution) feed is canonical
    and the local summary keys would fight it.
    """
    excluded = set(exclude_sources)
    state: Dict[str, str] = {}
    for name, snapshot in datastore.sources.items():
        if name in excluded:
            continue
        state.update(flatten_snapshot(snapshot, heartbeat_window))
    return state


# -- diffing ---------------------------------------------------------------


def diff_states(old: Dict[str, str], new: Dict[str, str]) -> List[DeltaOp]:
    """Ops turning ``old`` into ``new``, sorted by path (deterministic)."""
    ops: List[DeltaOp] = []
    for path, value in new.items():
        if old.get(path) != value:
            ops.append(DeltaOp("set", path, value))
    for path in old:
        if path not in new:
            ops.append(DeltaOp("del", path))
    ops.sort(key=lambda op: op.path)
    return ops


def apply_ops(state: Dict[str, str], ops: Iterable[DeltaOp]) -> None:
    """Apply delta ops to a mutable state map in place."""
    for op in ops:
        if op.op == "set":
            state[op.path] = op.value
        else:
            state.pop(op.path, None)


class DeltaEngine:
    """Tracks the last flattened snapshot and emits diffs on demand.

    One engine per broker.  ``advance`` re-flattens the datastore and
    returns the ops since the previous call; the caller charges CPU for
    ``keys_scanned`` (the flatten+diff pass touches every key once,
    mirroring the hash-table walk the query engine's full dump does).
    """

    def __init__(
        self, datastore: Datastore, heartbeat_window: float = 80.0
    ) -> None:
        self.datastore = datastore
        self.heartbeat_window = heartbeat_window
        self._state: Dict[str, str] = {}
        #: optional extra-keys hook (() -> Dict[str, str]) merged into
        #: every flattened view; the read tier's replication feed hangs
        #: its hidden ``__repl__`` namespace here
        self.augment = None
        self.diffs_computed = 0
        self.keys_scanned = 0

    @property
    def state(self) -> Dict[str, str]:
        """The engine's current flattened view (do not mutate)."""
        return self._state

    def advance(self, exclude_sources: Iterable[str] = ()) -> List[DeltaOp]:
        """Diff the live datastore against the last published state."""
        new = flatten_datastore(
            self.datastore, self.heartbeat_window, exclude_sources
        )
        if self.augment is not None:
            new.update(self.augment())
        ops = diff_states(self._state, new)
        self.diffs_computed += 1
        self.keys_scanned += len(new) + len(ops)
        self._state = new
        return ops
