"""The subscription registry: interest paths with lease-based soft state.

Subscriptions are keyed by query-engine paths -- the exact grammar of
:mod:`repro.core.query` (``/meteor/compute-0-0``) or the regex grammar
of :mod:`repro.core.query_regex` (``~/meteor|nashi/compute-0-\\d+``).
Each carries a *lease*: like a gmond heartbeat, a subscription that is
not renewed within its lease silently expires, so a crashed or
partitioned subscriber never leaves permanent state behind (soft-state
discipline, §2.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Pattern, Tuple

from repro.core.query import GmetadQuery, QueryError
from repro.core.query_regex import RegexQuery, RegexQueryError, is_regex_query
from repro.net.address import Address
from repro.pubsub.delta import key_segments

#: Default lease, chosen like gmond's heartbeat window: long enough to
#: ride out a couple of missed renewals, short enough that dead
#: subscribers are reaped within a minute.
DEFAULT_LEASE = 60.0


class SubscriptionError(ValueError):
    """Bad subscription parameters (path, lease)."""


@dataclass
class Subscription:
    """One subscriber's registered interest."""

    sub_id: str
    path: str                 # canonical path text ("/a/b" or "~/a.*/b")
    notify: Address           # where notifications are pushed
    lease: float
    expires_at: float
    segments: Optional[Tuple[str, ...]] = None       # exact paths
    patterns: Optional[Tuple[Pattern[str], ...]] = None  # regex paths
    created_at: float = 0.0
    renewals: int = field(default=0)

    def matches_key(self, key: str) -> bool:
        """True if a flat delta path falls inside this subscription.

        Prefix semantics: ``/sdsc-c0`` covers every key below the
        ``sdsc-c0`` source.  A key *shorter* than a regex pattern path
        matches if its available segments do -- subscribers receive the
        structural context (source/host liveness) of their interest.
        """
        segs = key_segments(key)
        if self.segments is not None:
            if len(segs) < len(self.segments):
                return False
            return segs[: len(self.segments)] == self.segments
        assert self.patterns is not None
        for pattern, seg in zip(self.patterns, segs):
            if not pattern.match(seg):
                return False
        return True

    @property
    def is_regex(self) -> bool:
        return self.patterns is not None


def parse_path(path: str) -> Tuple[str, Optional[Tuple[str, ...]], Optional[Tuple]]:
    """Validate a subscription path; returns (canonical, segments, patterns)."""
    if is_regex_query(path):
        try:
            query = RegexQuery.parse(path)
        except RegexQueryError as exc:
            raise SubscriptionError(str(exc)) from None
        return path.strip(), None, query.patterns
    try:
        query = GmetadQuery.parse(path)
    except QueryError as exc:
        raise SubscriptionError(str(exc)) from None
    return query.render().split("?")[0] or "/", query.path, None


class SubscriptionRegistry:
    """All live subscriptions of one broker, with lease expiry."""

    def __init__(self, default_lease: float = DEFAULT_LEASE) -> None:
        if default_lease <= 0:
            raise SubscriptionError("default lease must be positive")
        self.default_lease = default_lease
        self._subs: Dict[str, Subscription] = {}
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._subs)

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._subs

    def get(self, sub_id: str) -> Optional[Subscription]:
        return self._subs.get(sub_id)

    def subscribe(
        self,
        sub_id: str,
        path: str,
        notify: Address,
        now: float,
        lease: Optional[float] = None,
    ) -> Subscription:
        """Register (or replace) a subscription; returns the record."""
        if not sub_id:
            raise SubscriptionError("subscription id must be non-empty")
        lease = self.default_lease if lease is None else float(lease)
        if lease <= 0:
            raise SubscriptionError(f"lease must be positive, got {lease}")
        canonical, segments, patterns = parse_path(path)
        sub = Subscription(
            sub_id=sub_id,
            path=canonical,
            notify=notify,
            lease=lease,
            expires_at=now + lease,
            segments=segments,
            patterns=patterns,
            created_at=now,
        )
        self._subs[sub_id] = sub
        return sub

    def renew(
        self, sub_id: str, now: float, lease: Optional[float] = None
    ) -> bool:
        """Extend a lease; False if the subscription is unknown/expired."""
        sub = self._subs.get(sub_id)
        if sub is None:
            return False
        if lease is not None and lease > 0:
            sub.lease = float(lease)
        sub.expires_at = now + sub.lease
        sub.renewals += 1
        return True

    def unsubscribe(self, sub_id: str) -> bool:
        """Drop a subscription; False if it was not present."""
        return self._subs.pop(sub_id, None) is not None

    def expire(self, now: float) -> List[Subscription]:
        """Reap every subscription whose lease ran out; returns them."""
        dead = [s for s in self._subs.values() if s.expires_at <= now]
        for sub in dead:
            del self._subs[sub.sub_id]
            self.expirations += 1
        return dead

    def matching(self, key: str) -> List[Subscription]:
        """Subscriptions whose interest covers one flat delta path."""
        return [s for s in self._subs.values() if s.matches_key(key)]

    def subscriptions(self) -> List[Subscription]:
        """All live subscriptions, ordered by id (deterministic)."""
        return [self._subs[k] for k in sorted(self._subs)]

    def exact_paths(self) -> List[str]:
        """Canonical exact paths of all live non-regex subscriptions."""
        return sorted(
            s.path for s in self._subs.values() if s.segments is not None
        )
