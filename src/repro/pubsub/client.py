"""The subscriber side: mirror state, gap detection, reconnection.

:class:`DeltaStream` is the protocol core -- a mirror of the broker's
flattened state plus the sequence bookkeeping that decides whether an
incoming message applies cleanly, is a duplicate, or reveals a gap
(missed sequence numbers) that only a full sync can repair.  It is
shared by :class:`PushClient` (an end subscriber with its own TCP
listener) and the broker's upstream relay links
(:class:`repro.pubsub.broker.UpstreamLink`).

:class:`PushClient` is the failure-handling shell around the stream:

- it renews its lease on a heartbeat-like period;
- a renewal timeout (the broker is partitioned/dead -- observed through
  the poller-style per-request ``on_timeout`` diagnostics, which name
  the endpoint that timed out) marks the client disconnected;
- once disconnected, every renewal tick attempts a fresh subscribe,
  whose response is a full sync -- the reconnect-after-partition path;
- a delta whose ``prev`` does not extend the applied chain triggers an
  explicit sync request.

Received bytes and apply work are charged through the frontend's
existing :class:`~repro.frontend.costmodel.PhpSaxCostModel`, so push
and poll viewers are compared under the same cost accounting.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.frontend.costmodel import PhpSaxCostModel
from repro.net.address import Address
from repro.net.fabric import Fabric
from repro.net.tcp import Response, TcpNetwork, TcpTimeout
from repro.pubsub import messages
from repro.pubsub.delta import apply_ops
from repro.sim.engine import Engine, PeriodicTask

#: First port of the range push subscribers listen on.
PUSH_NOTIFY_PORT = 8700


class DeltaStream:
    """Sequence-tracked mirror of a broker's published state."""

    def __init__(self) -> None:
        self.mirror: Dict[str, str] = {}
        self.last_seq: int = -1
        self.synced = False
        # outcome counters
        self.deltas_applied = 0
        self.duplicates_ignored = 0
        self.gaps_detected = 0
        self.full_syncs_applied = 0

    def apply_message(self, message: dict) -> str:
        """Fold one ``delta``/``full`` message in; returns the outcome.

        Outcomes: ``"synced"`` (full sync installed), ``"applied"``
        (delta extended the chain), ``"duplicate"`` (already seen,
        e.g. a retransmit after a lost ack), ``"gap"`` (sequence
        numbers were missed -- caller must full-sync), ``"unsynced"``
        (delta before any full sync -- ditto).
        """
        kind = message.get("t")
        if kind == "full":
            if self.synced and int(message["seq"]) < self.last_seq:
                # an older sync crossing a newer one in transit
                self.duplicates_ignored += 1
                return "duplicate"
            self.mirror = dict(message["state"])
            self.last_seq = int(message["seq"])
            self.synced = True
            self.full_syncs_applied += 1
            return "synced"
        if kind != "delta":
            raise messages.MessageError(f"not a data message: {kind!r}")
        if not self.synced:
            return "unsynced"
        seq, prev = int(message["seq"]), int(message["prev"])
        if seq <= self.last_seq:
            self.duplicates_ignored += 1
            return "duplicate"
        if prev != self.last_seq:
            self.gaps_detected += 1
            return "gap"
        apply_ops(self.mirror, messages.ops_of(message))
        self.last_seq = seq
        self.deltas_applied += 1
        return "applied"


class PushClient:
    """One push subscriber: subscribes, listens, renews, recovers."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        tcp: TcpNetwork,
        broker: Address,
        path: str = "/",
        host: str = "push-viewer",
        port: int = PUSH_NOTIFY_PORT,
        sub_id: Optional[str] = None,
        lease: float = 60.0,
        renew_interval: Optional[float] = None,
        request_timeout: float = 5.0,
        costs: Optional[PhpSaxCostModel] = None,
        accept_binary: bool = False,
    ) -> None:
        self.engine = engine
        self.tcp = tcp
        self.broker = broker
        self.path = path
        self.host = host
        self.lease = lease
        self.renew_interval = (
            renew_interval if renew_interval is not None else lease / 3.0
        )
        self.request_timeout = request_timeout
        self.costs = costs or PhpSaxCostModel()
        #: offer the binary data-plane codec at subscribe time; the
        #: broker only grants it when its daemon's binary_wire is on, so
        #: notifications may arrive as str or bytes either way
        self.accept_binary = accept_binary
        self.sub_id = sub_id or f"{host}:{port}"
        self.notify_address = Address(host, port)
        self.stream = DeltaStream()
        if not fabric.has_host(host):
            fabric.add_host(host)
        self.connected = False
        self._renew_task: Optional[PeriodicTask] = None
        self._subscribe_in_flight = False
        self._sync_in_flight = False
        self._started = False
        # accounting
        self.bytes_received = 0
        self.control_bytes_sent = 0
        self.deltas_received = 0
        self.full_syncs_received = 0
        self.apply_seconds_total = 0.0
        self.timeouts = 0
        self.reconnects = 0
        #: last endpoint that timed out on us (the per-request timeout
        #: diagnostic carries the target Address)
        self.last_timeout: Optional[TcpTimeout] = None
        #: optional post-apply hook ``(message, outcome) -> None`` fired
        #: after every data message lands in the stream; read-tier
        #: replicas rebuild their datastore from it
        self.on_applied = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "PushClient":
        """Listen for notifications, subscribe, arm the renewal task."""
        if self._started:
            raise RuntimeError(f"push client {self.sub_id} already started")
        self._started = True
        self.tcp.listen(self.notify_address, self._on_notify)
        self._send_subscribe()
        self._renew_task = self.engine.every(
            self.renew_interval, self._renew_tick
        )
        return self

    def stop(self) -> None:
        """Stop renewing and close the listener (best-effort unsubscribe)."""
        if self._renew_task is not None:
            self._renew_task.stop()
            self._renew_task = None
        if self.connected:
            self._request(messages.unsubscribe(self.sub_id), lambda m: None)
        self.tcp.close(self.notify_address)
        self._started = False

    @property
    def state(self) -> Dict[str, str]:
        """The mirrored flat state (see :mod:`repro.pubsub.delta`)."""
        return self.stream.mirror

    # -- control-plane requests --------------------------------------------

    def _request(
        self, message: dict, on_reply, *, track_timeout=None, with_payload=False
    ) -> None:
        encoded = messages.encode(message)
        self.control_bytes_sent += len(encoded)

        def on_response(payload: object, rtt: float) -> None:
            if with_payload:
                # data-bearing replies: the caller needs the raw wire
                # payload (str or binary frame) for honest byte counts
                on_reply(messages.decode(payload), payload)
            else:
                on_reply(messages.decode(payload))

        def on_timeout(error: TcpTimeout) -> None:
            self.timeouts += 1
            self.last_timeout = error
            if track_timeout is not None:
                track_timeout(error)

        self.tcp.request(
            self.host,
            self.broker,
            encoded,
            on_response=on_response,
            timeout=self.request_timeout,
            on_timeout=on_timeout,
            request_size=len(encoded),
        )

    def _send_subscribe(self) -> None:
        # a reply racing a stop() must not resurrect the subscription
        if not self._started or self._subscribe_in_flight:
            return
        self._subscribe_in_flight = True

        def on_reply(message: dict, payload: object) -> None:
            self._subscribe_in_flight = False
            if message.get("t") == "full":
                self._apply_data(message, payload)
                if not self.connected:
                    self.connected = True
            else:
                self.connected = False

        def on_timeout(error: TcpTimeout) -> None:
            self._subscribe_in_flight = False
            self.connected = False

        self._request(
            messages.subscribe(
                self.sub_id,
                self.path,
                self.lease,
                self.notify_address.host,
                self.notify_address.port,
                accept="bin1" if self.accept_binary else None,
            ),
            on_reply,
            track_timeout=on_timeout,
            with_payload=True,
        )

    def _renew_tick(self) -> None:
        if not self.connected:
            self.reconnects += 1
            self._send_subscribe()
            return

        def on_reply(message: dict) -> None:
            if message.get("t") != "ok":
                # lease expired at the broker (e.g. we sat behind a
                # partition longer than the lease): re-subscribe,
                # which also delivers the full sync we now need
                self.connected = False
                self.reconnects += 1
                self._send_subscribe()

        def on_timeout(error: TcpTimeout) -> None:
            self.connected = False

        self._request(
            messages.renew(self.sub_id, self.lease),
            on_reply,
            track_timeout=on_timeout,
        )

    def request_sync(self) -> None:
        """Ask the broker for a full sync (gap recovery)."""
        if not self._started or self._sync_in_flight:
            return
        self._sync_in_flight = True

        def on_reply(message: dict, payload: object) -> None:
            self._sync_in_flight = False
            if message.get("t") == "full":
                self._apply_data(message, payload)

        def on_timeout(error: TcpTimeout) -> None:
            self._sync_in_flight = False
            self.connected = False

        self._request(
            messages.sync_request(self.sub_id),
            on_reply,
            track_timeout=on_timeout,
            with_payload=True,
        )

    # -- data plane ---------------------------------------------------------

    def _apply_data(self, message: dict, encoded: object) -> float:
        """Apply a data message, charge the cost model; returns seconds."""
        nbytes = messages.wire_size(encoded)
        self.bytes_received += nbytes
        if message.get("t") == "full":
            events = len(message.get("state", ()))
            self.full_syncs_received += 1
        else:
            events = len(message.get("ops", ()))
            self.deltas_received += 1
        seconds = self.costs.parse_seconds(nbytes, events)
        self.apply_seconds_total += seconds
        outcome = self.stream.apply_message(message)
        if outcome in ("gap", "unsynced"):
            self.request_sync()
        if self.on_applied is not None:
            self.on_applied(message, outcome)
        return seconds

    def _on_notify(self, client: str, payload: object) -> Response:
        try:
            message = messages.decode(payload)
        except messages.MessageError as exc:
            # a mangled notification (e.g. a corrupted binary frame)
            # must not kill the listener: refuse the ack so the broker
            # retries, falling back to a full sync if the gap persists
            return Response(messages.encode(messages.error(str(exc))))
        if message.get("t") not in ("delta", "full"):
            return Response(messages.encode(messages.error("not-a-notification")))
        seconds = self._apply_data(message, payload)
        return Response(
            messages.encode(messages.ok(self.stream.last_seq)),
            service_seconds=seconds,
        )
