"""Hierarchical publish-subscribe delivery with delta-encoded updates.

The paper's N-level design (§2.2-2.3) still makes every consumer *poll*:
gmetad re-fetches whole child XML trees on a period, and frontend
viewers re-download the subtree they display even when nothing changed.
This package replaces the consumer-facing half of that pull loop with an
interest-scoped push overlay, following the hierarchical pub-sub shape
evaluated by Zuzak et al. (PAPERS.md) and R-GMA's producer/consumer
split:

- :mod:`repro.pubsub.registry` -- subscriptions keyed by query-engine
  paths (exact ``/meteor/compute-0-0`` or regex ``~/...`` paths) with
  lease-based soft-state expiry mirroring gmond heartbeats;
- :mod:`repro.pubsub.delta` -- diffs successive datastore snapshots into
  compact delta operations, with sequence numbers and full-sync
  fallback for subscribers that miss updates;
- :mod:`repro.pubsub.folding` -- in-tree subscription aggregation: an
  interior broker folds its subscribers' paths into covering paths and
  holds ONE upstream subscription per covering path, so notification
  fan-out follows the monitoring tree instead of O(subscribers) root
  connections;
- :mod:`repro.pubsub.broker` -- the per-gmetad broker: subscribe /
  renew / sync service, per-subscriber bounded queues with
  drop-to-full-sync backpressure, upstream relay links;
- :mod:`repro.pubsub.client` -- the subscriber side: mirror state,
  gap detection, reconnect and re-subscribe after lease loss.

The broker charges all of its CPU to the host gmetad's
:class:`~repro.sim.resources.CpuAccount`, so push-vs-poll comparisons
(``benchmarks/test_pubsub_vs_poll.py``) use the same accounting as the
paper's Figure 5/6 experiments.
"""

from repro.pubsub.broker import PubSubBroker
from repro.pubsub.client import DeltaStream, PushClient
from repro.pubsub.delta import DeltaEngine, DeltaOp, diff_states, flatten_datastore
from repro.pubsub.folding import covering_paths
from repro.pubsub.registry import Subscription, SubscriptionRegistry

__all__ = [
    "PubSubBroker",
    "PushClient",
    "DeltaStream",
    "DeltaEngine",
    "DeltaOp",
    "diff_states",
    "flatten_datastore",
    "covering_paths",
    "Subscription",
    "SubscriptionRegistry",
]
