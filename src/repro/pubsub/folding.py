"""In-tree subscription folding: covering paths and key translation.

"Interest aggregation": an interior gmetad does not forward each of its
subscribers' interests upstream individually.  It folds them into the
minimal set of *covering paths* (a path is removed if an ancestor path
is also subscribed) and holds one upstream subscription per covering
path, so the notification fan-out from a leaf follows the monitoring
tree -- each change crosses a tree edge once, regardless of how many
end subscribers sit behind the parent.  This is the in-tree aggregation
that lets push delivery beat O(subscribers) root connections in the
hierarchical pub-sub evaluation of Zuzak et al. (PAPERS.md).

Translation helpers map between the two namespaces: a parent-side path
``/attic/attic-c0/host7`` becomes the child-side path
``/attic-c0/host7`` (the first segment names the data source the child
*is*), and child flat keys come back prefixed with the source name.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.core.query_regex import is_regex_query


def _segments(path: str) -> Tuple[str, ...]:
    return tuple(s for s in path.strip().split("/") if s)


def covering_paths(paths: Iterable[str]) -> List[str]:
    """The minimal prefix set covering every input path.

    Regex paths cannot be folded structurally, so any regex input (or a
    root path ``/``) collapses the cover to ``["/"]`` -- subscribe to
    everything once rather than per-pattern.
    """
    exact: List[Tuple[str, ...]] = []
    for path in paths:
        if is_regex_query(path):
            return ["/"]
        segs = _segments(path)
        if not segs:
            return ["/"]
        exact.append(segs)
    exact = sorted(set(exact), key=lambda s: (len(s), s))
    cover: List[Tuple[str, ...]] = []
    for segs in exact:
        if any(segs[: len(kept)] == kept for kept in cover):
            continue  # an ancestor already covers this path
        cover.append(segs)
    return ["/" + "/".join(segs) for segs in sorted(cover)]


def child_scope(path: str, source: str) -> Optional[str]:
    """Translate a parent-side path into the child broker's namespace.

    Returns None when the path does not fall under ``source``.  The
    root path ``/`` (and any regex path) covers every source and
    translates to the child's own root.
    """
    if is_regex_query(path):
        return "/"
    segs = _segments(path)
    if not segs:
        return "/"
    if segs[0] != source:
        return None
    return "/" + "/".join(segs[1:])


def prefix_key(key: str, source: str) -> str:
    """Translate a child flat key up into the parent namespace."""
    return f"{source}/{key}"


def prefix_state(state: dict, source: str) -> dict:
    """Translate a whole child state map up into the parent namespace."""
    return {prefix_key(k, source): v for k, v in state.items()}
