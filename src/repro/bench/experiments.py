"""The three experiments of §3, as callable drivers.

Each ``run_*`` function builds the paper's monitoring tree, runs the
measurement, and returns a structured result with a ``report()`` method
printing the same rows/series the paper's figure or table shows.  The
benchmarks under ``benchmarks/`` call these and assert the paper's
qualitative shape (who wins, roughly by how much, where the curves
bend).

Absolute numbers depend on the calibrated cost model
(:mod:`repro.bench.calibration`); shapes do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.reporting import format_bar_chart, format_table
from repro.bench.topology import (
    Federation,
    PAPER_GMETA_ORDER,
    build_paper_tree,
)
from repro.frontend.costmodel import PhpSaxCostModel
from repro.frontend.viewer import ViewTiming, WebFrontend
from repro.sim.resources import CostModel

#: Paper Fig. 6 cluster sizes.
PAPER_CLUSTER_SIZES = (10, 50, 100, 150, 200, 300, 400, 500)

#: Paper Table 1 reference numbers (seconds), for the report's
#: side-by-side column.  Not used in assertions.
PAPER_TABLE1 = {
    "1level": {"meta": 2.091, "cluster": 2.093, "host": 2.096},
    "nlevel": {"meta": 0.0092, "cluster": 0.198, "host": 0.003},
}


# ---------------------------------------------------------------------------
# Experiment 1: Fig. 5 -- per-gmetad CPU% in the monitoring tree
# ---------------------------------------------------------------------------

@dataclass
class Figure5Result:
    hosts_per_cluster: int
    window: float
    cpu_percent: Dict[str, Dict[str, float]]  # design -> gmetad -> CPU%
    breakdown: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def aggregate(self, design: str) -> float:
        """Sum of CPU% over the six gmetads for one design."""
        return sum(self.cpu_percent[design].values())

    def report(self) -> str:
        """The paper-style text report for this result."""
        rows = []
        for name in PAPER_GMETA_ORDER:
            rows.append(
                (
                    name,
                    self.cpu_percent["1level"].get(name, 0.0),
                    self.cpu_percent["nlevel"].get(name, 0.0),
                )
            )
        rows.append(("TOTAL", self.aggregate("1level"), self.aggregate("nlevel")))
        table = format_table(
            ["gmeta", "1-level %CPU", "N-level %CPU"],
            rows,
            title=(
                "Figure 5: Wide-Area Scalability -- gmetad CPU utilization in "
                f"the monitor tree ({self.hosts_per_cluster}-host clusters, "
                f"{self.window:.0f}s window)"
            ),
        )
        charts = "\n\n".join(
            format_bar_chart(
                {
                    n: self.cpu_percent[design].get(n, 0.0)
                    for n in PAPER_GMETA_ORDER
                },
                title=f"{design} design:",
            )
            for design in ("1level", "nlevel")
        )
        return f"{table}\n\n{charts}"


def run_figure5(
    hosts_per_cluster: int = 100,
    window: float = 300.0,
    warmup: float = 60.0,
    seed: int = 14,
    poll_interval: float = 15.0,
    costs: Optional[CostModel] = None,
    freeze_values: bool = False,
) -> Figure5Result:
    """Experiment 1: both designs on the Fig. 2 tree, identical workload."""
    cpu: Dict[str, Dict[str, float]] = {}
    breakdown: Dict[str, Dict[str, Dict[str, float]]] = {}
    for design in ("1level", "nlevel"):
        federation = build_paper_tree(
            design,
            hosts_per_cluster=hosts_per_cluster,
            seed=seed,
            poll_interval=poll_interval,
            archive_mode="account",
            costs=costs,
            freeze_values=freeze_values,
        )
        federation.start()
        cpu[design] = federation.run_measurement_window(window, warmup)
        now = federation.engine.now
        breakdown[design] = {
            name: g.cpu.category_breakdown(now)
            for name, g in federation.gmetads.items()
        }
        federation.stop()
    return Figure5Result(
        hosts_per_cluster=hosts_per_cluster,
        window=window,
        cpu_percent=cpu,
        breakdown=breakdown,
    )


# ---------------------------------------------------------------------------
# Experiment 2: Fig. 6 -- aggregate CPU% vs cluster size
# ---------------------------------------------------------------------------

@dataclass
class Figure6Result:
    sizes: Tuple[int, ...]
    window: float
    #: design -> [sum of CPU% over the 6 gmetads, one per size]
    aggregate: Dict[str, List[float]]
    #: design -> [root gmetad CPU%, one per size] (saturation diagnostics)
    root_cpu: Dict[str, List[float]]

    def report(self) -> str:
        rows = [
            (
                size,
                self.aggregate["1level"][i],
                self.aggregate["nlevel"][i],
                self.aggregate["1level"][i] / max(1e-9, self.aggregate["nlevel"][i]),
            )
            for i, size in enumerate(self.sizes)
        ]
        return format_table(
            ["cluster size", "1-level agg %CPU", "N-level agg %CPU", "ratio"],
            rows,
            title=(
                "Figure 6: Aggregate gmetad CPU utilization vs cluster size "
                f"(12 clusters, {self.window:.0f}s window)"
            ),
        )


def run_figure6(
    sizes: Sequence[int] = PAPER_CLUSTER_SIZES,
    window: float = 120.0,
    warmup: float = 45.0,
    seed: int = 14,
    poll_interval: float = 15.0,
    costs: Optional[CostModel] = None,
    freeze_values: bool = True,
) -> Figure6Result:
    """Experiment 2: sweep cluster size, fixed tree.

    Pseudo-gmond values are frozen by default (identical charged CPU,
    much less emulator overhead at 500-host sizes); see
    :func:`repro.bench.topology.build_paper_tree`.
    """
    aggregate: Dict[str, List[float]] = {"1level": [], "nlevel": []}
    root_cpu: Dict[str, List[float]] = {"1level": [], "nlevel": []}
    for size in sizes:
        for design in ("1level", "nlevel"):
            federation = build_paper_tree(
                design,
                hosts_per_cluster=size,
                seed=seed,
                poll_interval=poll_interval,
                archive_mode="account",
                costs=costs,
                freeze_values=freeze_values,
            )
            federation.start()
            cpu = federation.run_measurement_window(window, warmup)
            aggregate[design].append(sum(cpu.values()))
            root_cpu[design].append(cpu["root"])
            federation.stop()
    return Figure6Result(
        sizes=tuple(sizes),
        window=window,
        aggregate=aggregate,
        root_cpu=root_cpu,
    )


# ---------------------------------------------------------------------------
# Experiment 3: Table 1 -- web frontend query+parse time per view
# ---------------------------------------------------------------------------

@dataclass
class Table1Result:
    hosts_per_cluster: int
    #: design -> view -> ViewTiming
    timings: Dict[str, Dict[str, ViewTiming]]

    def seconds(self, design: str, view: str) -> float:
        """Total viewer seconds for one (design, view)."""
        return self.timings[design][view].total_seconds

    def speedup(self, view: str) -> float:
        """1-level time over N-level time for one view."""
        return self.seconds("1level", view) / max(1e-12, self.seconds("nlevel", view))

    def report(self) -> str:
        views = ("meta", "cluster", "host")
        rows = [
            tuple([design] + [self.seconds(design, v) for v in views])
            for design in ("1level", "nlevel")
        ]
        rows.append(tuple(["speedup"] + [self.speedup(v) for v in views]))
        rows.append(
            tuple(
                ["paper speedup"]
                + [
                    PAPER_TABLE1["1level"][v] / PAPER_TABLE1["nlevel"][v]
                    for v in views
                ]
            )
        )
        return format_table(
            ["run", "meta (s)", "cluster (s)", "host (s)"],
            rows,
            title=(
                "Table 1: web-frontend time to query and parse Ganglia XML "
                f"from the sdsc gmeta ({self.hosts_per_cluster}-host clusters)"
            ),
        )


def run_table1(
    hosts_per_cluster: int = 100,
    warmup: float = 90.0,
    seed: int = 14,
    samples: int = 5,
    poll_interval: float = 15.0,
    costs: Optional[CostModel] = None,
    php_costs: Optional[PhpSaxCostModel] = None,
    freeze_values: bool = True,
) -> Table1Result:
    """Experiment 3: point the viewer at the sdsc gmetad, time 3 views.

    "We point the viewer at the sdsc gmeta node for this test where the
    clusters have 100 hosts each. ... each value in table 1 is the
    average of five samples."
    """
    timings: Dict[str, Dict[str, ViewTiming]] = {}
    for design in ("1level", "nlevel"):
        federation = build_paper_tree(
            design,
            hosts_per_cluster=hosts_per_cluster,
            seed=seed,
            poll_interval=poll_interval,
            archive_mode="account",
            costs=costs,
            freeze_values=freeze_values,
        )
        federation.start()
        federation.engine.run_for(warmup)
        sdsc = federation.gmetad("sdsc")
        viewer = WebFrontend(
            federation.engine,
            federation.fabric,
            federation.tcp,
            target=sdsc.address,
            design=design,
            costs=php_costs,
        )
        cluster_name = "sdsc-c0"
        host_name = f"{cluster_name}-0-0"
        timings[design] = {}
        for view, kwargs in (
            ("meta", {}),
            ("cluster", {"cluster": cluster_name}),
            ("host", {"cluster": cluster_name, "host": host_name}),
        ):
            collected: List[ViewTiming] = []
            for _ in range(samples):
                _, timing = viewer.render_view(view, **kwargs)
                collected.append(timing)
                federation.engine.run_for(1.0)
            mean = ViewTiming(
                view=view,
                query=collected[0].query,
                download_seconds=sum(t.download_seconds for t in collected)
                / len(collected),
                parse_seconds=sum(t.parse_seconds for t in collected)
                / len(collected),
                bytes_received=collected[0].bytes_received,
                sax_events=collected[0].sax_events,
            )
            timings[design][view] = mean
        federation.stop()
    return Table1Result(hosts_per_cluster=hosts_per_cluster, timings=timings)


# ---------------------------------------------------------------------------
# Experiment 4 (extension): push vs poll delivery at equal freshness
# ---------------------------------------------------------------------------

@dataclass
class PubSubResult:
    """Push (repro.pubsub) vs poll (WebFrontend) at equal freshness.

    One viewer per cluster watches its cluster view.  Poll mode
    re-downloads the view every ``view_interval`` seconds; push mode
    subscribes once and receives delta notifications.  ``*_bytes`` count
    everything the viewers put on the wire (responses + requests for
    poll; notifications + control traffic for push) during the window.
    """

    cluster_counts: Tuple[int, ...]
    hosts_per_cluster: int
    window: float
    view_interval: float
    refresh_interval: float
    poll_bytes: List[int]
    push_bytes: List[int]
    poll_root_cpu: List[float]
    push_root_cpu: List[float]
    push_deltas: List[int]
    push_full_syncs: List[int]

    def savings(self, i: int) -> float:
        """Fraction of poll bytes that push delivery avoided."""
        return 1.0 - self.push_bytes[i] / max(1, self.poll_bytes[i])

    def report(self) -> str:
        rows = [
            (
                count,
                self.poll_bytes[i],
                self.push_bytes[i],
                100.0 * self.savings(i),
                self.poll_root_cpu[i],
                self.push_root_cpu[i],
            )
            for i, count in enumerate(self.cluster_counts)
        ]
        table = format_table(
            [
                "clusters",
                "poll bytes",
                "push bytes",
                "saved %",
                "poll root %CPU",
                "push root %CPU",
            ],
            rows,
            title=(
                "Push vs poll delivery at equal freshness "
                f"({self.hosts_per_cluster}-host clusters, "
                f"view every {self.view_interval:.0f}s, values change every "
                f"{self.refresh_interval:.0f}s, {self.window:.0f}s window)"
            ),
        )
        chart = format_bar_chart(
            {
                f"{count} poll": self.poll_bytes[i]
                for i, count in enumerate(self.cluster_counts)
            }
            | {
                f"{count} push": self.push_bytes[i]
                for i, count in enumerate(self.cluster_counts)
            },
            title="bytes on wire (viewer-facing):",
            unit=" B",
        )
        return f"{table}\n\n{chart}"


def _star_federation(
    clusters: int,
    hosts_per_cluster: int,
    seed: int,
    poll_interval: float,
    refresh_interval: float,
    costs: Optional[CostModel],
) -> Federation:
    """C pseudo clusters under a single root gmetad."""
    return build_paper_tree(
        "nlevel",
        hosts_per_cluster=hosts_per_cluster,
        seed=seed,
        poll_interval=poll_interval,
        archive_mode="account",
        costs=costs,
        attachment={"root": clusters},
        trust_edges=[],
        refresh_interval=refresh_interval,
    )


def run_pubsub_comparison(
    cluster_counts: Sequence[int] = (2, 4, 8),
    hosts_per_cluster: int = 16,
    window: float = 240.0,
    warmup: float = 60.0,
    view_interval: float = 15.0,
    refresh_interval: float = 240.0,
    seed: int = 14,
    poll_interval: float = 15.0,
    costs: Optional[CostModel] = None,
    php_costs: Optional[PhpSaxCostModel] = None,
) -> PubSubResult:
    """Sweep federation width; measure both delivery modes.

    Low change rate by construction: pseudo-gmond values re-randomize
    every ``refresh_interval`` (240 s) while poll-mode viewers refresh
    every ``view_interval`` (15 s) -- the regime where delta encoding
    pays, since most poll downloads carry unchanged values.
    """
    if warmup < 2.0 * poll_interval:
        raise ValueError(
            f"warmup ({warmup:g}s) must cover at least two poll cycles "
            f"({2.0 * poll_interval:g}s) so cluster views are populated"
        )
    poll_bytes: List[int] = []
    push_bytes: List[int] = []
    poll_root_cpu: List[float] = []
    push_root_cpu: List[float] = []
    push_deltas: List[int] = []
    push_full_syncs: List[int] = []

    for count in cluster_counts:
        # -- poll mode ----------------------------------------------------
        federation = _star_federation(
            count, hosts_per_cluster, seed, poll_interval,
            refresh_interval, costs,
        )
        federation.start()
        engine = federation.engine
        root = federation.gmetad("root")
        viewers = [
            WebFrontend(
                engine,
                federation.fabric,
                federation.tcp,
                target=root.address,
                design="nlevel",
                host=f"viewer-{i}",
                costs=php_costs,
            )
            for i in range(count)
        ]
        engine.run_for(warmup)
        federation.reset_cpu_windows()
        total = 0
        end = engine.now + window
        while engine.now < end:
            for i, viewer in enumerate(viewers):
                _, timing = viewer.render_view(
                    "cluster", cluster=f"root-c{i}"
                )
                total += timing.bytes_received + len(timing.query)
            remaining = end - engine.now
            if remaining <= 0:
                break
            engine.run_for(min(view_interval, remaining))
        poll_bytes.append(total)
        poll_root_cpu.append(root.cpu.cpu_percent(engine.now))
        federation.stop()

        # -- push mode ----------------------------------------------------
        federation = _star_federation(
            count, hosts_per_cluster, seed, poll_interval,
            refresh_interval, costs,
        )
        federation.start()
        engine = federation.engine
        root = federation.gmetad("root")
        broker = root.attach_pubsub()
        from repro.pubsub.client import PushClient

        clients = [
            PushClient(
                engine,
                federation.fabric,
                federation.tcp,
                broker.address,
                path=f"/root-c{i}",
                host=f"push-viewer-{i}",
                sub_id=f"push-viewer-{i}",
                costs=php_costs,
            ).start()
            for i in range(count)
        ]
        engine.run_for(warmup)
        federation.reset_cpu_windows()
        before = sum(c.bytes_received + c.control_bytes_sent for c in clients)
        before_deltas = sum(c.deltas_received for c in clients)
        before_fulls = sum(c.full_syncs_received for c in clients)
        engine.run_for(window)
        push_bytes.append(
            sum(c.bytes_received + c.control_bytes_sent for c in clients)
            - before
        )
        push_deltas.append(
            sum(c.deltas_received for c in clients) - before_deltas
        )
        push_full_syncs.append(
            sum(c.full_syncs_received for c in clients) - before_fulls
        )
        push_root_cpu.append(root.cpu.cpu_percent(engine.now))
        for client in clients:
            client.stop()
        broker.stop()
        federation.stop()

    return PubSubResult(
        cluster_counts=tuple(cluster_counts),
        hosts_per_cluster=hosts_per_cluster,
        window=window,
        view_interval=view_interval,
        refresh_interval=refresh_interval,
        poll_bytes=poll_bytes,
        push_bytes=push_bytes,
        poll_root_cpu=poll_root_cpu,
        push_root_cpu=push_root_cpu,
        push_deltas=push_deltas,
        push_full_syncs=push_full_syncs,
    )
