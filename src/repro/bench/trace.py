"""Record and replay gmetad ingest traces.

The calibration note on this reproduction flags throughput benchmarks as
the least faithful part of a simulation-based reproduction.  Traces
close part of that gap: record the *actual XML byte streams* a gmetad
ingests during a live federation run, persist them, and replay them
through a fresh daemon's real ingest path (parse -> summarize ->
archive -> install) with wall-clock timing and no simulation in the
loop.  The replayed workload has exactly the payload sizes, element
mixes and source interleaving of the recorded run.

On-disk format: a directory with ``manifest.jsonl`` (one record per
poll: time, source, payload file, size) plus one ``.xml`` file per poll.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import List, Union

from repro.core.gmetad_base import GmetadBase
from repro.wire.parser import parse_document


@dataclass(frozen=True)
class TraceRecord:
    """One recorded poll response."""

    sim_time: float
    source: str
    xml: str

    @property
    def size_bytes(self) -> int:
        return len(self.xml)


@dataclass
class IngestTrace:
    """An ordered sequence of recorded polls."""

    records: List[TraceRecord] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.records)

    def sources(self) -> List[str]:
        """Distinct source names appearing in the trace."""
        return sorted({r.source for r in self.records})

    # -- persistence ----------------------------------------------------------

    def save(self, directory: Union[str, pathlib.Path]) -> None:
        """Write the trace to a directory (manifest + payload files)."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with open(directory / "manifest.jsonl", "w") as manifest:
            for i, record in enumerate(self.records):
                payload_name = f"poll-{i:06d}.xml"
                (directory / payload_name).write_text(record.xml)
                manifest.write(
                    json.dumps(
                        {
                            "sim_time": record.sim_time,
                            "source": record.source,
                            "payload": payload_name,
                            "bytes": record.size_bytes,
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, directory: Union[str, pathlib.Path]) -> "IngestTrace":
        """Read a trace directory written by save()."""
        directory = pathlib.Path(directory)
        manifest_path = directory / "manifest.jsonl"
        if not manifest_path.exists():
            raise FileNotFoundError(f"no trace manifest at {manifest_path}")
        trace = cls()
        for line in manifest_path.read_text().splitlines():
            if not line.strip():
                continue
            entry = json.loads(line)
            xml = (directory / entry["payload"]).read_text()
            trace.records.append(
                TraceRecord(
                    sim_time=entry["sim_time"],
                    source=entry["source"],
                    xml=xml,
                )
            )
        return trace


class TraceRecorder:
    """Attaches to a live gmetad and captures everything it ingests."""

    def __init__(self, gmetad: GmetadBase) -> None:
        if gmetad.ingest_tap is not None:
            raise RuntimeError("gmetad already has an ingest tap")
        self.gmetad = gmetad
        self.trace = IngestTrace()
        gmetad.ingest_tap = self._tap

    def _tap(self, source: str, xml: str, sim_time: float) -> None:
        self.trace.records.append(TraceRecord(sim_time, source, xml))

    def detach(self) -> IngestTrace:
        """Remove the tap and return the captured trace."""
        self.gmetad.ingest_tap = None
        return self.trace


@dataclass
class ReplayResult:
    """Wall-clock throughput of one replay."""

    polls: int
    total_bytes: int
    elapsed_seconds: float
    parse_errors: int

    @property
    def megabytes_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_bytes / 1e6 / self.elapsed_seconds

    @property
    def polls_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.polls / self.elapsed_seconds


def replay_trace(
    trace: IngestTrace,
    gmetad: GmetadBase,
    repeats: int = 1,
    validate_first: bool = True,
) -> ReplayResult:
    """Push a trace through ``gmetad``'s real ingest path, timed.

    The daemon must not be started (no pollers); replay drives
    ``_on_data`` directly, exactly as the network layer would.  Poll
    timestamps are re-based so repeated passes stay monotonic for the
    archiver.
    """
    if not trace.records:
        raise ValueError("empty trace")
    if validate_first:
        parse_document(trace.records[0].xml, validate=True)
    span = trace.records[-1].sim_time - trace.records[0].sim_time + 15.0
    start = time.perf_counter()
    for pass_index in range(repeats):
        base = pass_index * span
        for record in trace.records:
            # re-base the engine clock so ingest timestamps advance
            target = base + record.sim_time
            if target > gmetad.engine.now:
                gmetad.engine.run_until(target)
            gmetad._on_data(record.source, record.xml, rtt=0.0)
    elapsed = time.perf_counter() - start
    return ReplayResult(
        polls=len(trace.records) * repeats,
        total_bytes=trace.total_bytes * repeats,
        elapsed_seconds=elapsed,
        parse_errors=gmetad.parse_errors,
    )


def record_federation_trace(
    hosts_per_cluster: int = 50,
    cycles: int = 6,
    gmetad_name: str = "sdsc",
    seed: int = 14,
) -> IngestTrace:
    """Convenience: run the paper tree briefly, record one gmetad."""
    from repro.bench.topology import build_paper_tree

    federation = build_paper_tree(
        "nlevel",
        hosts_per_cluster=hosts_per_cluster,
        seed=seed,
        archive_mode="account",
    )
    recorder = TraceRecorder(federation.gmetad(gmetad_name))
    federation.start()
    federation.engine.run_for(15.0 * (cycles + 1))
    federation.stop()
    return recorder.detach()
