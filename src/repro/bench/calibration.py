"""How the CPU cost model was calibrated, and a helper to re-derive it.

The paper measures wall-clock CPU percentages of the C gmetad daemons on
dual 2.2 GHz Pentium 4 nodes.  We charge abstract *work units* per
operation (:class:`repro.sim.resources.CostModel`) and convert to
CPU-seconds via a node ``capacity``.

Calibration procedure (one anchor, everything else predicted):

1. Fix the *relative* costs from the structure of the work: parsing is
   charged per byte (SAX pass), serving per byte (string assembly,
   cheaper than parsing), summarization per numeric sample, archiving
   per RRD update (the most expensive per-item operation -- RRDtool
   consolidation + storage), connections and query dispatch as small
   constants.
2. Choose ``capacity`` so that the **1-level root gmetad with twelve
   100-host clusters uses ~14% CPU** -- the single anchor taken from the
   paper's Figure 5.
3. Everything else -- the N-level bars of Fig. 5, both Fig. 6 curves,
   the onset of root saturation -- is then a *prediction* of the model,
   compared (qualitatively) against the paper in EXPERIMENTS.md.

:func:`calibrate_capacity` re-derives step 2 for a modified cost model.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.topology import build_paper_tree
from repro.sim.resources import CostModel

#: The paper's Fig. 5 anchor: 1-level root CPU% at H=100.
PAPER_ROOT_CPU_PERCENT = 14.0


def measure_root_cpu(
    costs: Optional[CostModel] = None,
    capacity: float = 5.0e6,
    hosts_per_cluster: int = 100,
    window: float = 90.0,
    warmup: float = 45.0,
) -> float:
    """1-level root CPU% under the paper's Fig. 5 workload."""
    federation = build_paper_tree(
        "1level",
        hosts_per_cluster=hosts_per_cluster,
        archive_mode="account",
        costs=costs,
        capacity=capacity,
        freeze_values=True,
    )
    federation.start()
    cpu = federation.run_measurement_window(window, warmup)
    federation.stop()
    return cpu["root"]


def calibrate_capacity(
    costs: Optional[CostModel] = None,
    target_percent: float = PAPER_ROOT_CPU_PERCENT,
    hosts_per_cluster: int = 100,
    window: float = 90.0,
) -> float:
    """Capacity that puts the 1-level root at ``target_percent``.

    CPU% is (nearly) inversely proportional to capacity (the contention
    term bends it slightly at high utilization), so one probe plus one
    correction step suffices.
    """
    probe_capacity = 5.0e6
    measured = measure_root_cpu(
        costs, probe_capacity, hosts_per_cluster, window=window
    )
    if measured <= 0:
        raise RuntimeError("calibration probe measured zero CPU")
    capacity = probe_capacity * measured / target_percent
    # one refinement step to absorb the contention nonlinearity
    measured = measure_root_cpu(costs, capacity, hosts_per_cluster, window=window)
    return capacity * measured / target_percent
