"""Plain-text rendering of experiment results, paper-style."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table; numbers right-aligned, 4 significant digits."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.001:
                return f"{value:.3g}"
            return f"{value:.4g}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_bar_chart(
    values: Dict[str, float], title: str = "", width: int = 50, unit: str = "%"
) -> str:
    """ASCII bar chart for quick visual comparison of Fig. 5-style data."""
    if not values:
        return title
    peak = max(values.values()) or 1.0
    name_width = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(f"{name.ljust(name_width)} |{bar} {value:.2f}{unit}")
    return "\n".join(lines)
