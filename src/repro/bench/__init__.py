"""Experiment harness: topologies, figure/table runners, reporting.

Everything the evaluation section (§3) needs: the six-gmetad monitoring
tree of paper Fig. 2 with twelve pseudo-gmond clusters
(:mod:`repro.bench.topology`), the three experiment drivers
(:mod:`repro.bench.experiments`), cost-model calibration notes
(:mod:`repro.bench.calibration`) and table formatting
(:mod:`repro.bench.reporting`).
"""

from repro.bench.topology import Federation, build_paper_tree
from repro.bench.experiments import (
    Figure5Result,
    Figure6Result,
    Table1Result,
    run_figure5,
    run_figure6,
    run_table1,
)

__all__ = [
    "Federation",
    "build_paper_tree",
    "run_figure5",
    "run_figure6",
    "run_table1",
    "Figure5Result",
    "Figure6Result",
    "Table1Result",
]
