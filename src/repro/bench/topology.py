"""The paper's experimental monitoring tree (Fig. 2).

Six gmetad monitors::

        root
       /    \\
    ucsd     sdsc
    /  \\       \\
 physics math   attic

with twelve pseudo-gmond clusters attached at the leaves: three each on
physics, math and attic, and three local to sdsc.  "The twelve clusters
in the tree are simulated with pseudo-gmons" (§3.1); every cluster has
the same number of hosts (100 in experiment 1, swept in experiment 2).

:func:`build_paper_tree` assembles the whole federation for either
design; experiments then just ``run_measurement_window`` and read each
gmetad's :class:`~repro.sim.resources.CpuAccount`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analytics.config import AnalyticsConfig
from repro.core.gmetad import Gmetad
from repro.core.gmetad_1level import OneLevelGmetad
from repro.core.gmetad_base import GmetadBase
from repro.core.resilience import ResilienceConfig
from repro.core.tree import GmetadConfig, MonitorTree
from repro.obs.config import ObservabilityConfig
from repro.storage.config import StorageTierConfig
from repro.gmond.pseudo import PseudoGmond
from repro.net.fabric import Fabric
from repro.net.tcp import TcpNetwork
from repro.sim.engine import Engine
from repro.sim.resources import DEFAULT_CAPACITY, CostModel
from repro.sim.rng import RngRegistry

#: gmetad name -> number of directly attached pseudo-gmond clusters
PAPER_CLUSTER_ATTACHMENT: Dict[str, int] = {
    "physics": 3,
    "math": 3,
    "attic": 3,
    "sdsc": 3,
    "ucsd": 0,
    "root": 0,
}

#: parent -> children trust edges of Fig. 2
PAPER_TRUST_EDGES = [
    ("root", "ucsd"),
    ("root", "sdsc"),
    ("ucsd", "physics"),
    ("ucsd", "math"),
    ("sdsc", "attic"),
]

#: Evaluation order used in the Fig. 5 bar chart.
PAPER_GMETA_ORDER = ["root", "ucsd", "physics", "math", "sdsc", "attic"]


@dataclass
class Federation:
    """A fully wired monitoring federation ready to run."""

    design: str
    engine: Engine
    fabric: Fabric
    tcp: TcpNetwork
    rngs: RngRegistry
    tree: MonitorTree
    gmetads: Dict[str, GmetadBase]
    pseudos: Dict[str, PseudoGmond] = field(default_factory=dict)
    hosts_per_cluster: int = 0

    def start(self) -> "Federation":
        """Start every gmetad, children before parents."""
        # children before parents so the first parent poll finds data
        for name in self.tree.walk_depth_first():
            self.gmetads[name].start()
        return self

    def stop(self) -> None:
        """Stop every gmetad."""
        for gmetad in self.gmetads.values():
            gmetad.stop()

    def gmetad(self, name: str) -> GmetadBase:
        """One gmetad daemon by name."""
        return self.gmetads[name]

    def reset_cpu_windows(self) -> None:
        """Start a fresh CPU measurement window on every gmetad."""
        now = self.engine.now
        for gmetad in self.gmetads.values():
            gmetad.cpu.reset_window(now)

    def cpu_percents(self) -> Dict[str, float]:
        """Current-window CPU% per gmetad."""
        now = self.engine.now
        return {
            name: g.cpu.cpu_percent(now) for name, g in self.gmetads.items()
        }

    def run_measurement_window(
        self, window: float, warmup: float = 60.0
    ) -> Dict[str, float]:
        """Warm up, reset the CPU windows, run ``window`` sim-seconds.

        Mirrors §3.1: "we calculate CPU usage percentages over a
        [60-minute] timing window" -- the window length is a parameter
        here because the workload is periodic and converges much faster.
        """
        self.engine.run_for(warmup)
        self.reset_cpu_windows()
        self.engine.run_for(window)
        return self.cpu_percents()


def _gmetad_class(design: str):
    if design == "nlevel":
        return Gmetad
    if design == "1level":
        return OneLevelGmetad
    raise ValueError(f"design must be 'nlevel' or '1level', got {design!r}")


def build_paper_tree(
    design: str,
    hosts_per_cluster: int = 100,
    seed: int = 14,  # the paper's plots carry "id=14"
    poll_interval: float = 15.0,
    archive_mode: str = "account",
    costs: Optional[CostModel] = None,
    capacity: float = DEFAULT_CAPACITY,
    engine: Optional[Engine] = None,
    attachment: Optional[Dict[str, int]] = None,
    freeze_values: bool = False,
    trust_edges: Optional[List[Tuple[str, str]]] = None,
    refresh_interval: Optional[float] = None,
    incremental: bool = False,
    resilience: Optional[ResilienceConfig] = None,
    observability: Optional[ObservabilityConfig] = None,
    columnar: bool = False,
    columnar_serve: bool = False,
    binary_wire: bool = False,
    binary_gmonds: Optional[Dict[str, bool]] = None,
    storage_tier: Optional[StorageTierConfig] = None,
    analytics: Optional[AnalyticsConfig] = None,
) -> Federation:
    """Build the Fig. 2 federation for one design.

    ``archive_mode="account"`` (default) charges archive CPU without
    allocating RRD arrays -- required for the 500-host sweeps; pass
    ``"full"`` for runs that read histories back.

    ``freeze_values=True`` makes the pseudo-gmonds serve the same random
    values for the whole run.  The gmetads still download, parse,
    summarize and archive every cycle -- the charged CPU is identical --
    but the emulator skips re-randomizing, which speeds up the largest
    sweeps.  Only use it for CPU measurements, never for archive
    content.

    ``attachment`` and ``trust_edges`` together describe a custom
    topology (e.g. a star of C clusters under one root for the pub-sub
    benchmarks); they default to the paper's Fig. 2 tree.
    ``refresh_interval`` overrides how often pseudo-gmond metric values
    change -- the *change rate* knob the delta-encoding experiments
    sweep (default: once per poll interval).

    ``incremental`` turns on the incremental ingest pipeline
    (conditional polls, delta summarization, memoized serialization) on
    every gmetad.  Deliberately **off** here by default: this builder
    backs the paper-figure runners, whose eager behaviour is the
    baseline being reproduced.  New experiments opt in explicitly.

    ``resilience`` attaches one shared
    :class:`~repro.core.resilience.ResilienceConfig` to every gmetad
    (adaptive timeouts, health-biased fail-over, circuit breakers,
    salvage ingest).  Default ``None``: the paper-faithful baseline.

    ``columnar`` turns on the columnar ingest fast path (interned
    streaming parse, vectorized summarization, batched RRD scatter) on
    every gmetad.  Off by default for the same reason as
    ``incremental``; flipping it changes wall-clock time only.

    ``columnar_serve`` additionally serves detail and path queries by
    splicing pre-rendered per-host fragments straight from the columns
    (:mod:`repro.serve`) -- replies stay byte-identical, unchanged-host
    bytes are charged at the memcpy rate.  Requires ``columnar``.

    ``observability`` attaches one shared
    :class:`~repro.obs.config.ObservabilityConfig` to every gmetad
    (metrics registry, trace spans, in-band ``__gmetad__`` cluster,
    drift auditor).  Default ``None``: fully uninstrumented.

    ``binary_wire`` turns on the compact binary codec
    (:mod:`repro.wire.binfmt`) on every gmetad: polls offer
    ``accept=bin1`` and peers that can answer binary do.  Off by
    default; per-link negotiation means flipping it never changes the
    installed state, only the bytes that carried it.
    ``binary_gmonds`` maps cluster names to capability overrides for
    mixed-fleet experiments (``{"sdsc-c0": False}`` keeps that emulator
    XML-only); unlisted clusters follow ``binary_wire``.

    ``storage_tier`` attaches one shared
    :class:`~repro.storage.config.StorageTierConfig` to every gmetad:
    each daemon archives through its own fleet of simulated storage
    nodes (clustering-driven shard placement, R-way replication,
    failover fetch, anti-entropy repair).  Default ``None``: the
    single-store baseline, byte-for-byte.

    ``analytics`` attaches one shared
    :class:`~repro.analytics.config.AnalyticsConfig` to every gmetad:
    each archive flush triggers a vectorized trend/anomaly pass over the
    daemon's archived series, feeding the predictive alarm-rule kinds
    and an in-band ``__analytics__`` signal cluster.  Default ``None``:
    no analytics, output byte-identical to baseline.
    """
    engine = engine or Engine()
    fabric = Fabric()
    rngs = RngRegistry(seed)
    tcp = TcpNetwork(engine, fabric, rng=rngs.stream("tcp.gray"))
    tree = MonitorTree()
    attachment = attachment or PAPER_CLUSTER_ATTACHMENT
    if trust_edges is None:
        trust_edges = PAPER_TRUST_EDGES

    configs: Dict[str, GmetadConfig] = {}
    for name in attachment:
        configs[name] = GmetadConfig(
            name=name,
            host=f"gmeta-{name}",
            gridname=name.upper(),
            poll_interval=poll_interval,
            archive_mode=archive_mode,
            incremental=incremental,
            resilience=resilience,
            observability=observability,
            columnar=columnar,
            columnar_serve=columnar_serve,
            binary_wire=binary_wire,
            storage_tier=storage_tier,
            analytics=analytics,
        )
        tree.add_gmetad(configs[name])

    pseudos: Dict[str, PseudoGmond] = {}
    for gmeta_name, cluster_count in attachment.items():
        for i in range(cluster_count):
            cluster_name = f"{gmeta_name}-c{i}"
            pseudo = PseudoGmond(
                engine,
                fabric,
                tcp,
                cluster_name,
                hosts_per_cluster,
                rngs.stream(f"pseudo:{cluster_name}"),
                refresh_interval=(
                    float("inf")
                    if freeze_values
                    else (
                        refresh_interval
                        if refresh_interval is not None
                        else poll_interval
                    )
                ),
                binary_capable=(
                    binary_gmonds.get(cluster_name, binary_wire)
                    if binary_gmonds is not None
                    else binary_wire
                ),
            )
            pseudos[cluster_name] = pseudo
            configs[gmeta_name].add_source(cluster_name, [pseudo.address])

    for parent, child in trust_edges:
        tree.add_trust(parent, child)

    cls = _gmetad_class(design)
    gmetads: Dict[str, GmetadBase] = {}
    for name in attachment:
        gmetads[name] = cls(
            engine,
            fabric,
            tcp,
            configs[name],
            costs=costs,
            capacity=capacity,
        )

    return Federation(
        design=design,
        engine=engine,
        fabric=fabric,
        tcp=tcp,
        rngs=rngs,
        tree=tree,
        gmetads=gmetads,
        pseudos=pseudos,
        hosts_per_cluster=hosts_per_cluster,
    )
