"""CSV export of experiment results (for external plotting).

The paper's figures are gnuplot renderings of series data; these
exporters emit the same series as CSV so any plotting tool can redraw
them.  The benchmark suite writes them next to the text reports in
``benchmarks/out/``.
"""

from __future__ import annotations

import csv
import io
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.bench.experiments import (
        Figure5Result,
        Figure6Result,
        PubSubResult,
        Table1Result,
    )


def _csv(headers, rows) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


def figure5_csv(result: "Figure5Result") -> str:
    """One row per gmetad: CPU% under each design, plus the breakdown."""
    from repro.bench.topology import PAPER_GMETA_ORDER

    rows = []
    for name in PAPER_GMETA_ORDER:
        row = [
            name,
            f"{result.cpu_percent['1level'].get(name, 0.0):.4f}",
            f"{result.cpu_percent['nlevel'].get(name, 0.0):.4f}",
        ]
        for design in ("1level", "nlevel"):
            breakdown = result.breakdown.get(design, {}).get(name, {})
            for category in ("parse", "summarize", "archive", "serve"):
                row.append(f"{breakdown.get(category, 0.0):.4f}")
        rows.append(row)
    headers = ["gmetad", "cpu_1level", "cpu_nlevel"]
    for design in ("1level", "nlevel"):
        headers += [
            f"{design}_{c}" for c in ("parse", "summarize", "archive", "serve")
        ]
    return _csv(headers, rows)


def figure6_csv(result: "Figure6Result") -> str:
    """One row per cluster size: both aggregate curves + root detail."""
    rows = [
        [
            size,
            f"{result.aggregate['1level'][i]:.4f}",
            f"{result.aggregate['nlevel'][i]:.4f}",
            f"{result.root_cpu['1level'][i]:.4f}",
            f"{result.root_cpu['nlevel'][i]:.4f}",
        ]
        for i, size in enumerate(result.sizes)
    ]
    return _csv(
        [
            "cluster_size",
            "aggregate_1level",
            "aggregate_nlevel",
            "root_1level",
            "root_nlevel",
        ],
        rows,
    )


def table1_csv(result: "Table1Result") -> str:
    """One row per (design, view) with the timing decomposition."""
    rows = []
    for design in ("1level", "nlevel"):
        for view in ("meta", "cluster", "host"):
            timing = result.timings[design][view]
            rows.append(
                [
                    design,
                    view,
                    f"{timing.total_seconds:.6f}",
                    f"{timing.download_seconds:.6f}",
                    f"{timing.parse_seconds:.6f}",
                    timing.bytes_received,
                    timing.sax_events,
                ]
            )
    for view in ("meta", "cluster", "host"):
        rows.append(["speedup", view, f"{result.speedup(view):.2f}", "", "", "", ""])
    return _csv(
        [
            "design", "view", "total_s", "download_s", "parse_s",
            "bytes", "sax_events",
        ],
        rows,
    )


def pubsub_csv(result: "PubSubResult") -> str:
    """One row per cluster count: bytes and root CPU for both modes."""
    rows = [
        [
            count,
            result.poll_bytes[i],
            result.push_bytes[i],
            f"{result.savings(i):.4f}",
            f"{result.poll_root_cpu[i]:.4f}",
            f"{result.push_root_cpu[i]:.4f}",
            result.push_deltas[i],
            result.push_full_syncs[i],
        ]
        for i, count in enumerate(result.cluster_counts)
    ]
    return _csv(
        [
            "clusters",
            "poll_bytes",
            "push_bytes",
            "bytes_saved_frac",
            "poll_root_cpu",
            "push_root_cpu",
            "push_deltas",
            "push_full_syncs",
        ],
        rows,
    )
