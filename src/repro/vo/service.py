"""Per-VO views and query service over a gmetad datastore.

The directory exposes a user/group-centric hierarchy beside gmetad's
host-centric one::

    /vo/atlas                 -> the VO's whole slice, summarized
    /vo/atlas/meteor          -> the VO's hosts of one cluster, full form
    /vo/atlas/meteor/h-0-3    -> one host (must be in the slice)

Enforcement is structural: filtered cluster elements are built from the
policy before serialization, so a VO query can never leak a host outside
the grant -- there is no "view filter" to bypass.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.gmetad_base import GmetadBase
from repro.core.summarize import merge_summaries, summarize_cluster
from repro.serve.views import has_live_columns
from repro.vo.policy import VoPolicy
from repro.wire.model import ClusterElement, SummaryInfo
from repro.wire.writer import XmlWriter


class VoError(KeyError):
    """Unknown VO or path outside the VO's grant."""


class VoDirectory:
    """Policy-filtered window onto one gmetad's live state."""

    def __init__(self, gmetad: GmetadBase, policy: VoPolicy) -> None:
        self.gmetad = gmetad
        self.policy = policy

    # -- filtered model --------------------------------------------------------

    def filtered_cluster(self, vo_name: str, cluster_name: str) -> ClusterElement:
        """The VO's slice of one cluster, as a full-form element."""
        vo = self.policy.vo(vo_name)
        if vo is None:
            raise VoError(f"unknown VO {vo_name!r}")
        if cluster_name not in vo.slices:
            raise VoError(f"VO {vo_name!r} has no grant on {cluster_name!r}")
        snapshot = self.gmetad.datastore.source(cluster_name)
        if snapshot is not None and has_live_columns(snapshot):
            # columnar shell: materialize only the admitted hosts by
            # row-slice instead of forcing the whole-cluster DOM
            cols = snapshot.columns
            source = snapshot.cluster
            filtered = ClusterElement(
                name=source.name,
                owner=source.owner,
                localtime=source.localtime,
                url=source.url,
            )
            for h, host_name in enumerate(cols.host_names):
                if vo.admits(cluster_name, host_name):
                    filtered.hosts[host_name] = cols.materialize_host(h)
            return filtered
        if snapshot is not None:
            snapshot.ensure_hosts()  # shell is summary-form until built
        if snapshot is None or snapshot.cluster is None or snapshot.cluster.is_summary:
            raise VoError(
                f"cluster {cluster_name!r} not available at full resolution "
                "on this gmetad (query its authority)"
            )
        source = snapshot.cluster
        filtered = ClusterElement(
            name=source.name,
            owner=source.owner,
            localtime=source.localtime,
            url=source.url,
        )
        for host_name, host in source.hosts.items():
            if vo.admits(cluster_name, host_name):
                filtered.hosts[host_name] = host
        return filtered

    def vo_summary(self, vo_name: str) -> Tuple[SummaryInfo, List[str]]:
        """(summary over the whole slice, clusters included)."""
        vo = self.policy.vo(vo_name)
        if vo is None:
            raise VoError(f"unknown VO {vo_name!r}")
        parts = []
        included = []
        for cluster_name in vo.clusters():
            try:
                filtered = self.filtered_cluster(vo_name, cluster_name)
            except VoError:
                continue  # cluster not local here; another level serves it
            summary, samples = summarize_cluster(
                filtered, self.gmetad.config.heartbeat_window
            )
            self.gmetad.charge(
                self.gmetad.costs.summarize_metric * samples, "summarize"
            )
            parts.append(summary)
            included.append(cluster_name)
        merged, operations = merge_summaries(parts)
        self.gmetad.charge(
            self.gmetad.costs.summarize_metric * operations, "summarize"
        )
        return merged, included

    # -- query service ------------------------------------------------------

    def is_vo_query(self, request: str) -> bool:
        """True if the request selects the VO hierarchy (starts with /vo/)."""
        return request.lstrip().startswith("/vo/")

    def serve(self, request: str) -> Tuple[str, float]:
        """Serve a ``/vo/...`` query; returns (xml, service_seconds)."""
        segments = [s for s in request.strip().split("?")[0].split("/") if s]
        if not segments or segments[0] != "vo" or len(segments) < 2:
            raise VoError(f"bad VO query {request!r}")
        vo_name = segments[1]
        writer = XmlWriter()
        writer.raw('<?xml version="1.0" encoding="ISO-8859-1" standalone="yes"?>\n')
        writer.open_tag(
            "GANGLIA_XML",
            [("VERSION", self.gmetad.version), ("SOURCE", "gmetad-vo")],
        )
        seconds = self.gmetad.charge(self.gmetad.costs.query_fixed, "query")
        if len(segments) == 2:
            summary, included = self.vo_summary(vo_name)
            writer.open_tag(
                "GRID",
                [
                    ("NAME", f"vo:{vo_name}"),
                    ("AUTHORITY", self.gmetad.config.authority_url),
                ],
            )
            writer.summary_info(summary)
            writer.close_tag("GRID")
        elif len(segments) == 3:
            filtered = self.filtered_cluster(vo_name, segments[2])
            writer.cluster(filtered)
        elif len(segments) == 4:
            filtered = self.filtered_cluster(vo_name, segments[2])
            host = filtered.hosts.get(segments[3])
            if host is None:
                raise VoError(
                    f"host {segments[3]!r} is not in VO {vo_name!r}'s slice"
                )
            shell = ClusterElement(
                name=filtered.name,
                localtime=filtered.localtime,
                hosts={host.name: host},
            )
            writer.cluster(shell)
        else:
            raise VoError(f"VO query too deep: {request!r}")
        writer.close_tag("GANGLIA_XML")
        xml = writer.result()
        seconds += self.gmetad.charge(
            self.gmetad.costs.serve_byte * len(xml), "serve"
        )
        return xml, seconds
