"""Access policies: which hosts of which clusters belong to which VO.

Three grant kinds per (VO, cluster):

- ``hosts``: an explicit host list;
- ``prefix``: every host whose name starts with the prefix;
- ``fraction``: a stable pseudo-random sample of the cluster.  The
  sample is chosen by hashing ``(vo, cluster, host)`` to [0, 1) and
  admitting hosts below the fraction -- deterministic across polls and
  restarts, and different VOs get (statistically) independent samples
  so two VOs can each hold "half" of a cluster with overlap ~f1*f2.
  For *partitioning* semantics (disjoint slices that exactly cover the
  cluster) use :meth:`VoPolicy.partition_cluster`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional


def _stable_unit(vo: str, cluster: str, host: str, salt: str = "") -> float:
    """Hash (vo, cluster, host) to a stable number in [0, 1)."""
    digest = hashlib.sha256(
        f"{vo}\x00{cluster}\x00{host}\x00{salt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class ClusterSlice:
    """One VO's grant over one cluster."""

    cluster: str
    hosts: FrozenSet[str] = frozenset()
    prefix: Optional[str] = None
    fraction: Optional[float] = None
    #: salt for fraction sampling; partition_cluster sets a shared salt so
    #: sibling slices are complementary
    salt: str = ""
    #: with a shared salt, admit hosts whose unit value lies in
    #: [band_low, band_high) -- used to make fractions disjoint
    band_low: float = 0.0

    def __post_init__(self) -> None:
        grants = sum(
            1
            for g in (self.hosts, self.prefix, self.fraction)
            if g not in (frozenset(), None)
        )
        if grants != 1:
            raise ValueError(
                "exactly one of hosts/prefix/fraction must be given"
            )
        if self.fraction is not None and not (0.0 < self.fraction <= 1.0):
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")

    def admits(self, vo: str, host: str) -> bool:
        if self.hosts:
            return host in self.hosts
        if self.prefix is not None:
            return host.startswith(self.prefix)
        key_vo = vo if not self.salt else ""  # shared-salt bands ignore the VO
        unit = _stable_unit(key_vo, self.cluster, host, self.salt)
        return self.band_low <= unit < self.band_low + self.fraction


@dataclass
class VirtualOrganization:
    """A named VO and its grants."""

    name: str
    slices: Dict[str, ClusterSlice] = field(default_factory=dict)

    def grant(self, cluster_slice: ClusterSlice) -> "VirtualOrganization":
        """Attach a cluster slice to this VO (one grant per cluster)."""
        if cluster_slice.cluster in self.slices:
            raise ValueError(
                f"VO {self.name!r} already has a grant on "
                f"{cluster_slice.cluster!r}"
            )
        self.slices[cluster_slice.cluster] = cluster_slice
        return self

    def admits(self, cluster: str, host: str) -> bool:
        cluster_slice = self.slices.get(cluster)
        return cluster_slice is not None and cluster_slice.admits(
            self.name, host
        )

    def clusters(self) -> List[str]:
        """Names of the clusters this VO holds grants on."""
        return sorted(self.slices)


class VoPolicy:
    """The full policy table: every VO in the federation."""

    def __init__(self) -> None:
        self._vos: Dict[str, VirtualOrganization] = {}

    def add(self, vo: VirtualOrganization) -> VirtualOrganization:
        """Register a VO; names must be unique."""
        if vo.name in self._vos:
            raise ValueError(f"duplicate VO {vo.name!r}")
        self._vos[vo.name] = vo
        return vo

    def vo(self, name: str) -> Optional[VirtualOrganization]:
        """Look up a VO by name (None if unknown)."""
        return self._vos.get(name)

    def names(self) -> List[str]:
        """All registered VO names, sorted."""
        return sorted(self._vos)

    def partition_cluster(
        self, cluster: str, shares: Dict[str, float], salt: str = "partition"
    ) -> None:
        """Split one cluster among VOs in exact, disjoint bands.

        ``shares`` maps VO name -> fraction; fractions must sum to at
        most 1.0.  Every host lands in at most one VO, and with sum 1.0
        in exactly one -- the property the slice-additivity tests rely
        on.
        """
        total = sum(shares.values())
        if total > 1.0 + 1e-9:
            raise ValueError(f"shares sum to {total} > 1")
        low = 0.0
        for vo_name in sorted(shares):
            fraction = shares[vo_name]
            if fraction <= 0:
                raise ValueError(f"share for {vo_name!r} must be positive")
            vo = self._vos.get(vo_name)
            if vo is None:
                vo = self.add(VirtualOrganization(vo_name))
            vo.grant(
                ClusterSlice(
                    cluster=cluster,
                    fraction=fraction,
                    salt=salt,
                    band_low=low,
                )
            )
            low += fraction
