"""Virtual-organization views: the Ganglia VO system from related work.

"Ganglia VO ... extends Ganglia to allow a 2-level monitoring tree, and
can report summary data at each level.  Ganglia VO explores fractional
access policies on a grid of clusters, and has a user/group-centric
information hierarchy based on virtual organizations."  (§2 Related
Work; the paper contrasts its own host-centric hierarchy with this
user/group-centric one.)

This package adds that information hierarchy on top of any gmetad:

- :class:`~repro.vo.policy.VoPolicy` -- which slice of which clusters
  each VO owns (explicit host lists, name prefixes, or *fractions*,
  implemented as deterministic hash sampling so a "0.25 of meteor"
  grant is stable across polls);
- :class:`~repro.vo.service.VoDirectory` -- per-VO filtered views and
  summaries over a live gmetad datastore, plus query service
  (``/vo/<name>/...``) with enforcement: a VO's queries can never see
  hosts outside its slice.
"""

from repro.vo.policy import ClusterSlice, VoPolicy, VirtualOrganization
from repro.vo.service import VoDirectory, VoError

__all__ = [
    "ClusterSlice",
    "VirtualOrganization",
    "VoPolicy",
    "VoDirectory",
    "VoError",
]
