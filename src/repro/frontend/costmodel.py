"""Cost model for the viewer's XML parsing (Mod_PHP 4.1.2 SAX parser).

The paper's Table 1 timings are dominated by parse time, which is linear
in document size for a SAX parser.  The coefficients below model the
paper's setup -- PHP 4's expat-based parser on a 2.2 GHz P4 chews
through roughly a megabyte per second of attribute-heavy XML -- and were
calibrated so the 1-level full dump of the sdsc subtree (six 100-host
clusters) lands near the paper's 2.09 s.  Everything else Table 1
reports follows from document sizes, not further fitting.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PhpSaxCostModel:
    """Seconds of viewer CPU per unit of parse work."""

    #: seconds per byte scanned by the SAX tokenizer
    seconds_per_byte: float = 0.75e-6
    #: seconds per start/end element callback into PHP userland
    seconds_per_event: float = 2.0e-6
    #: seconds to fold one metric sample into a frontend-computed summary
    #: (only the 1-level meta view pays this; the N-level viewer gets
    #: summaries from gmetad directly)
    seconds_per_summarized_sample: float = 0.5e-6
    #: fixed page scaffolding cost (template setup, socket bookkeeping)
    fixed_seconds: float = 0.5e-3

    def parse_seconds(self, num_bytes: int, num_events: int) -> float:
        """Time for the SAX pass over a document."""
        return (
            self.fixed_seconds
            + self.seconds_per_byte * num_bytes
            + self.seconds_per_event * num_events
        )

    def summarize_seconds(self, num_samples: int) -> float:
        """Time for the frontend's own additive reduction (1-level meta)."""
        return self.seconds_per_summarized_sample * num_samples
