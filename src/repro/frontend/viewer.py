"""The viewer client: issue a query, download, parse, build the page.

Timing protocol per §3.1: the clock starts "just before the socket
connection to the gmeta agent" and stops "after the completion of the
XML parsing".  Download time is simulated (connection RTT + transfer +
server service time); parse time comes from the
:class:`~repro.frontend.costmodel.PhpSaxCostModel` applied to the actual
bytes and SAX events of the response -- our parser really runs, the
model only converts its work into the paper's PHP-speed seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.frontend.costmodel import PhpSaxCostModel
from repro.frontend.views import build_view
from repro.net.address import Address
from repro.net.fabric import Fabric
from repro.net.tcp import TcpNetwork
from repro.sim.engine import Engine
from repro.wire.parser import GangliaParser, TreeBuilder


@dataclass
class ViewTiming:
    """One Table-1 style measurement."""

    view: str
    query: str
    download_seconds: float
    parse_seconds: float
    bytes_received: int
    sax_events: int

    @property
    def total_seconds(self) -> float:
        """Download plus parse time: the Table 1 quantity."""
        return self.download_seconds + self.parse_seconds


class ViewError(RuntimeError):
    """The viewer could not complete a page (timeout or bad data)."""


class WebFrontend:
    """Emulates the PHP web frontend against one gmetad.

    ``design`` selects the query strategy: the N-level viewer "can
    request a particular XML sub-tree" while the 1-level viewer "must
    receive a full tree from its gmeta agent" and filter client-side.
    """

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        tcp: TcpNetwork,
        target: Address,
        design: str = "nlevel",
        host: str = "webfrontend",
        costs: Optional[PhpSaxCostModel] = None,
        heartbeat_window: float = 80.0,
        request_timeout: float = 30.0,
    ) -> None:
        if design not in ("nlevel", "1level"):
            raise ValueError(f"design must be 'nlevel' or '1level', got {design!r}")
        self.engine = engine
        self.tcp = tcp
        self.target = target
        self.design = design
        self.host = host
        self.costs = costs or PhpSaxCostModel()
        self.heartbeat_window = heartbeat_window
        self.request_timeout = request_timeout
        if not fabric.has_host(host):
            fabric.add_host(host)

    # -- query selection ----------------------------------------------------

    def query_for(
        self, view: str, cluster: Optional[str] = None, host: Optional[str] = None
    ) -> str:
        if view not in ("meta", "cluster", "host"):
            raise ValueError(f"unknown view {view!r}")
        if self.design == "1level":
            return "/"  # the whole tree or nothing (§2.3)
        if view == "meta":
            return "/?filter=summary"
        if view == "cluster":
            if cluster is None:
                raise ValueError("cluster view needs a cluster name")
            return f"/{cluster}"
        if cluster is None or host is None:
            raise ValueError("host view needs cluster and host names")
        return f"/{cluster}/{host}"

    # -- page generation ----------------------------------------------------

    def render_view(
        self,
        view: str,
        cluster: Optional[str] = None,
        host: Optional[str] = None,
    ) -> Tuple[object, ViewTiming]:
        """Generate one page; returns ``(page_model, timing)``.

        Drives the simulation forward until the response arrives (the
        request is in the critical path of the page, §2.3).
        """
        query = self.query_for(view, cluster, host)
        result: dict = {}

        def on_response(payload: object, rtt: float) -> None:
            result["xml"] = str(payload)
            result["rtt"] = rtt

        def on_timeout(error) -> None:
            result["error"] = error

        self.tcp.request(
            self.host,
            self.target,
            query,
            on_response=on_response,
            timeout=self.request_timeout,
            on_timeout=on_timeout,
        )
        deadline = self.engine.now + self.request_timeout + 1.0
        while not result and self.engine.now < deadline:
            self.engine.run_for(0.05)
        if "error" in result or "xml" not in result:
            raise ViewError(f"no response from {self.target} for {query!r}")

        xml: str = result["xml"]
        builder = TreeBuilder()
        events = GangliaParser(validate=False).parse(xml, builder)
        parse_seconds = self.costs.parse_seconds(len(xml), events)
        page = build_view(
            builder.document,
            view,
            cluster=cluster,
            host=host,
            heartbeat_window=self.heartbeat_window,
        )
        # 1-level meta view: the frontend does its own reductions
        if view == "meta" and getattr(page, "samples_summarized", 0):
            parse_seconds += self.costs.summarize_seconds(page.samples_summarized)
        timing = ViewTiming(
            view=view,
            query=query,
            download_seconds=result["rtt"],
            parse_seconds=parse_seconds,
            bytes_received=len(xml),
            sax_events=events,
        )
        return page, timing
