"""The viewer client: issue a query, download, parse, build the page.

Timing protocol per §3.1: the clock starts "just before the socket
connection to the gmeta agent" and stops "after the completion of the
XML parsing".  Download time is simulated (connection RTT + transfer +
server service time); parse time comes from the
:class:`~repro.frontend.costmodel.PhpSaxCostModel` applied to the actual
bytes and SAX events of the response -- our parser really runs, the
model only converts its work into the paper's PHP-speed seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.resilience import Overloaded
from repro.frontend.costmodel import PhpSaxCostModel
from repro.frontend.views import build_view
from repro.net.address import Address
from repro.net.fabric import Fabric
from repro.net.tcp import TcpNetwork
from repro.sim.engine import Engine
from repro.wire.parser import GangliaParser, TreeBuilder


@dataclass
class ViewTiming:
    """One Table-1 style measurement."""

    view: str
    query: str
    download_seconds: float
    parse_seconds: float
    bytes_received: int
    sax_events: int

    @property
    def total_seconds(self) -> float:
        """Download plus parse time: the Table 1 quantity."""
        return self.download_seconds + self.parse_seconds


class ViewError(RuntimeError):
    """The viewer could not complete a page (timeout or bad data)."""


class WebFrontend:
    """Emulates the PHP web frontend against one gmetad.

    ``design`` selects the query strategy: the N-level viewer "can
    request a particular XML sub-tree" while the 1-level viewer "must
    receive a full tree from its gmeta agent" and filter client-side.
    """

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        tcp: TcpNetwork,
        target: Address,
        design: str = "nlevel",
        host: str = "webfrontend",
        costs: Optional[PhpSaxCostModel] = None,
        heartbeat_window: float = 80.0,
        request_timeout: float = 30.0,
    ) -> None:
        if design not in ("nlevel", "1level"):
            raise ValueError(f"design must be 'nlevel' or '1level', got {design!r}")
        self.engine = engine
        self.tcp = tcp
        self.target = target
        self.design = design
        self.host = host
        self.costs = costs or PhpSaxCostModel()
        self.heartbeat_window = heartbeat_window
        self.request_timeout = request_timeout
        if not fabric.has_host(host):
            fabric.add_host(host)

    # -- query selection ----------------------------------------------------

    def query_for(
        self, view: str, cluster: Optional[str] = None, host: Optional[str] = None
    ) -> str:
        if view not in ("meta", "cluster", "host"):
            raise ValueError(f"unknown view {view!r}")
        if self.design == "1level":
            return "/"  # the whole tree or nothing (§2.3)
        if view == "meta":
            return "/?filter=summary"
        if view == "cluster":
            if cluster is None:
                raise ValueError("cluster view needs a cluster name")
            return f"/{cluster}"
        if cluster is None or host is None:
            raise ValueError("host view needs cluster and host names")
        return f"/{cluster}/{host}"

    # -- page generation ----------------------------------------------------

    def render_view(
        self,
        view: str,
        cluster: Optional[str] = None,
        host: Optional[str] = None,
    ) -> Tuple[object, ViewTiming]:
        """Generate one page; returns ``(page_model, timing)``.

        Drives the simulation forward until the response arrives (the
        request is in the critical path of the page, §2.3).
        """
        query = self.query_for(view, cluster, host)
        result: dict = {}

        def on_response(payload: object, rtt: float) -> None:
            if isinstance(payload, Overloaded):
                # a shedding daemon (or an exhausted read-tier front
                # door) said "busy, retry later" -- surface it as a
                # distinct page failure instead of parsing the sentinel
                result["overloaded"] = payload
                return
            result["xml"] = str(payload)
            result["rtt"] = rtt

        def on_timeout(error) -> None:
            result["error"] = error

        self.tcp.request(
            self.host,
            self.target,
            query,
            on_response=on_response,
            timeout=self.request_timeout,
            on_timeout=on_timeout,
        )
        deadline = self.engine.now + self.request_timeout + 1.0
        while not result and self.engine.now < deadline:
            self.engine.run_for(0.05)
        if "overloaded" in result:
            raise ViewError(
                f"{self.target} overloaded for {query!r} "
                f"(retry after {result['overloaded'].retry_after:g}s)"
            )
        if "error" in result or "xml" not in result:
            raise ViewError(f"no response from {self.target} for {query!r}")

        xml: str = result["xml"]
        builder = TreeBuilder()
        events = GangliaParser(validate=False).parse(xml, builder)
        parse_seconds = self.costs.parse_seconds(len(xml), events)
        page = build_view(
            builder.document,
            view,
            cluster=cluster,
            host=host,
            heartbeat_window=self.heartbeat_window,
        )
        # 1-level meta view: the frontend does its own reductions
        if view == "meta" and getattr(page, "samples_summarized", 0):
            parse_seconds += self.costs.summarize_seconds(page.samples_summarized)
        timing = ViewTiming(
            view=view,
            query=query,
            download_seconds=result["rtt"],
            parse_seconds=parse_seconds,
            bytes_received=len(xml),
            sax_events=events,
        )
        return page, timing

    def render_self_view(
        self, host: Optional[str] = None
    ) -> Tuple[object, ViewTiming]:
        """The daemon's own dashboard: the ``__gmetad__`` cluster page.

        A plain cluster (or host) view over the synthetic self-cluster
        the observability layer mounts in band -- same query engine,
        same download/parse timing protocol, no special machinery.  The
        target gmetad must have ``observability`` enabled, otherwise
        the page comes back empty like any unknown cluster.
        """
        from repro.obs.config import SELF_SOURCE

        if host is None:
            return self.render_view("cluster", cluster=SELF_SOURCE)
        return self.render_view("host", cluster=SELF_SOURCE, host=host)


class PushFrontend:
    """Push-mode twin of :class:`WebFrontend` (repro.pubsub delivery).

    Instead of downloading and parsing XML per page view, a push
    frontend subscribes once to a gmetad's pub-sub broker; delta
    notifications keep a local mirror current.  ``render_view`` then
    reads the mirror with **zero download time** -- the transfer and
    parse work already happened incrementally as deltas arrived.  To
    keep :class:`ViewTiming` comparable with the polling frontend, each
    render reports the apply cost and bytes received *since the
    previous render* (the work push delivery spent keeping this page
    fresh), priced by the same :class:`PhpSaxCostModel`.
    """

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        tcp: TcpNetwork,
        broker: Address,
        path: str = "/",
        host: str = "push-frontend",
        port: Optional[int] = None,
        **client_kwargs,
    ) -> None:
        from repro.pubsub.client import PUSH_NOTIFY_PORT, PushClient

        self.client = PushClient(
            engine,
            fabric,
            tcp,
            broker,
            path=path,
            host=host,
            port=port if port is not None else PUSH_NOTIFY_PORT,
            **client_kwargs,
        )
        self._accounted_seconds = 0.0
        self._accounted_bytes = 0
        self.pages_rendered = 0

    def start(self) -> "PushFrontend":
        """Subscribe and begin mirroring."""
        self.client.start()
        return self

    def stop(self) -> None:
        self.client.stop()

    @property
    def connected(self) -> bool:
        return self.client.connected

    def render_view(
        self,
        view: str,
        cluster: Optional[str] = None,
        host: Optional[str] = None,
    ) -> Tuple[Dict[str, str], ViewTiming]:
        """Read one page out of the mirror; returns ``(rows, timing)``.

        ``rows`` maps flat state paths (see :mod:`repro.pubsub.delta`)
        to values, scoped exactly like the polling frontend's views:
        ``meta`` -> source liveness and summaries, ``cluster`` -> one
        source subtree, ``host`` -> one host subtree.
        """
        if view not in ("meta", "cluster", "host"):
            raise ValueError(f"unknown view {view!r}")
        if not self.client.stream.synced:
            raise ViewError(f"push mirror for {self.client.sub_id} not synced")
        state = self.client.state
        if view == "meta":
            # source-level rows only: liveness bits and summaries
            rows = {
                k: v
                for k, v in state.items()
                if "/" not in k.split("?")[0]
            }
        else:
            if cluster is None:
                raise ValueError(f"{view} view needs a cluster name")
            prefix = cluster if host is None else f"{cluster}/{host}"
            if view == "host" and host is None:
                raise ValueError("host view needs cluster and host names")
            rows = {
                k: v
                for k, v in state.items()
                if k == prefix or k.startswith(prefix + "/")
                or k.startswith(prefix + "?")
            }
        self.pages_rendered += 1
        seconds = self.client.apply_seconds_total - self._accounted_seconds
        received = self.client.bytes_received - self._accounted_bytes
        self._accounted_seconds = self.client.apply_seconds_total
        self._accounted_bytes = self.client.bytes_received
        timing = ViewTiming(
            view=view,
            query=self.client.path,
            download_seconds=0.0,
            parse_seconds=seconds,
            bytes_received=received,
            sax_events=len(rows),
        )
        return rows, timing
