"""Web-frontend emulation: Ganglia's PHP viewer, as a cost model + client.

"This and other viewers request raw XML from a gmeta agent and parse it
for display.  The processing required to view the tree is therefore
proportional to the size of the XML returned by the monitor." (§2.3)

The viewer here issues the same query per view that the PHP frontend
does, measures download + parse exactly as the paper instruments it
("gettimeofday() calls inserted just before the socket connection to the
gmeta agent and after the completion of the XML parsing"), and builds
the same three page models: **meta** (all clusters summarized),
**cluster** (one cluster, full resolution) and **host** (everything
about one host).
"""

from repro.frontend.costmodel import PhpSaxCostModel
from repro.frontend.viewer import ViewTiming, WebFrontend
from repro.frontend.views import ClusterView, HostView, MetaView, build_view

__all__ = [
    "PhpSaxCostModel",
    "WebFrontend",
    "ViewTiming",
    "MetaView",
    "ClusterView",
    "HostView",
    "build_view",
]
