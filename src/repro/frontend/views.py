"""The three page models the Ganglia web frontend renders (§3.2).

"The viewer presents the tree in three central ways.  The meta view
summarizes all monitored clusters.  The cluster view describes one
cluster at full-resolution, and the host view shows all information
known about a single host."

:func:`build_view` turns a parsed Ganglia document into the page model,
including the 1-level path where the frontend must compute summaries and
discard unrelated clusters itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.summarize import summarize_cluster
from repro.wire.model import (
    ClusterElement,
    GangliaDocument,
    HostElement,
    SummaryInfo,
)


@dataclass
class SummaryRow:
    """One line of the meta view: a cluster or grid rollup."""

    name: str
    kind: str  # "cluster" | "grid"
    hosts_up: int
    hosts_down: int
    load_one_mean: float
    cpu_total: int
    authority: str = ""


@dataclass
class MetaView:
    """All monitored sources, summarized."""

    rows: List[SummaryRow] = field(default_factory=list)
    samples_summarized: int = 0  # frontend-side reduction work (1-level)

    @property
    def total_hosts(self) -> Tuple[int, int]:
        return (
            sum(r.hosts_up for r in self.rows),
            sum(r.hosts_down for r in self.rows),
        )


@dataclass
class HostRow:
    name: str
    up: bool
    load_one: Optional[float]
    cpu_num: Optional[int]


@dataclass
class ClusterView:
    """One cluster at full resolution."""

    name: str
    hosts: List[HostRow] = field(default_factory=list)

    @property
    def up_count(self) -> int:
        return sum(1 for h in self.hosts if h.up)


@dataclass
class HostView:
    """Everything known about a single host."""

    cluster: str
    name: str
    up: bool = True
    metrics: Dict[str, str] = field(default_factory=dict)


class ViewBuildError(ValueError):
    """The document did not contain what the view needs."""


def _summary_row(name: str, kind: str, info: SummaryInfo, authority: str = "") -> SummaryRow:
    load = info.metrics.get("load_one")
    cpus = info.metrics.get("cpu_num")
    return SummaryRow(
        name=name,
        kind=kind,
        hosts_up=info.hosts_up,
        hosts_down=info.hosts_down,
        load_one_mean=load.mean() if load else 0.0,
        cpu_total=int(cpus.total) if cpus else 0,
        authority=authority,
    )


def _cluster_rows(cluster: ClusterElement, heartbeat_window: float) -> List[HostRow]:
    rows = []
    for host in cluster.hosts.values():
        load = host.metrics.get("load_one")
        cpus = host.metrics.get("cpu_num")
        rows.append(
            HostRow(
                name=host.name,
                up=host.is_up(heartbeat_window),
                load_one=float(load.val) if load else None,
                cpu_num=int(float(cpus.val)) if cpus else None,
            )
        )
    rows.sort(key=lambda r: r.name)
    return rows


def build_meta_view(doc: GangliaDocument, heartbeat_window: float = 80.0) -> MetaView:
    """Meta view; computes reductions for any full-form clusters present.

    With an N-level gmetad the document is already all-summary and
    ``samples_summarized`` stays 0; against a 1-level daemon the
    frontend "generates its own summaries", which is the work this
    counts.
    """
    view = MetaView()

    def add_cluster(cluster: ClusterElement) -> None:
        if cluster.is_summary:
            view.rows.append(_summary_row(cluster.name, "cluster", cluster.summary))
        else:
            info, samples = summarize_cluster(cluster, heartbeat_window)
            view.samples_summarized += samples
            view.rows.append(_summary_row(cluster.name, "cluster", info))

    for cluster in doc.clusters.values():
        add_cluster(cluster)
    for grid in doc.grids.values():
        for cluster in grid.clusters.values():
            add_cluster(cluster)
        for sub in grid.grids.values():
            if sub.summary is not None:
                view.rows.append(
                    _summary_row(sub.name, "grid", sub.summary, sub.authority)
                )
    view.rows.sort(key=lambda r: r.name)
    return view


def _find_cluster(doc: GangliaDocument, name: str) -> Optional[ClusterElement]:
    for cluster in doc.walk_clusters():
        if cluster.name == name:
            return cluster
    return None


def build_cluster_view(
    doc: GangliaDocument, cluster_name: str, heartbeat_window: float = 80.0
) -> ClusterView:
    """Cluster view.  Against a 1-level daemon the document contains the
    whole tree; everything but the requested cluster is parsed and
    discarded -- the inefficiency Table 1's middle column quantifies."""
    cluster = _find_cluster(doc, cluster_name)
    if cluster is None or cluster.is_summary:
        raise ViewBuildError(f"no full-resolution cluster {cluster_name!r} in report")
    return ClusterView(
        name=cluster.name, hosts=_cluster_rows(cluster, heartbeat_window)
    )


def build_host_view(
    doc: GangliaDocument,
    cluster_name: str,
    host_name: str,
    heartbeat_window: float = 80.0,
) -> HostView:
    """Host view: one host's metric table."""
    host: Optional[HostElement] = None
    cluster = _find_cluster(doc, cluster_name)
    if cluster is not None and not cluster.is_summary:
        host = cluster.hosts.get(host_name)
    if host is None:
        raise ViewBuildError(
            f"host {host_name!r} (cluster {cluster_name!r}) not in report"
        )
    return HostView(
        cluster=cluster_name,
        name=host.name,
        up=host.is_up(heartbeat_window),
        metrics={m.name: m.val for m in host.metrics.values()},
    )


def build_view(
    doc: GangliaDocument,
    kind: str,
    cluster: Optional[str] = None,
    host: Optional[str] = None,
    heartbeat_window: float = 80.0,
):
    """Dispatch on view kind; the viewer's page-build step."""
    if kind == "meta":
        return build_meta_view(doc, heartbeat_window)
    if kind == "cluster":
        if cluster is None:
            raise ValueError("cluster view needs a cluster name")
        return build_cluster_view(doc, cluster, heartbeat_window)
    if kind == "host":
        if cluster is None or host is None:
            raise ValueError("host view needs cluster and host names")
        return build_host_view(doc, cluster, host, heartbeat_window)
    raise ValueError(f"unknown view kind {kind!r}")
