"""Static web-site generation for a whole federation.

The Ganglia frontend renders pages on demand; for dashboards, archives
and offline inspection a static snapshot is often more practical.  This
module walks a federation's gmetads and writes a browsable site:

- one directory per gmetad with its meta view as ``index.html``;
- one page per local full-resolution cluster and one per host;
- grid rows link across directories by following AUTHORITY URLs, so
  the multiple-resolution structure of the monitoring tree *is* the
  site's link structure.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional, Union

from repro.core.gmetad_base import GmetadBase
from repro.frontend.html import (
    render_cluster_view,
    render_host_view,
    render_meta_view,
)
from repro.frontend.views import (
    ClusterView,
    HostRow,
    HostView,
    MetaView,
    _cluster_rows,
    _summary_row,
)
from repro.serve.views import (
    has_live_columns,
    host_metric_items,
    host_statuses,
)


def _safe(name: str) -> str:
    """File-system-safe page name."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)


def _meta_view_from_datastore(gmetad: GmetadBase) -> MetaView:
    view = MetaView()
    for source_name in gmetad.datastore.source_names():
        snapshot = gmetad.datastore.sources[source_name]
        kind = "cluster" if snapshot.kind == "cluster" else "grid"
        view.rows.append(
            _summary_row(source_name, kind, snapshot.summary, snapshot.authority)
        )
    return view


def generate_gmetad_pages(
    gmetad: GmetadBase,
    directory: Union[str, pathlib.Path],
    authority_links: Optional[Dict[str, str]] = None,
) -> int:
    """Write one gmetad's pages into ``directory``; returns page count.

    ``authority_links`` maps authority URLs to relative hrefs (used by
    :func:`generate_federation_site` to keep links inside the site).
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    authority_links = authority_links or {}
    heartbeat_window = gmetad.config.heartbeat_window
    pages = 0

    view = _meta_view_from_datastore(gmetad)
    for row in view.rows:
        if row.kind == "cluster":
            row.authority = f"cluster-{_safe(row.name)}.html"
        elif row.authority in authority_links:
            row.authority = authority_links[row.authority]
    (directory / "index.html").write_text(
        render_meta_view(view, grid_name=gmetad.config.gridname)
    )
    pages += 1

    for source_name in gmetad.datastore.source_names():
        snapshot = gmetad.datastore.sources[source_name]
        if snapshot.kind != "cluster" or snapshot.cluster is None:
            continue
        if has_live_columns(snapshot):
            pages += _columnar_cluster_pages(
                snapshot.columns, directory, heartbeat_window
            )
            continue
        snapshot.ensure_hosts()  # tree-built snapshots keep the DOM path
        cluster = snapshot.cluster
        if cluster.is_summary:
            continue
        cluster_view = ClusterView(
            name=cluster.name,
            hosts=_cluster_rows(cluster, heartbeat_window),
        )
        (directory / f"cluster-{_safe(cluster.name)}.html").write_text(
            render_cluster_view(cluster_view)
        )
        pages += 1
        for host in cluster.hosts.values():
            host_view = HostView(
                cluster=cluster.name,
                name=host.name,
                up=host.is_up(heartbeat_window),
                metrics={m.name: m.val for m in host.metrics.values()},
            )
            page_name = f"host-{_safe(cluster.name)}-{_safe(host.name)}.html"
            (directory / page_name).write_text(render_host_view(host_view))
            pages += 1
    return pages


def _columnar_cluster_pages(
    cols, directory: pathlib.Path, heartbeat_window: float
) -> int:
    """Cluster + host pages by row-slice -- no DOM materialization.

    Emits the same pages the DOM branch writes for the same state: the
    cluster view's rows sort by host name (as ``_cluster_rows`` does)
    and each host page's metric dict keeps row (= parse) order, which
    is what the DOM's insertion-ordered metric dict iterates.
    """
    statuses = host_statuses(cols, heartbeat_window)
    rows = [
        HostRow(name=s.name, up=s.up, load_one=s.load_one, cpu_num=s.cpu_num)
        for s in statuses
    ]
    rows.sort(key=lambda r: r.name)
    cluster_view = ClusterView(name=cols.name, hosts=rows)
    (directory / f"cluster-{_safe(cols.name)}.html").write_text(
        render_cluster_view(cluster_view)
    )
    pages = 1
    for h, status in enumerate(statuses):
        host_view = HostView(
            cluster=cols.name,
            name=status.name,
            up=status.up,
            metrics=dict(host_metric_items(cols, h)),
        )
        page_name = f"host-{_safe(cols.name)}-{_safe(status.name)}.html"
        (directory / page_name).write_text(render_host_view(host_view))
        pages += 1
    return pages


def generate_federation_site(
    gmetads: Dict[str, GmetadBase],
    root_directory: Union[str, pathlib.Path],
) -> int:
    """Write the whole federation; returns total page count.

    Grid rows in each gmetad's meta view link to the sibling directory
    of the gmetad whose AUTHORITY URL they carry, turning the
    pointer-based distributed tree into plain hyperlinks.
    """
    root_directory = pathlib.Path(root_directory)
    root_directory.mkdir(parents=True, exist_ok=True)
    # authority URL -> relative link to that gmetad's index page
    by_authority = {
        daemon.config.authority_url: f"../{_safe(name)}/index.html"
        for name, daemon in gmetads.items()
    }
    total = 0
    for name, daemon in gmetads.items():
        total += generate_gmetad_pages(
            daemon, root_directory / _safe(name), authority_links=by_authority
        )
    # a tiny federation index pointing at every gmetad
    links = "\n".join(
        f'<li><a href="{_safe(name)}/index.html">{name}</a></li>'
        for name in sorted(gmetads)
    )
    (root_directory / "index.html").write_text(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        "<title>Federation</title></head><body>"
        f"<h1>Monitoring federation</h1>\n<ul>\n{links}\n</ul>"
        "</body></html>\n"
    )
    return total + 1
