"""Named deterministic random streams.

Every randomized component (each gmond agent, the network loss model, the
fault injector, ...) draws from its own stream derived from a root seed
and a stable name.  Adding a new component therefore never perturbs the
random sequence observed by existing ones -- a property the experiment
harness relies on when comparing the 1-level and N-level designs on
*identical* workloads.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Map ``(root_seed, name)`` to a stable 64-bit child seed."""
    digest = hashlib.sha256(f"{root_seed}\x00{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (stateful), so a component should fetch its stream once
        and keep drawing from it.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self._root_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(derive_seed(self._root_seed, f"fork:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)
