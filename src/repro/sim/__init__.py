"""Deterministic discrete-event simulation substrate.

This package replaces the paper's physical testbed (a 10-node Linux
cluster) with a simulated one.  It provides:

- :class:`~repro.sim.engine.Engine` -- the event loop and simulated clock.
- :class:`~repro.sim.rng.RngRegistry` -- named deterministic random streams.
- :class:`~repro.sim.resources.CpuAccount` / :class:`~repro.sim.resources.CostModel`
  -- per-node CPU accounting used to reproduce the paper's ``%CPU``
  measurements (Figures 5 and 6).

All protocol code in :mod:`repro.gmond` and :mod:`repro.core` runs on top
of this engine, so every experiment is reproducible bit-for-bit from a
seed.
"""

from repro.sim.engine import Engine, Event, PeriodicTask
from repro.sim.rng import RngRegistry
from repro.sim.resources import CostModel, CpuAccount, UtilizationWindow

__all__ = [
    "Engine",
    "Event",
    "PeriodicTask",
    "RngRegistry",
    "CostModel",
    "CpuAccount",
    "UtilizationWindow",
]
