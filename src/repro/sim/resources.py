"""Per-node CPU accounting: the simulator's stand-in for ``ps`` timings.

The paper measures the percentage of wall-clock CPU time each gmetad
daemon uses over a 60-minute window (Figures 5 and 6).  We cannot run the
C daemons, so every operation our Python implementations perform charges
*work units* to the :class:`CpuAccount` of the simulated node it runs on.
The unit costs live in :class:`CostModel`; a node's ``capacity`` converts
units into simulated CPU-seconds.

Saturation.  The paper attributes the 1-level design's superlinear curve
(Fig. 6) to the root node saturating: "Threads must wait in run queues as
spare cycles become scarce, and the percent CPU utilization becomes
non-linear with respect to smaller runs."  We reproduce that with a
contention term: reported utilization is ``u * (1 + c * u**2)`` for raw
utilization ``u``, i.e. a busy node burns extra cycles on scheduling and
lock contention.  The term is negligible below ~30% utilization and grows
quickly past ~60%, which matches the qualitative description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


#: Work categories tracked per account.  Used by tests and the experiment
#: reports to show *where* each design spends its cycles.
CATEGORIES = (
    "parse",       # XML parsing (bytes in)
    "serve",       # XML generation / writing (bytes out)
    "summarize",   # additive metric reductions
    "archive",     # RRD database updates
    "query",       # query engine dispatch
    "network",     # TCP connection setup / teardown
    "analytics",   # vectorized trend/anomaly kernels over the archives
    "other",
)


@dataclass(frozen=True)
class CostModel:
    """Work-unit costs for the operations a monitor performs.

    The defaults were calibrated (see ``repro/bench/calibration.py``) so
    that the 1-level root gmetad in the paper's six-monitor tree with
    twelve 100-host clusters lands near the paper's ~14% CPU; all other
    results are then *predictions* of the model, not fits.
    """

    #: cost to parse one byte of Ganglia XML (SAX-style streaming parse)
    parse_byte: float = 1.0
    #: cost to generate/serve one byte of Ganglia XML
    serve_byte: float = 0.1
    #: cost to serve one byte spliced from a memoized fragment (a memcpy
    #: instead of a DOM walk; only charged by the incremental pipeline)
    serve_byte_cached: float = 0.01
    #: cost of the additive reduction for one metric sample
    summarize_metric: float = 40.0
    #: cost of one RRD time-series update (the paper calls archiving
    #: "a processor-intensive task")
    rrd_update: float = 180.0
    #: fixed cost of accepting or initiating one TCP connection
    tcp_connect: float = 400.0
    #: fixed dispatch cost of one query (three hash lookups, O(1))
    query_fixed: float = 60.0
    #: cost of one hash-table insert while building the parsed snapshot
    hash_insert: float = 4.0
    #: cost to decode one byte of a binary wire frame (column installs
    #: are bulk ``frombuffer`` copies plus an inflate pass -- far below
    #: the character-at-a-time XML ``parse_byte``)
    binfmt_byte: float = 0.05
    #: cost per series per analytics pass (slope/EWMA/z-score kernels
    #: are whole-bank numpy column ops, so the per-series increment is
    #: tiny next to ``rrd_update``)
    analytics_series: float = 2.0

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every coefficient multiplied by ``factor``."""
        from dataclasses import fields

        return CostModel(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )


#: Default node capacity in work units per simulated second.  Calibrated
#: together with :class:`CostModel`; corresponds to one of the paper's
#: dual 2.2 GHz Pentium 4 nodes running the gmetad workload.
DEFAULT_CAPACITY = 5.0e6

#: Default contention coefficient for the saturation model.
DEFAULT_CONTENTION = 0.35


class UtilizationWindow:
    """Busy-time accumulator over a measurement window.

    Mirrors the paper's 60-minute ``ps`` timing window: long windows make
    small disturbances negligible.  ``reset`` starts a new window.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.start_time = start_time
        self.busy_seconds = 0.0
        self.by_category: Dict[str, float] = {c: 0.0 for c in CATEGORIES}

    def add(self, seconds: float, category: str) -> None:
        self.busy_seconds += seconds
        if category not in self.by_category:
            category = "other"
        self.by_category[category] += seconds

    def reset(self, now: float) -> None:
        self.start_time = now
        self.busy_seconds = 0.0
        self.by_category = {c: 0.0 for c in CATEGORIES}

    def elapsed(self, now: float) -> float:
        return now - self.start_time


class CpuAccount:
    """CPU meter for one simulated node.

    Components call :meth:`charge` with a work amount and a category;
    the experiment harness reads :meth:`cpu_percent` at the end of the
    measurement window.
    """

    def __init__(
        self,
        name: str,
        capacity: float = DEFAULT_CAPACITY,
        contention_coeff: float = DEFAULT_CONTENTION,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.contention_coeff = contention_coeff
        self.window = UtilizationWindow()
        self.total_busy_seconds = 0.0

    def charge(self, work_units: float, category: str = "other") -> float:
        """Record ``work_units`` of CPU work; returns the CPU-seconds added."""
        if work_units < 0:
            raise ValueError(f"work must be non-negative, got {work_units}")
        seconds = work_units / self.capacity
        self.window.add(seconds, category)
        self.total_busy_seconds += seconds
        return seconds

    def charge_seconds(self, seconds: float, category: str = "other") -> float:
        """Record raw CPU-seconds (used by fixed-latency costs)."""
        return self.charge(seconds * self.capacity, category)

    # -- measurement -----------------------------------------------------

    def raw_utilization(self, now: float) -> float:
        """Busy fraction of the current window, before contention."""
        elapsed = self.window.elapsed(now)
        if elapsed <= 0:
            return 0.0
        return self.window.busy_seconds / elapsed

    def utilization(self, now: float) -> float:
        """Reported busy fraction including the contention term, capped at 1."""
        u = self.raw_utilization(now)
        inflated = u * (1.0 + self.contention_coeff * u * u)
        return min(inflated, 1.0)

    def cpu_percent(self, now: float) -> float:
        """What ``ps`` would report over the window, as a percentage."""
        return 100.0 * self.utilization(now)

    def category_breakdown(self, now: float) -> Dict[str, float]:
        """Per-category CPU%, raw (no contention), for diagnostics."""
        elapsed = self.window.elapsed(now)
        if elapsed <= 0:
            return {c: 0.0 for c in CATEGORIES}
        return {
            c: 100.0 * s / elapsed for c, s in self.window.by_category.items()
        }

    def reset_window(self, now: float) -> None:
        """Start a fresh measurement window at simulated time ``now``."""
        self.window.reset(now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CpuAccount({self.name!r}, busy={self.total_busy_seconds:.3f}s)"


@dataclass
class NodeResources:
    """Bundle of the per-node simulated resources.

    Currently CPU only; the paper eliminates disk I/O by putting RRD
    archives on tmpfs, so we model archiving as pure CPU work too.
    """

    cpu: CpuAccount
    costs: CostModel = field(default_factory=CostModel)

    @classmethod
    def create(
        cls,
        name: str,
        capacity: float = DEFAULT_CAPACITY,
        costs: Optional[CostModel] = None,
        contention_coeff: float = DEFAULT_CONTENTION,
    ) -> "NodeResources":
        """Build a NodeResources bundle with defaults filled in."""
        return cls(
            cpu=CpuAccount(name, capacity, contention_coeff),
            costs=costs if costs is not None else CostModel(),
        )
