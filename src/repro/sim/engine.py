"""Discrete-event engine: simulated clock plus an ordered event queue.

The engine is intentionally small.  Events are ``(time, priority, seq)``
ordered callbacks; ties are broken by insertion order so runs are fully
deterministic.  Components schedule work with :meth:`Engine.call_later`
(one-shot) or :meth:`Engine.every` (periodic), and the experiment driver
advances simulated time with :meth:`Engine.run_until`.

Simulated time is a ``float`` in seconds.  Nothing in the engine sleeps or
touches wall-clock time: a one-hour measurement window (the paper uses
60-minute CPU timing windows) runs in milliseconds of real time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for engine misuse (e.g. scheduling in the past)."""


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.  Comparable by ``(time, priority, seq)``."""

    time: float
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True


class PeriodicTask:
    """Handle for a repeating event created by :meth:`Engine.every`.

    The task re-arms itself after each firing until :meth:`stop` is
    called.  The optional ``jitter_fn`` returns a per-period offset which
    is added to the interval; gmond agents use this to de-synchronize
    their multicast sends the way real daemons drift apart.
    """

    def __init__(
        self,
        engine: "Engine",
        interval: float,
        callback: Callable[[], None],
        jitter_fn: Optional[Callable[[], float]] = None,
        priority: int = 0,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"periodic interval must be > 0, got {interval}")
        self._engine = engine
        self._interval = interval
        self._callback = callback
        self._jitter_fn = jitter_fn
        self._priority = priority
        self._stopped = False
        self._pending: Optional[Event] = None

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def stopped(self) -> bool:
        return self._stopped

    def start(self, initial_delay: Optional[float] = None) -> "PeriodicTask":
        """Arm the task.  ``initial_delay`` defaults to one interval."""
        if self._stopped:
            raise SimulationError("cannot restart a stopped PeriodicTask")
        delay = self._interval if initial_delay is None else initial_delay
        self._arm(delay)
        return self

    def stop(self) -> None:
        """Stop firing.  Idempotent; any pending event is cancelled."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _arm(self, delay: float) -> None:
        jitter = self._jitter_fn() if self._jitter_fn is not None else 0.0
        # Floor the jittered delay at 1% of the period.  Jitter exists to
        # de-synchronize senders, not to break periodicity: without the
        # floor a pathological jitter_fn could re-arm at delay 0 forever
        # and simulated time would never advance past the current instant.
        floor = 0.01 * self._interval
        delay = max(floor, delay + jitter)
        self._pending = self._engine.call_later(
            delay, self._fire, priority=self._priority
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        self._pending = None
        self._callback()
        if not self._stopped:
            self._arm(self._interval)


class Engine:
    """The event loop.

    Typical use::

        eng = Engine()
        eng.call_later(15.0, poll)
        eng.run_until(3600.0)     # one simulated hour

    ``priority`` orders simultaneous events: lower fires first.  Network
    deliveries use priority 0 and bookkeeping (window rollovers) uses
    priority 10, so measurements see a consistent state.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired (and not cancelled) events."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def processed_events(self) -> int:
        """Total events fired since construction."""
        return self._processed

    def call_later(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.call_at(self._now + delay, callback, *args, priority=priority)

    def call_at(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when}; current time is {self._now}"
            )
        event = Event(when, priority, next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        initial_delay: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
        priority: int = 0,
    ) -> PeriodicTask:
        """Create and start a :class:`PeriodicTask`."""
        task = PeriodicTask(self, interval, callback, jitter_fn, priority)
        return task.start(initial_delay)

    def run_until(self, deadline: float) -> None:
        """Fire every event with ``time <= deadline``; advance clock to it.

        The clock always lands exactly on ``deadline`` even if the last
        event fires earlier, so measurement windows line up.
        """
        if deadline < self._now:
            raise SimulationError(
                f"deadline {deadline} is before current time {self._now}"
            )
        if self._running:
            raise SimulationError("engine is already running (reentrant run)")
        self._running = True
        try:
            while self._queue and self._queue[0].time <= deadline:
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                self._processed += 1
                event.callback(*event.args)
            self._now = deadline
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.run_until(self._now + duration)

    def drain(self, max_events: int = 1_000_000) -> None:
        """Fire all queued events regardless of time (for tests).

        Raises :class:`SimulationError` if more than ``max_events`` fire,
        which usually means a periodic task was left running.
        """
        fired = 0
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            fired += 1
            if fired > max_events:
                raise SimulationError("drain exceeded max_events; runaway task?")
            self._now = max(self._now, event.time)
            self._processed += 1
            event.callback(*event.args)
