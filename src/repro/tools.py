"""Operator tools: textual status reports (the ``gstat`` of this repo).

Real Ganglia ships ``gstat``, a terminal program that prints cluster
status by querying a gmond.  These helpers render the same reports from
either a gmond agent's soft state or a gmetad datastore, and the
federation-wide variant a root-level operator would run.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.loadstats import busiest_hosts
from repro.core.gmetad_base import GmetadBase
from repro.gmond.agent import GmondAgent
from repro.serve.views import (
    busiest_from_columns,
    has_live_columns,
    host_statuses,
)
from repro.wire.model import ClusterElement


def _cluster_status_lines(
    cluster: ClusterElement,
    heartbeat_window: float,
    show_hosts: bool,
) -> List[str]:
    up = sum(1 for h in cluster.hosts.values() if h.is_up(heartbeat_window))
    down = len(cluster.hosts) - up
    total_cpus = 0
    load_sum = 0.0
    load_count = 0
    for host in cluster.hosts.values():
        if not host.is_up(heartbeat_window):
            continue
        cpu_metric = host.metrics.get("cpu_num")
        if cpu_metric is not None and cpu_metric.is_numeric:
            total_cpus += int(cpu_metric.numeric())
        load_metric = host.metrics.get("load_one")
        if load_metric is not None and load_metric.is_numeric:
            load_sum += load_metric.numeric()
            load_count += 1
    lines = [
        f"CLUSTER {cluster.name} -- {up} up, {down} down, "
        f"{total_cpus} CPUs, mean load "
        f"{(load_sum / load_count) if load_count else 0.0:.2f}"
    ]
    if show_hosts:
        for name in sorted(cluster.hosts):
            host = cluster.hosts[name]
            state = "up  " if host.is_up(heartbeat_window) else "DOWN"
            load = host.metrics.get("load_one")
            load_text = f"{load.numeric():5.2f}" if load and load.is_numeric else "  ?  "
            lines.append(f"  {state} {name:24s} load {load_text}")
        top = busiest_hosts(cluster, count=3, heartbeat_window=heartbeat_window)
        if top:
            hot = ", ".join(f"{n}({v:.2f})" for n, v in top)
            lines.append(f"  busiest: {hot}")
    return lines


def _columnar_status_lines(
    cols,
    heartbeat_window: float,
    show_hosts: bool,
) -> List[str]:
    """The exact ``_cluster_status_lines`` report, by row-slice.

    Serving a status report must not force a columnar daemon to
    materialize the whole cluster DOM; every figure here comes from
    :mod:`repro.serve.views` accessors over the held columns.
    """
    statuses = host_statuses(cols, heartbeat_window)
    up = sum(1 for s in statuses if s.up)
    down = len(statuses) - up
    total_cpus = sum(s.cpu_num for s in statuses if s.up and s.cpu_num is not None)
    loads = [s.load_one for s in statuses if s.up and s.load_one is not None]
    mean_load = (sum(loads) / len(loads)) if loads else 0.0
    lines = [
        f"CLUSTER {cols.name} -- {up} up, {down} down, "
        f"{total_cpus} CPUs, mean load {mean_load:.2f}"
    ]
    if show_hosts:
        for status in sorted(statuses, key=lambda s: s.name):
            state = "up  " if status.up else "DOWN"
            load_text = (
                f"{status.load_one:5.2f}"
                if status.load_one is not None
                else "  ?  "
            )
            lines.append(f"  {state} {status.name:24s} load {load_text}")
        top = busiest_from_columns(
            cols, count=3, heartbeat_window=heartbeat_window
        )
        if top:
            hot = ", ".join(f"{n}({v:.2f})" for n, v in top)
            lines.append(f"  busiest: {hot}")
    return lines


def gstat_from_agent(
    agent: GmondAgent, show_hosts: bool = True
) -> str:
    """Cluster status from one gmond agent's redundant soft state."""
    cluster = agent.state.to_cluster_element(agent.engine.now)
    return "\n".join(
        _cluster_status_lines(
            cluster, agent.config.heartbeat_window, show_hosts
        )
    )


def gstat_from_gmetad(
    gmetad: GmetadBase,
    source: Optional[str] = None,
    show_hosts: bool = False,
) -> str:
    """Federation (or single-source) status from a gmetad datastore."""
    lines: List[str] = []
    names = [source] if source else gmetad.datastore.source_names()
    for name in names:
        snapshot = gmetad.datastore.source(name)
        if snapshot is None:
            lines.append(f"SOURCE {name} -- unknown")
            continue
        flag = "" if snapshot.up else "  [UNREACHABLE, stale data]"
        if snapshot.kind == "cluster" and has_live_columns(snapshot):
            lines.extend(
                _columnar_status_lines(
                    snapshot.columns,
                    gmetad.config.heartbeat_window,
                    show_hosts,
                )
            )
            if flag:
                lines[-1] += flag
            continue
        snapshot.ensure_hosts()  # tree-built snapshots keep the DOM path
        if snapshot.kind == "cluster" and snapshot.cluster is not None:
            lines.extend(
                _cluster_status_lines(
                    snapshot.cluster,
                    gmetad.config.heartbeat_window,
                    show_hosts,
                )
            )
            if flag:
                lines[-1] += flag
        else:
            summary = snapshot.summary
            load = summary.metrics.get("load_one")
            lines.append(
                f"GRID {name} -- {summary.hosts_up} up, "
                f"{summary.hosts_down} down, mean load "
                f"{load.mean() if load else 0.0:.2f} "
                f"(detail at {snapshot.authority}){flag}"
            )
    return "\n".join(lines)
