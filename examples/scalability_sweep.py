#!/usr/bin/env python
"""Miniature of the paper's evaluation: all three experiments at small
scale, printed in the paper's format.

This runs in well under a minute; the full-scale versions (100-500 host
clusters, long windows) live in ``benchmarks/`` and are executed with
``pytest benchmarks/ --benchmark-only``.

Run:  python examples/scalability_sweep.py
"""

from repro import run_figure5, run_figure6, run_table1


def main() -> None:
    print("Running experiment 1 (Fig. 5) at 20-host scale...\n")
    fig5 = run_figure5(hosts_per_cluster=20, window=90.0, warmup=30.0)
    print(fig5.report())

    print("\n\nRunning experiment 2 (Fig. 6) over sizes 5..40...\n")
    fig6 = run_figure6(sizes=(5, 10, 20, 40), window=45.0, warmup=30.0)
    print(fig6.report())

    print("\n\nRunning experiment 3 (Table 1) at 20-host scale...\n")
    table1 = run_table1(hosts_per_cluster=20, warmup=45.0, samples=3)
    print(table1.report())

    print(
        "\nShapes to notice (they match the paper at every scale):\n"
        "  - 1-level stacks CPU at the root; N-level pushes it to leaves\n"
        "  - the N-level aggregate is lower and grows more slowly\n"
        "  - the N-level viewer is fastest for host views, slowest for\n"
        "    full-cluster views, and the 1-level viewer pays the same\n"
        "    price for everything"
    )


if __name__ == "__main__":
    main()
