#!/usr/bin/env python
"""A replicated, sharded storage tier behind the Fig. 2 federation.

The paper's gmetad archives every metric into local RRD files -- one
disk, one failure domain (§2.4).  This example attaches the
:mod:`repro.storage` subsystem to each gmetad in the paper tree and
walks the robustness story end to end:

1. every gmetad archives through a fleet of four simulated storage
   nodes: series are grouped by (source, cluster, host), groups are
   placed on shards by feature clustering, and each shard lives on
   R=2 replicas -- the archiver's charged CPU is identical to the
   single-store baseline, only the flush parallelism changes;
2. a :class:`FaultSchedule` kills one storage node mid-run: fetches
   against its shards fail over to the surviving replicas while
   anti-entropy recruits replacements and re-replicates the series;
3. the node comes back *stale* and is re-synced in place, and the
   measured time-to-repair for every incident is printed against the
   configured deadline;
4. the ``__gmetad__`` self-cluster surfaces the tier's counters
   (under-replicated shards, failovers, repairs) in band.

Run:  python examples/storage_federation.py
"""

from repro import build_paper_tree
from repro.faults.injector import FaultInjector
from repro.faults.schedules import FaultEvent, FaultSchedule
from repro.obs.config import ObservabilityConfig
from repro.storage import StorageTierConfig

WARMUP = 60.0
KILL_AT = 95.0
KILL_FOR = 120.0
VICTIM = "st00"


def main() -> None:
    storage = StorageTierConfig(
        nodes=4, shards=16, replication=2,
        repair_interval=15.0, repair_deadline=60.0,
    )
    federation = build_paper_tree(
        "nlevel", hosts_per_cluster=10, archive_mode="full",
        storage_tier=storage, observability=ObservabilityConfig(),
    )
    federation.start()
    engine = federation.engine
    engine.run_for(WARMUP)

    # -- 1. every archive flows through the fleet, R-way ---------------------
    sdsc = federation.gmetad("sdsc")
    tier = sdsc.rrd_store
    print("=== storage fleet behind gmeta-sdsc ===")
    for name, node in tier.nodes.items():
        print(f"{name}: {node.updates_applied} physical updates, "
              f"{len(node.store)} series, busy {node.busy_seconds:.3f}s")
    stats = tier.stats()
    print(f"logical updates {stats['logical_updates']:.0f}, physical "
          f"{stats['physical_updates']:.0f} (R=2 fan-out), flush critical "
          f"path {stats['critical_path_seconds']:.3f}s of "
          f"{stats['total_node_seconds']:.3f}s total node work")

    # -- 2+3. kill a node on a schedule; watch failover and repair -----------
    injector = FaultInjector(engine, federation.fabric)
    for gmetad in federation.gmetads.values():
        injector.register_storage_tier(gmetad.rrd_store)
    FaultSchedule([
        FaultEvent(at=KILL_AT - engine.now if engine.now < KILL_AT else 0.0,
                   action="storage_kill", host=VICTIM, duration=KILL_FOR),
    ]).apply(injector)

    # probe a series whose shard is *led* by the victim, so the fetch
    # below demonstrably fails over to the surviving replica
    probe_key = next(
        k for k in tier.keys()
        if tier.shard_map.replicas[tier._shard_of(k)][0] == VICTIM
    )
    engine.run_for(KILL_AT - engine.now + 5.0)
    print(f"\n=== {VICTIM} killed at t={KILL_AT:g}s ===")
    print(f"nodes up: {tier.nodes_up()}/{len(tier.nodes)}, "
          f"under-replicated shards: {tier.under_replicated_shards()}")
    values, _, _ = tier.fetch_series(probe_key, 0.0, engine.now)
    print(f"fetch of {probe_key.metric} for {probe_key.host} still serves "
          f"{len(values)} samples (failovers so far: "
          f"{tier.failover_fetches})")

    engine.run_for(KILL_FOR + 30.0)  # node returns stale, gets re-synced
    print(f"\n=== after restart + anti-entropy ===")
    print(f"nodes up: {tier.nodes_up()}/{len(tier.nodes)}, "
          f"under-replicated shards: {tier.under_replicated_shards()}, "
          f"repairs completed: {tier.repairs_completed}")
    worst = max(tier.repair_times, default=0.0)
    print(f"time-to-repair per incident: "
          + ", ".join(f"{t:.0f}s" for t in tier.repair_times)
          + f" (worst {worst:.0f}s vs {storage.repair_deadline:g}s deadline)")
    print(f"updates lost across the outage: {tier.updates_lost:.0f} "
          f"(R=2: surviving replicas absorbed every batch)")

    # -- 4. the tier's counters ride the in-band self-cluster ----------------
    sdsc.obs.sync_daemon_gauges()
    snapshot = sdsc.obs.registry.snapshot()
    print("\n=== __gmetad__ self-cluster storage gauges ===")
    for name in sorted(snapshot):
        if name.startswith("storage_"):
            print(f"{name} = {snapshot[name]:g}")

    federation.stop()


if __name__ == "__main__":
    main()
