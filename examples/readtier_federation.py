#!/usr/bin/env python
"""A replicated read tier over the paper's Figure 2 federation.

The paper's serving story is one daemon per grid node: every web
frontend page view opens a TCP connection to *the* gmetad and downloads
XML.  This example bolts the :mod:`repro.readtier` subsystem onto the
root of the Fig. 2 tree and shows the pieces working together:

1. four :class:`ReadReplica` processes subscribe to the root gmetad's
   hidden ``__repl__`` replication feed (delta pub-sub, PR 5) and
   materialize generation-stamped snapshots -- each replica serves
   byte-identical XML to the ingest daemon at matched generations;
2. a rendezvous-hashing :class:`FrontDoor` pins each viewer session to
   a replica, so a fleet of viewers spreads across the tier while any
   single viewer keeps hitting its own (cache-warm) replica;
3. killing a replica shows the failover path: its viewers time out
   once, fail over, and HRW re-places only *its* sessions -- everyone
   else keeps their replica;
4. a :class:`ViewerFleet` of 2000 Zipf-skewed viewers drives the tier
   through the door and prints the serving split.

Run:  python examples/readtier_federation.py
"""

from repro import build_paper_tree
from repro.readtier.config import ReadTierConfig
from repro.readtier.fleet import ViewerFleet, build_read_tier, viewer_paths

WARMUP = 60.0
FLEET_CLIENTS = 2000
FLEET_WINDOW = 60.0


def main() -> None:
    federation = build_paper_tree(
        "nlevel", hosts_per_cluster=10, archive_mode="account"
    )
    federation.start()
    engine = federation.engine
    engine.run_for(WARMUP)

    # -- 1. four replicas fed from the root's replication feed ---------------
    root = federation.gmetad("root")
    tier = build_read_tier(
        engine, federation.fabric, federation.tcp, root,
        replicas=4, config=ReadTierConfig(replicas=4),
    )
    while not tier.synced():
        engine.run_for(15.0)

    triple = (
        root.datastore.generation,
        root.datastore.content_version,
        root.datastore.detail_version,
    )
    print("=== replicas at a consistent generation ===")
    for replica in tier.replicas:
        identical = replica.serve_query("/")[0] == root.serve_query("/")[0]
        print(f"{replica.name}: generation {replica.ingest_versions}, "
              f"full tree byte-identical: {identical}")
    print(f"ingest root triple: {triple}")

    # -- 2. rendezvous placement: sticky sessions, spread population ---------
    door = tier.frontdoor
    print("\n=== rendezvous placement ===")
    viewers = [f"operator-{i}" for i in range(12)]
    placement = {v: door.rank(v)[0].replica.name for v in viewers}
    for viewer in viewers[:4]:
        print(f"{viewer} -> {placement[viewer]}")
    by_replica = {name: 0 for name in placement.values()}
    for name in placement.values():
        by_replica[name] += 1
    print(f"12 viewers over {len(by_replica)} replicas: {by_replica}")

    # -- 3. lose a replica: only its viewers move ----------------------------
    victim = tier.replicas[0]
    federation.fabric.set_host_up(victim.host, False)
    moved = sum(
        1 for v in viewers
        if placement[v] == victim.name
    )
    after = {
        v: [h for h in door.rank(v) if h.replica.name != victim.name][0]
        .replica.name
        for v in viewers
    }
    stayed = sum(
        1 for v in viewers
        if placement[v] != victim.name and after[v] == placement[v]
    )
    print(f"\n=== replica loss ({victim.name} down) ===")
    print(f"viewers that must move: {moved}; "
          f"unaffected viewers keeping their replica: {stayed}/"
          f"{len(viewers) - moved}")
    federation.fabric.set_host_up(victim.host, True)

    # -- 4. a Zipf-skewed viewer fleet through the front door ----------------
    fleet = ViewerFleet(
        engine, federation.fabric, federation.tcp, tier.address,
        viewer_paths(root), clients=FLEET_CLIENTS, aggregators=32, seed=5,
    ).start()
    engine.run_for(FLEET_WINDOW)
    fleet.stop()
    window = fleet.take_window()
    print(f"\n=== viewer fleet ({FLEET_CLIENTS} clients, "
          f"{fleet.offered_qps:g} qps offered) ===")
    print(f"sent={window.sent} ok={window.ok} "
          f"overloaded={window.overloaded} timeouts={window.timeouts}")
    print(f"p50 {1000 * window.percentile(0.50):.2f} ms, "
          f"p99 {1000 * window.percentile(0.99):.2f} ms")
    print("serving split: "
          + ", ".join(f"{r.name}={r.queries_served}" for r in tier.replicas))
    print(f"door: hedges={door.hedges_fired} failovers={door.failovers} "
          f"upstream timeouts={door.upstream_timeouts}")

    tier.stop()
    federation.stop()


if __name__ == "__main__":
    main()
