#!/usr/bin/env python
"""Quickstart: monitor one real gmond cluster with an N-level gmetad.

Builds the smallest interesting deployment by hand (no prefab topology):

- an 8-host cluster running real gmond agents on a simulated multicast
  channel (leaderless, soft-state, any node can serve the full report);
- one gmetad polling two redundant gmond endpoints every 15 s;
- a few queries against the gmetad's path query engine.

Run:  python examples/quickstart.py
"""

from repro import (
    Engine,
    Fabric,
    Gmetad,
    GmetadConfig,
    RngRegistry,
    SimulatedCluster,
    TcpNetwork,
)


def main() -> None:
    # -- the simulated world ------------------------------------------------
    engine = Engine()
    fabric = Fabric()
    tcp = TcpNetwork(engine, fabric)
    rngs = RngRegistry(42)

    # -- a cluster of real gmond agents ------------------------------------
    cluster = SimulatedCluster.build(
        engine, fabric, tcp, rngs, name="meteor", num_hosts=8
    )
    cluster.start()

    # -- a gmetad polling it (with fail-over endpoints) ---------------------
    config = GmetadConfig(name="sdsc", host="gmeta-sdsc", archive_mode="full")
    config.add_source("meteor", cluster.gmond_addresses(count=2))
    gmetad = Gmetad(engine, fabric, tcp, config)
    gmetad.start()

    # -- let the federation run for two simulated minutes -------------------
    engine.run_for(120.0)

    # -- query it -----------------------------------------------------------
    snapshot = gmetad.datastore.source("meteor")
    print(f"cluster 'meteor' seen by gmetad '{gmetad.config.name}':")
    print(f"  hosts up={snapshot.summary.hosts_up} "
          f"down={snapshot.summary.hosts_down}")
    load = snapshot.summary.metrics["load_one"]
    print(f"  load_one: sum={load.total:.2f} mean={load.mean():.2f} "
          f"over {load.num} hosts")

    print("\ncluster summary XML (what a parent gmetad would receive):")
    xml, _ = gmetad.serve_query("/meteor?filter=summary")
    print("\n".join(xml.splitlines()[:8]) + "\n  ...")

    host = cluster.host_names[3]
    print(f"\nsingle-host query /meteor/{host}/load_one:")
    xml, _ = gmetad.serve_query(f"/meteor/{host}/load_one")
    print("\n".join(line for line in xml.splitlines() if "METRIC" in line))

    # -- the RRD archives are live too ---------------------------------------
    from repro.rrd.store import MetricKey

    key = MetricKey("meteor", "meteor", host, "load_one")
    database = gmetad.rrd_store.database(key)
    database.flush(engine.now)
    # ask for the last minute -> the finest (15 s) archive answers
    times, values, resolution = database.fetch(engine.now - 60.0, engine.now)
    print(f"\n{host} load_one history ({resolution:.0f}s resolution):")
    for t, v in list(zip(times, values))[-5:]:
        print(f"  t={t:6.0f}s  load={v:.2f}")

    gmetad.stop()
    cluster.stop()
    print("\ndone: one cluster, one gmetad, full pipeline exercised.")


if __name__ == "__main__":
    main()
