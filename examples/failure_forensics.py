#!/usr/bin/env python
"""Failure handling and time-of-death forensics.

Demonstrates the three failure behaviours the paper designs for:

1. **gmetad fail-over** (Fig. 1): the polled gmond node stop-fails and
   the monitor transparently moves to a redundant endpoint -- any agent
   can serve the whole cluster.
2. **Host death in the archives**: a silent host gets "a 'zero' record
   during the downtime, aiding time-of-death forensic analysis".
3. **Wide-area partition**: the trust edge to a remote grid goes dark,
   the source is marked down but its last state is kept; when the
   partition heals, polling resumes -- no permanent fissure.

Run:  python examples/failure_forensics.py
"""

from repro import (
    Engine,
    Fabric,
    Gmetad,
    GmetadConfig,
    RngRegistry,
    SimulatedCluster,
    TcpNetwork,
)
from repro.analysis.availability import cluster_availability
from repro.analysis.forensics import estimate_death_time
from repro.faults.injector import FaultInjector
from repro.rrd.store import MetricKey


def main() -> None:
    engine = Engine()
    fabric = Fabric()
    tcp = TcpNetwork(engine, fabric)
    rngs = RngRegistry(7)
    injector = FaultInjector(engine, fabric)

    cluster = SimulatedCluster.build(
        engine, fabric, tcp, rngs, name="meteor", num_hosts=6
    )
    cluster.start()

    config = GmetadConfig(name="mon", host="gmeta-mon", archive_mode="full")
    config.add_source("meteor", cluster.gmond_addresses(count=3))
    gmetad = Gmetad(engine, fabric, tcp, config)
    gmetad.start()
    engine.run_for(120.0)

    # -- 1. fail-over between gmond endpoints --------------------------------
    poller = gmetad.pollers["meteor"]
    victim = poller.current_address.host
    print(f"=== 1. stop-failure of the polled node ({victim}) ===")
    injector.crash_host(victim, at=0.0)
    cluster.agent(victim).stop()
    death_time = engine.now
    engine.run_for(60.0)
    print(f"  polling now uses {poller.current_address.host} "
          f"(failovers: {poller.failovers}); source still up: "
          f"{gmetad.datastore.source('meteor').up}")

    # -- 2. the dead host in summaries and archives ---------------------------
    engine.run_for(240.0)
    snapshot = gmetad.datastore.source("meteor")
    print("\n=== 2. forensics on the dead host ===")
    print(f"  summary now: up={snapshot.summary.hosts_up} "
          f"down={snapshot.summary.hosts_down}")
    database = gmetad.rrd_store.database(
        MetricKey("meteor", "meteor", victim, "load_one")
    )
    database.flush(engine.now)
    times, values, resolution = database.fetch(0.0, engine.now)
    print(f"  {victim} load_one archive ({resolution:.0f}s rows):")
    for t, v in list(zip(times, values))[-8:]:
        marker = "  <-- zero record (downtime)" if v == 0.0 else ""
        print(f"    t={t:6.0f}s  load={v:5.2f}{marker}")
    # the library's forensic analysis over the same archive
    death_estimate = estimate_death_time(database, 0.0, engine.now)
    if death_estimate is not None:
        print(f"  time-of-death estimate: records go to zero at "
              f"t={death_estimate:.0f}s (actual crash: t={death_time:.0f}s;"
              " the lag is the heartbeat window the monitor needs to"
              " declare the host dead)")
    report = cluster_availability(
        gmetad.rrd_store, "meteor", "meteor", 0.0, engine.now
    )
    print("\n" + report.render())

    # -- 3. a partition to the whole cluster, then healing --------------------
    print("\n=== 3. partition between the monitor and the cluster ===")
    others = [h for h in cluster.host_names if h != victim]
    injector.partition(["gmeta-mon"], others, at=0.0, duration=120.0)
    engine.run_for(90.0)
    snapshot = gmetad.datastore.source("meteor")
    print(f"  during partition: source up={snapshot.up} "
          f"(consecutive failures: {snapshot.consecutive_failures}); "
          f"stale state kept: {len(snapshot.cluster.hosts)} hosts")
    engine.run_for(90.0)  # heal + resume
    snapshot = gmetad.datastore.source("meteor")
    print(f"  after healing:    source up={snapshot.up} -- "
          "monitoring resumed, no permanent fissure")

    print("\nfault log:")
    for t, action, subject in injector.log:
        print(f"  [{t:7.1f}s] {action:10s} {subject}")

    gmetad.stop()
    cluster.stop()


if __name__ == "__main__":
    main()
