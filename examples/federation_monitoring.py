#!/usr/bin/env python
"""Wide-area federation: the paper's six-monitor tree, end to end.

Builds the exact monitoring tree of the paper's Figure 2 (root -> ucsd,
sdsc; ucsd -> physics, math; sdsc -> attic; twelve clusters at the
leaves), then demonstrates the multiple-resolution view the N-level
design exists for:

1. the root's meta view -- two grid summaries, O(m) data;
2. one level down -- per-cluster summaries at sdsc;
3. following AUTHORITY pointers to the leaf holding full detail;
4. the web frontend rendering all three page types with timings.

Run:  python examples/federation_monitoring.py
"""

from repro import WebFrontend, build_paper_tree
from repro.core.authority import AuthorityNavigator


def main() -> None:
    federation = build_paper_tree(
        "nlevel", hosts_per_cluster=20, archive_mode="account"
    )
    federation.start()
    federation.engine.run_for(90.0)

    # -- 1. the root's view: everything, summarized --------------------------
    root = federation.gmetad("root")
    rollup, _ = root.datastore.root_summary()
    print("=== root meta view ===")
    print(f"federation total: {rollup.hosts_up} hosts up, "
          f"{rollup.hosts_down} down, "
          f"{int(rollup.metrics['cpu_num'].total)} CPUs")
    for source_name in root.datastore.source_names():
        snapshot = root.datastore.source(source_name)
        load = snapshot.summary.metrics["load_one"]
        print(f"  grid {source_name:8s} hosts={snapshot.summary.hosts_total:4d} "
              f"mean load={load.mean():.2f}  authority={snapshot.authority}")

    # -- 2. one level down: sdsc's per-cluster summaries ----------------------
    sdsc = federation.gmetad("sdsc")
    print("\n=== sdsc view (one resolution level down) ===")
    for source_name in sdsc.datastore.source_names():
        snapshot = sdsc.datastore.source(source_name)
        kind = "grid   " if snapshot.kind == "grid" else "cluster"
        print(f"  {kind} {source_name:10s} hosts={snapshot.summary.hosts_total}")

    # -- 3. drill down by following authority pointers ------------------------
    print("\n=== authority drill-down: locate math-c1 from the root ===")
    federation.fabric.add_host("operator-laptop")
    navigator = AuthorityNavigator(
        federation.engine, federation.tcp, "operator-laptop"
    )
    result = navigator.drill_down(root.address, "math-c1")
    for step in result.steps:
        note = f" -> follow {step.authority}" if step.outcome == "follow" else ""
        print(f"  asked {step.address}  {step.query:20s} [{step.outcome}]{note}")
    print(f"  full resolution reached: {len(result.cluster.hosts)} hosts, "
          f"{result.cluster.metric_count} metric values")

    # -- 4. the web frontend's three page types -------------------------------
    print("\n=== web frontend page timings against sdsc ===")
    viewer = WebFrontend(
        federation.engine, federation.fabric, federation.tcp,
        target=sdsc.address, design="nlevel",
    )
    meta_page, timing = viewer.render_view("meta")
    print(f"  meta view:    {timing.total_seconds*1000:8.2f} ms "
          f"({timing.bytes_received} bytes) -- {len(meta_page.rows)} rows")
    cluster_page, timing = viewer.render_view("cluster", cluster="sdsc-c0")
    print(f"  cluster view: {timing.total_seconds*1000:8.2f} ms "
          f"({timing.bytes_received} bytes) -- {cluster_page.up_count} hosts up")
    host_page, timing = viewer.render_view(
        "host", cluster="sdsc-c0", host="sdsc-c0-0-7"
    )
    print(f"  host view:    {timing.total_seconds*1000:8.2f} ms "
          f"({timing.bytes_received} bytes) -- "
          f"{len(host_page.metrics)} metrics shown")

    federation.stop()


if __name__ == "__main__":
    main()
