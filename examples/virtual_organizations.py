#!/usr/bin/env python
"""Virtual-organization views: the Ganglia VO model on our gmetad.

The related work describes Ganglia VO: "fractional access policies on a
grid of clusters" with "a user/group-centric information hierarchy
based on virtual organizations".  Here two science VOs share the sdsc
clusters:

- *atlas* owns 60% of sdsc-c0 and all of sdsc-c1;
- *cms* owns the other 40% of sdsc-c0 and the gpu-prefixed... well,
  an explicit host list in sdsc-c2.

Each VO then sees only its slice: filtered cluster views, per-VO
summaries, and `/vo/...` queries that structurally cannot leak another
VO's hosts.

Run:  python examples/virtual_organizations.py
"""

from repro import build_paper_tree
from repro.vo.policy import ClusterSlice, VirtualOrganization, VoPolicy
from repro.vo.service import VoDirectory, VoError


def main() -> None:
    federation = build_paper_tree(
        "nlevel", hosts_per_cluster=10, archive_mode="account"
    )
    federation.start()
    federation.engine.run_for(60.0)
    sdsc = federation.gmetad("sdsc")

    # -- policy ----------------------------------------------------------
    policy = VoPolicy()
    # sdsc-c0 is split 60/40 between the two VOs, exactly and disjointly
    policy.partition_cluster("sdsc-c0", {"atlas": 0.6, "cms": 0.4})
    policy.vo("atlas").grant(ClusterSlice(cluster="sdsc-c1", fraction=1.0))
    policy.vo("cms").grant(
        ClusterSlice(
            cluster="sdsc-c2",
            hosts=frozenset({"sdsc-c2-0-1", "sdsc-c2-0-4", "sdsc-c2-0-7"}),
        )
    )
    directory = VoDirectory(sdsc, policy)

    # -- per-VO summaries -----------------------------------------------------
    print("=== per-VO rollups (user/group-centric hierarchy) ===")
    for vo_name in policy.names():
        summary, clusters = directory.vo_summary(vo_name)
        load = summary.metrics.get("load_one")
        print(f"  VO {vo_name:6s}: {summary.hosts_total:3d} hosts across "
              f"{clusters}, mean load "
              f"{load.mean() if load else 0.0:.2f}")

    # -- the 60/40 split of sdsc-c0 -----------------------------------------
    print("\n=== fractional split of sdsc-c0 ===")
    atlas_hosts = set(directory.filtered_cluster("atlas", "sdsc-c0").hosts)
    cms_hosts = set(directory.filtered_cluster("cms", "sdsc-c0").hosts)
    print(f"  atlas: {len(atlas_hosts)} hosts  {sorted(atlas_hosts)[:3]}...")
    print(f"  cms:   {len(cms_hosts)} hosts  {sorted(cms_hosts)[:3]}...")
    print(f"  overlap: {len(atlas_hosts & cms_hosts)} "
          f"(disjoint), coverage: {len(atlas_hosts | cms_hosts)}/10")

    # -- queries with enforcement ------------------------------------------
    print("\n=== /vo queries ===")
    xml, _ = directory.serve("/vo/cms/sdsc-c2")
    lines = [l for l in xml.splitlines() if "HOST NAME" in l]
    print(f"  /vo/cms/sdsc-c2 -> {len(lines)} hosts "
          "(the explicit grant, nothing else)")
    try:
        directory.serve("/vo/cms/sdsc-c1")
    except VoError as exc:
        print(f"  /vo/cms/sdsc-c1 -> denied: {exc}")
    try:
        directory.serve("/vo/atlas/sdsc-c2/sdsc-c2-0-1")
    except VoError as exc:
        print(f"  /vo/atlas/sdsc-c2/... -> denied: {exc}")

    federation.stop()


if __name__ == "__main__":
    main()
