#!/usr/bin/env python
"""Wide-area federation in push mode: delta-encoded publish-subscribe.

Builds the paper's Figure 2 tree like ``federation_monitoring.py``,
then layers the :mod:`repro.pubsub` delivery path on top of it:

1. pub-sub brokers attach to the sdsc and root gmetads; the root's
   broker holds an upstream relay link into sdsc's broker;
2. three operators subscribe **at the root** to the same cluster --
   in-tree folding collapses them onto ONE subscription at sdsc;
3. push frontends render cluster and host pages straight out of their
   delta-maintained mirrors, with zero download time per page;
4. a polling frontend watches the same cluster at the same freshness,
   and the example prints the bytes each delivery mode put on the wire.

Run:  python examples/pubsub_federation.py
"""

from repro import PushFrontend, WebFrontend, build_paper_tree

VIEW_INTERVAL = 15.0  # poll-mode page refresh = push-mode freshness
WINDOW = 240.0


def main() -> None:
    # low change rate: values re-randomize every 240 s while viewers
    # want 15 s freshness -- the regime where delta encoding pays
    federation = build_paper_tree(
        "nlevel", hosts_per_cluster=20, archive_mode="account",
        refresh_interval=240.0,
    )
    federation.start()

    # -- 1. brokers on the tree: root relays sdsc's full detail --------------
    sdsc = federation.gmetad("sdsc")
    root = federation.gmetad("root")
    sdsc_broker = sdsc.attach_pubsub()
    root_broker = root.attach_pubsub(upstreams={"sdsc": sdsc_broker.address})

    # -- 2. three operators, one tree edge (subscription folding) ------------
    operators = [
        PushFrontend(
            federation.engine, federation.fabric, federation.tcp,
            root_broker.address, path="/sdsc/sdsc-c0",
            host=f"operator-{i}",
        ).start()
        for i in range(3)
    ]
    federation.engine.run_for(90.0)

    print("=== in-tree subscription folding ===")
    print(f"operators subscribed at root: {len(root_broker.registry)}")
    relays = [s.sub_id for s in sdsc_broker.registry.subscriptions()]
    print(f"subscriptions sdsc's broker sees: {len(relays)} ({relays[0]})")
    links = root_broker.upstream_links
    print(f"root upstream links: {[(l.source, l.path) for l in links]}")

    # -- 3. pages rendered from the mirror: zero download time ---------------
    print("\n=== push frontend pages (operator-0) ===")
    viewer = operators[0]
    rows, timing = viewer.render_view("cluster", cluster="sdsc/sdsc-c0")
    print(f"  cluster view: download {timing.download_seconds*1000:.2f} ms, "
          f"apply {timing.parse_seconds*1000:8.2f} ms "
          f"({timing.bytes_received} delta bytes since subscribe) -- "
          f"{len(rows)} rows")
    a_host = sorted(
        k.split("/")[2] for k in rows if k.count("/") == 3
    )[0]
    host_rows, timing = viewer.render_view(
        "host", cluster="sdsc/sdsc-c0", host=a_host
    )
    print(f"  host view ({a_host}): download 0.00 ms, "
          f"{len(host_rows)} full-resolution rows relayed through root")

    # -- 4. push vs poll bytes at equal freshness -----------------------------
    poller = WebFrontend(
        federation.engine, federation.fabric, federation.tcp,
        target=sdsc.address, design="nlevel", host="poll-operator",
    )
    push_before = [
        fe.client.bytes_received + fe.client.control_bytes_sent
        for fe in operators
    ]
    poll_total = 0
    engine = federation.engine
    end = engine.now + WINDOW
    while engine.now < end:
        _, timing = poller.render_view("cluster", cluster="sdsc-c0")
        poll_total += timing.bytes_received + len(timing.query)
        engine.run_for(min(VIEW_INTERVAL, end - engine.now))
    push_totals = [
        fe.client.bytes_received + fe.client.control_bytes_sent - before
        for fe, before in zip(operators, push_before)
    ]

    print(f"\n=== bytes on the wire over {WINDOW:.0f} s "
          f"(page freshness {VIEW_INTERVAL:.0f} s) ===")
    print(f"  poll operator : {poll_total:8d} B "
          f"(re-downloads the cluster XML every view)")
    for i, total in enumerate(push_totals):
        print(f"  push operator-{i}: {total:8d} B (deltas + lease renewals)")
    saved = 1.0 - sum(push_totals) / len(push_totals) / max(1, poll_total)
    print(f"  push saves {100.0 * saved:.2f}% per operator at equal freshness")

    for fe in operators:
        fe.stop()
    root_broker.stop()
    sdsc_broker.stop()
    federation.stop()


if __name__ == "__main__":
    main()
