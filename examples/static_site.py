#!/usr/bin/env python
"""Generate a browsable static snapshot of a whole federation.

Runs the paper's six-gmetad tree, then writes one HTML directory per
gmetad: meta views with working cross-gmetad links (the AUTHORITY
pointers of §2.2 become plain hyperlinks), full cluster pages and
per-host metric pages at the authority level.

Run:  python examples/static_site.py [output-dir]
"""

import sys

from repro import build_paper_tree
from repro.frontend.site import generate_federation_site


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "/tmp/ganglia-site"
    federation = build_paper_tree(
        "nlevel", hosts_per_cluster=12, archive_mode="account"
    )
    federation.start()
    federation.engine.run_for(90.0)

    pages = generate_federation_site(federation.gmetads, output)
    federation.stop()

    print(f"wrote {pages} pages under {output}/")
    print(f"open {output}/index.html and drill down:")
    print("  federation index -> root meta view -> grid SDSC ->")
    print("  cluster sdsc-c0 -> any host's 33-metric table")


if __name__ == "__main__":
    main()
