#!/usr/bin/env python
"""The §4 future-work features: regex queries driving an alarm engine.

"We would like to implement a general alarm mechanism that tracks the
data and automatically identify situations that should be relayed to a
human observer. ... A richer query language based on regular
expressions is planned for next version of Ganglia."

This example watches the paper's federation from the sdsc gmetad:

- a regex query sweeps load_one across every cluster and host;
- an alarm fires when a host goes silent (TN beyond 60 s) and resolves
  when it comes back;
- a second alarm with a hold time guards against one-sample noise.

Run:  python examples/alarms_and_regex_queries.py
"""

from repro import build_paper_tree
from repro.core.alarms import AlarmEngine, AlarmRule
from repro.core.query_regex import RegexQueryEngine


def main() -> None:
    federation = build_paper_tree(
        "nlevel", hosts_per_cluster=10, archive_mode="account"
    )
    federation.start()
    federation.engine.run_for(60.0)
    sdsc = federation.gmetad("sdsc")

    # -- regex queries over the datastore -------------------------------------
    print("=== regex query: load_one on the first two hosts of every "
          "local cluster ===")
    queries = RegexQueryEngine(sdsc.datastore)
    for match in queries.search(r"~/sdsc-c\d/sdsc-c\d-0-[01]/load_one"):
        print(f"  {match.path_text:38s} = {match.element.val}")

    print("\n=== regex query: whole-grid rollups visible from sdsc ===")
    for match in queries.search(r"~/attic"):
        element = match.element
        print(f"  {match.path_text}: grid with "
              f"{element.summary.hosts_total if element.summary else '?'} hosts")

    # -- alarms ---------------------------------------------------------------
    print("\n=== alarm engine ===")
    notifications = []
    alarms = AlarmEngine(sdsc, interval=15.0, notify=notifications.append)
    alarms.add_rule(
        AlarmRule(
            name="host-silent",
            selector=r"~/sdsc-c\d/.*",   # host level: condition on TN
            op=">",
            threshold=60.0,
            severity="critical",
        )
    )
    alarms.add_rule(
        AlarmRule(
            name="cluster-wide-high-load",
            selector=r"~/sdsc-c\d/.*/load_one",
            op=">",
            threshold=15.0,          # implausible; stays quiet
            hold_seconds=30.0,
        )
    )
    alarms.start()

    # kill two hosts in sdsc-c1, let the alarm fire, then revive one
    pseudo = federation.pseudos["sdsc-c1"]
    print("  t=+0s: killing sdsc-c1 hosts #2 and #5")
    pseudo.set_host_down(2)
    pseudo.set_host_down(5)
    federation.engine.run_for(150.0)
    print(f"  firing alarms: {len(alarms.firing())}")
    print("  t=+150s: reviving host #2")
    pseudo.set_host_down(2, down=False)
    federation.engine.run_for(60.0)
    print(f"  firing alarms after revival: {len(alarms.firing())}")

    print("\nnotification stream (what would page the operator):")
    for notification in notifications:
        print("  " + notification.render())

    quiet = [r.name for r in alarms.rules
             if not any(a.rule.name == r.name for a in alarms.firing())]
    print(f"\nrules currently quiet: {quiet}")

    alarms.stop()
    federation.stop()


if __name__ == "__main__":
    main()
