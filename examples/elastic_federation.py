#!/usr/bin/env python
"""Self-organizing monitoring tree (the paper's MDS-style future work).

"Children in an MDS tree periodically send join messages to their
parents, who verify trust via a cryptographic certificate sent with the
message.  Nodes are automatically pruned from the tree if their join
messages cease."

The scenario:

1. a root gmetad starts with *zero* configured children;
2. three site gmetads come online over time and join with certificates
   issued by the federation CA -- no root reconfiguration;
3. a rogue gmetad with a forged certificate is rejected;
4. one site shuts down; its lease expires and the root prunes it.

Run:  python examples/elastic_federation.py
"""

from repro import (
    Engine,
    Fabric,
    Gmetad,
    GmetadConfig,
    PseudoGmond,
    RngRegistry,
    TcpNetwork,
)
from repro.core.selforg import (
    CertificateAuthority,
    JoinAnnouncer,
    JoinListener,
)


def make_site(engine, fabric, tcp, rngs, name, hosts):
    """One site: a pseudo cluster plus its local gmetad."""
    pseudo = PseudoGmond(
        engine, fabric, tcp, f"{name}-cluster", num_hosts=hosts,
        rng=rngs.stream(f"pg-{name}"),
    )
    config = GmetadConfig(name=name, host=f"gmeta-{name}",
                          archive_mode="account")
    config.add_source(f"{name}-cluster", [pseudo.address])
    gmetad = Gmetad(engine, fabric, tcp, config)
    gmetad.start()
    return gmetad


def show_tree(root):
    rollup, _ = root.datastore.root_summary()
    children = sorted(root.pollers)
    print(f"  root children: {children or '(none)'}  "
          f"[{rollup.hosts_total} hosts federated]")


def main() -> None:
    engine = Engine()
    fabric = Fabric()
    tcp = TcpNetwork(engine, fabric)
    rngs = RngRegistry(11)

    ca = CertificateAuthority(realm="WORLDGRID")
    root = Gmetad(
        engine, fabric, tcp,
        GmetadConfig(name="root", host="gmeta-root", archive_mode="account"),
    )
    root.start()
    listener = JoinListener(root, ca, lease_seconds=90.0,
                            prune_interval=30.0).start()

    print("=== t=0: root has no children ===")
    show_tree(root)

    # -- sites join over time --------------------------------------------------
    announcers = {}
    for delay, (name, hosts) in zip(
        (10.0, 40.0, 70.0), (("tokyo", 16), ("berlin", 8), ("sandiego", 24))
    ):
        engine.run_until(delay)
        site = make_site(engine, fabric, tcp, rngs, name, hosts)
        announcers[name] = JoinAnnouncer(
            engine, tcp, site, "gmeta-root", ca.issue(name), interval=30.0
        ).start(initial_delay=0.5)
        engine.run_for(20.0)
        print(f"\n=== t={engine.now:.0f}: site '{name}' announced ===")
        show_tree(root)

    # -- a rogue tries to join --------------------------------------------------
    engine.run_for(10.0)
    print(f"\n=== t={engine.now:.0f}: rogue site with forged certificate ===")
    rogue = make_site(engine, fabric, tcp, rngs, "rogue", 50)
    forged = CertificateAuthority(realm="WORLDGRID",
                                  secret=b"wrong-key").issue("rogue")
    rogue_announcer = JoinAnnouncer(
        engine, tcp, rogue, "gmeta-root", forged, interval=30.0
    ).start(initial_delay=0.5)
    engine.run_for(40.0)
    print(f"  rogue NAKs: {rogue_announcer.naks}, "
          f"listener rejections: {listener.joins_rejected}")
    show_tree(root)

    # -- berlin goes dark and is pruned -----------------------------------------
    print(f"\n=== t={engine.now:.0f}: berlin stops announcing ===")
    announcers["berlin"].stop()
    engine.run_for(150.0)
    print(f"  after lease expiry (pruned: {listener.pruned}):")
    show_tree(root)

    # -- and can come back, soft-state style ------------------------------------
    print(f"\n=== t={engine.now:.0f}: berlin returns ===")
    announcers["berlin2"] = JoinAnnouncer(
        engine, tcp,
        make_site(engine, fabric, tcp, rngs, "berlin2", 8),
        "gmeta-root", ca.issue("berlin2"), interval=30.0,
    ).start(initial_delay=0.5)
    engine.run_for(40.0)
    show_tree(root)

    root.stop()


if __name__ == "__main__":
    main()
